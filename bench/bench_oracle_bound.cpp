// Offline bound study: how close do the online schedulers come to the
// clairvoyant schedule's transmission energy? Also contextualizes Theorem 1:
// the oracle's byte bill is a concrete (feasible-schedule) estimate of E*,
// and EMA's V sweep should approach it from above as V grows.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/oracle.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_oracle_bound", "online schedulers vs offline bound",
                     10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;
  const OracleResult oracle = offline_energy_bound(scenario);
  std::printf(
      "offline oracle: trans %.2f kJ, tail %.2f kJ over %lld slots"
      " (%lld units had no zero-stall slot and were priced at their window's"
      " cheapest rate)\n\n",
      oracle.total_trans_mj / 1e6, oracle.total_tail_mj / 1e6,
      static_cast<long long>(oracle.horizon_slots),
      static_cast<long long>(oracle.stranded_units));

  Table table("transmission energy vs the offline bound",
              {"scheduler", "trans (kJ)", "x oracle", "PC (ms/us)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const char* name : {"default", "throttling", "onoff", "salsa", "estreamer",
                           "rtma", "ema"}) {
    SchedulerOptions options;
    options.ema.v_weight = 0.05;
    const RunMetrics m = run_experiment({name, name, scenario, options}, false);
    const double ratio = m.total_trans_mj() / oracle.total_trans_mj;
    table.row({name, format_double(m.total_trans_mj() / 1e6, 2),
               format_double(ratio, 2),
               format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1)});
    csv_rows.push_back({name, format_double(m.total_trans_mj() / 1e6, 4),
                        format_double(ratio, 4)});
  }
  table.print();

  std::printf("\nEMA V sweep approaching the bound (byte bill only):\n");
  Table sweep("", {"V", "trans (kJ)", "x oracle"});
  for (double v : {0.01, 0.05, 0.2, 1.0, 5.0}) {
    SchedulerOptions options;
    options.ema.v_weight = v;
    const RunMetrics m = run_experiment({"ema", "ema-fast", scenario, options}, false);
    sweep.row({format_double(v, 2), format_double(m.total_trans_mj() / 1e6, 2),
               format_double(m.total_trans_mj() / oracle.total_trans_mj, 2)});
  }
  sweep.print();

  maybe_write_csv(args.csv_dir, "oracle_bound.csv",
                  {"scheduler", "trans_kj", "ratio_to_oracle"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_oracle_bound", argc, argv, run);
}
