// Figure 4: efficacy of RTMA under different energy constraints.
//   (a) total rebuffering time vs user number (20..40) for the default
//       strategy and RTMA with alpha in {0.8, 1.0, 1.2};
//   (b) the same series vs average data amount (150..550 MB) at fixed users.
//
// Expected shape: looser budgets (larger alpha) buy less rebuffering; RTMA
// with alpha >= 1 stays below the default across the sweep, while the tight
// alpha = 0.8 budget can sacrifice playback to hold the energy cap (the paper
// also reports the improvement only "in certain cases" there).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

constexpr double kAlphas[] = {0.8, 1.0, 1.2};

void run_panel(const std::string& title, const std::string& x_label,
               const std::vector<std::pair<std::string, ScenarioConfig>>& points,
               const CommonArgs& args, const std::string& csv_name) {
  // Reference default runs, one per x point, used both as a series and as the
  // alpha anchor.
  std::vector<ExperimentSpec> specs;
  std::vector<std::string> series_names{"default"};
  for (double alpha : kAlphas) {
    series_names.push_back("rtma a=" + format_double(alpha, 1));
  }
  for (const auto& [x, scenario] : points) {
    const DefaultReference reference =
        run_default_reference(scenario, &global_trace_cache());
    specs.push_back({"default@" + x, "default", scenario, {}});
    for (double alpha : kAlphas) {
      specs.push_back({"rtma@" + x, "rtma", scenario,
                       rtma_options_for_alpha(alpha, reference)});
    }
  }
  const std::vector<RunMetrics> results = run_grid(args, specs);

  Table table(title, [&] {
    std::vector<std::string> header{x_label};
    for (const auto& name : series_names) header.push_back(name + " (s)");
    return header;
  }());
  std::vector<std::vector<std::string>> csv_rows;
  const std::size_t stride = 1 + std::size(kAlphas);
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::vector<double> row;
    for (std::size_t s = 0; s < stride; ++s) {
      row.push_back(results[p * stride + s].total_rebuffer_s());
    }
    table.row(points[p].first, row, 0);
    for (std::size_t s = 0; s < stride; ++s) {
      csv_rows.push_back({points[p].first, series_names[s],
                          format_double(row[s], 3)});
    }
  }
  table.print();
  maybe_write_csv(args.csv_dir, csv_name, {x_label, "series", "total_rebuffer_s"},
                  csv_rows);
}

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig04_rtma_efficacy",
                     "Fig. 4: RTMA total rebuffering vs users / data amount");
  const CommonArgs args = parse_common(cli, argc, argv);

  // Panel (a): user sweep at the paper's default 250-500 MB videos.
  std::vector<std::pair<std::string, ScenarioConfig>> user_points;
  for (std::size_t users : {20UL, 25UL, 30UL, 35UL, 40UL}) {
    ScenarioConfig scenario = paper_scenario(users, args.seed);
    scenario.max_slots = args.slots;
    user_points.emplace_back(std::to_string(users), scenario);
  }
  run_panel("Fig. 4a: total rebuffering vs user number", "users", user_points, args,
            "fig04a_users.csv");
  std::printf("\n");

  // Panel (b): data-amount sweep at a fixed population.
  std::vector<std::pair<std::string, ScenarioConfig>> data_points;
  for (double avg_mb : {150.0, 250.0, 350.0, 450.0, 550.0}) {
    ScenarioConfig scenario =
        paper_scenario_with_data_amount(args.users, avg_mb, args.seed);
    scenario.max_slots = args.slots;
    data_points.emplace_back(format_double(avg_mb, 0), scenario);
  }
  run_panel("Fig. 4b: total rebuffering vs data amount (MB), " +
                std::to_string(args.users) + " users",
            "avg_data_mb", data_points, args, "fig04b_data.csv");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig04_rtma_efficacy", argc, argv, run);
}
