// Ablation: dynamic user traffic. Section V motivates EMA as stable "under
// dynamic user traffic and channel variance"; this sweep staggers session
// arrivals over increasingly wide windows and checks that the RTMA/EMA
// advantages over the default survive churn.
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_ablation_arrivals", "session-arrival churn sweep", 10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("arrival-spread ablation",
              {"spread (slots)", "scheduler", "PE (mJ/us)", "PC (ms/us)", "fairness"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::int64_t spread : {0, 200, 600, 1200}) {
    ScenarioConfig scenario = paper_scenario(args.users, args.seed);
    scenario.max_slots = args.slots;
    scenario.arrival_spread_slots = spread;
    const DefaultReference reference = run_default_reference(scenario);
    for (const char* name : {"default", "rtma", "ema"}) {
      ExperimentSpec spec{name, name, scenario, {}};
      if (spec.scheduler == "rtma") spec.options = rtma_options_for_alpha(1.0, reference);
      if (spec.scheduler == "ema") spec.options.ema.v_weight = 0.05;
      const RunMetrics m = run_experiment(spec, true);
      table.row({std::to_string(spread), name,
                 format_double(m.avg_energy_per_user_slot_mj(), 1),
                 format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1),
                 format_double(m.mean_fairness(), 3)});
      csv_rows.push_back({std::to_string(spread), name,
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                          format_double(m.mean_fairness(), 4)});
    }
  }
  table.print();
  std::printf("\nExpected: RTMA keeps the lowest PC and EMA the lowest PE at every\n"
              "spread; wider spreads lighten instantaneous load, shrinking all gaps.\n");
  maybe_write_csv(args.csv_dir, "ablation_arrivals.csv",
                  {"spread_slots", "scheduler", "pe_mj", "pc_ms", "fairness"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_ablation_arrivals", argc, argv, run);
}
