// Ablation: RRC parameterization. Compares the paper's 3G profile, the LTE
// two-state profile (Section VI argues results carry over since the state
// machines differ only in parameters), and the 3G profile under
// continuous-time Eq. 4 tail accounting (see radio/rrc.hpp), which also
// charges the in-slot DCH residue of transmitting slots.
#include <cstdio>

#include "bench_util.hpp"
#include "radio/radio_profile.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_ablation_rrc", "RRC profile ablation", 10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  RadioProfile continuous_3g = paper_3g_profile();
  continuous_3g.continuous_tail = true;
  continuous_3g.name = "3g-continuous";
  const RadioProfile profiles[] = {paper_3g_profile(), lte_profile(), continuous_3g};

  Table table("RRC ablation",
              {"profile", "scheduler", "PE (mJ/us)", "tail (mJ/us)", "PC (ms/us)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const RadioProfile& profile : profiles) {
    ScenarioConfig scenario = paper_scenario(args.users, args.seed);
    scenario.max_slots = args.slots;
    scenario.radio = profile;
    for (const char* name : {"default", "onoff", "ema"}) {
      ExperimentSpec spec{name, name, scenario, {}};
      if (spec.scheduler == "ema") spec.options.ema.v_weight = 0.05;
      const RunMetrics m = run_experiment(spec, false);
      table.row({profile.name, name, format_double(m.avg_energy_per_user_slot_mj(), 1),
                 format_double(m.avg_tail_per_user_slot_mj(), 1),
                 format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1)});
      csv_rows.push_back({profile.name, name,
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(m.avg_tail_per_user_slot_mj(), 4),
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4)});
    }
  }
  table.print();
  std::printf("\nExpected: the 3G/LTE ordering of schedulers matches (parameters-only\n"
              "difference); continuous-tail accounting raises every scheduler's tail\n"
              "share and rewards batching schedulers.\n");
  maybe_write_csv(args.csv_dir, "ablation_rrc.csv",
                  {"profile", "scheduler", "pe_mj", "tail_mj", "pc_ms"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_ablation_rrc", argc, argv, run);
}
