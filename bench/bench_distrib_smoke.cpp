// Distributed-campaign smoke gate: a small multi-process shard run must
// merge to the exact bytes the serial engine produces, in both batch and
// service mode. Runs in CI on the 50-slot REPRO budget with --validate: the
// paper-invariant flag is process-global and inherited across fork(), so the
// checker vets every slot inside every worker process, not just the parent.
//
// Two parts, each comparing xxh64 digests over the canonical little-endian
// result encoding (see src/sim/distrib.hpp) — digest equality is bit
// identity, not approximate agreement:
//   1. Batch: a 2-scheduler x 2-seed grid through run_campaign serially and
//      through run_campaign_distributed with 2 worker processes.
//   2. Service: two Poisson-arrival specs through run_service_campaign and
//      its distributed counterpart, again on 2 shards.
//
// Exits nonzero on any digest mismatch. The full-scale distributed gates
// (>= 4 shards, wall-clock speedup, disk-warm rerun) live in bench_perf_gate.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "session/service_campaign.hpp"
#include "sim/distrib.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int part1_batch(const CommonArgs& args) {
  ScenarioConfig base = paper_scenario(args.users, args.seed);
  base.max_slots = args.slots;
  const std::vector<CampaignSeries> series = {{"default", "default", {}},
                                              {"ema", "ema", {}}};
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(base, series, /*replications=*/2);

  CampaignOptions campaign;
  campaign.threads = args.threads;
  const std::vector<RunMetrics> serial = run_campaign(specs, campaign);

  DistribOptions distrib;
  distrib.processes = 2;
  distrib.campaign = campaign;
  const std::vector<RunMetrics> merged = run_campaign_distributed(specs, distrib);

  const std::uint64_t serial_digest = metrics_digest(serial);
  const std::uint64_t merged_digest = metrics_digest(merged);
  std::printf("[batch]   %zu cells, 2 shards: serial %016llx, merged %016llx (%s)\n",
              specs.size(), static_cast<unsigned long long>(serial_digest),
              static_cast<unsigned long long>(merged_digest),
              serial_digest == merged_digest ? "bit-identical" : "MISMATCH");
  if (serial_digest != merged_digest) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (metrics_digest(serial[i]) != metrics_digest(merged[i])) {
        std::fprintf(stderr, "FAIL: cell %zu (%s) diverged from the serial run\n",
                     i, specs[i].label.c_str());
      }
    }
    return 1;
  }
  return 0;
}

int part2_service(const CommonArgs& args) {
  ScenarioConfig cell = paper_scenario(args.users, args.seed + 1);
  cell.max_slots = args.slots;
  cell.video_min_mb = 2.0;
  cell.video_max_mb = 4.0;

  std::vector<ServiceExperimentSpec> specs;
  for (const char* name : {"default", "ema-fast"}) {
    ServiceExperimentSpec spec;
    spec.label = std::string("poisson/") + name;
    spec.scheduler = name;
    spec.config.cell = cell;
    spec.config.arrivals.kind = ArrivalKind::kPoisson;
    spec.config.arrivals.rate_per_slot = 0.2;
    spec.config.warmup_slots = args.slots / 5;
    specs.push_back(std::move(spec));
  }

  CampaignOptions campaign;
  campaign.threads = args.threads;
  const std::vector<ServiceResult> serial = run_service_campaign(specs, campaign);

  DistribOptions distrib;
  distrib.processes = 2;
  distrib.campaign = campaign;
  const std::vector<ServiceResult> merged =
      run_service_campaign_distributed(specs, distrib);

  const std::uint64_t serial_digest = service_digest(serial);
  const std::uint64_t merged_digest = service_digest(merged);
  std::printf("[service] %zu cells, 2 shards: serial %016llx, merged %016llx (%s)\n",
              specs.size(), static_cast<unsigned long long>(serial_digest),
              static_cast<unsigned long long>(merged_digest),
              serial_digest == merged_digest ? "bit-identical" : "MISMATCH");
  if (serial_digest != merged_digest) {
    std::fprintf(stderr, "FAIL: distributed service campaign diverged\n");
    return 1;
  }
  return 0;
}

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_distrib_smoke",
                     "Multi-process sharded campaign vs serial: digest equality",
                     /*default_slots=*/400, /*default_users=*/8);
  const CommonArgs args = parse_common(cli, argc, argv);

  int status = part1_batch(args);
  const int service_status = part2_service(args);
  if (status == 0) status = service_status;
  if (status == 0) {
    std::printf("distributed smoke passed: merged results bit-identical to serial\n");
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_distrib_smoke", argc, argv, run);
}
