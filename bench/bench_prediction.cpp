// Prediction study: what would perfect short-term channel prediction buy over
// the paper's prediction-free designs? Runs the oracle-assisted Lookahead
// scheduler (Proteus/Bartendr-style) against RTMA and EMA across prediction
// horizons.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/lookahead.hpp"
#include "sim/forecast.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_prediction", "perfect-prediction lookahead vs RTMA/EMA",
                     10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;
  const DefaultReference reference = run_default_reference(scenario);
  const auto forecast = make_signal_forecast(scenario, scenario.max_slots);

  Table table("prediction study",
              {"scheduler", "PE (mJ/us)", "tail (mJ/us)", "PC (ms/us)"});
  std::vector<std::vector<std::string>> csv_rows;

  const auto report = [&](const std::string& label, const RunMetrics& m) {
    table.row({label, format_double(m.avg_energy_per_user_slot_mj(), 1),
               format_double(m.avg_tail_per_user_slot_mj(), 1),
               format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1)});
    csv_rows.push_back({label, format_double(m.avg_energy_per_user_slot_mj(), 4),
                        format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4)});
  };

  {
    const RunMetrics m = run_experiment(
        {"rtma", "rtma", scenario, rtma_options_for_alpha(1.0, reference)}, false);
    report("rtma (no prediction)", m);
  }
  {
    SchedulerOptions options;
    options.ema.v_weight = 0.05;
    const RunMetrics m = run_experiment({"ema", "ema", scenario, options}, false);
    report("ema (no prediction)", m);
  }
  for (std::int64_t horizon : {30, 90, 300}) {
    LookaheadConfig config;
    config.horizon_slots = horizon;
    const RunMetrics m = simulate(
        scenario, std::make_unique<LookaheadScheduler>(config, forecast), false);
    report("lookahead H=" + std::to_string(horizon), m);
  }
  table.print();
  std::printf("\nReading: longer horizons help the lookahead (PE falls with H at\n"
              "RTMA-grade rebuffering), yet it does NOT beat the prediction-free\n"
              "designs: crest capacity is oversubscribed under contention, and the\n"
              "inter-crest safety refills keep paying RRC tails that Eq. 5 never\n"
              "charges a pace-every-slot policy. This supports the paper's choice of\n"
              "cross-user scheduling over per-user prediction (Proteus, Bartendr).\n");
  maybe_write_csv(args.csv_dir, "prediction.csv", {"scheduler", "pe_mj", "pc_ms"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_prediction", argc, argv, run);
}
