// Prediction study: what does short-term channel prediction buy, and how fast
// does the benefit decay with forecast error? Sweeps the prediction-assisted
// EMA (PredictiveEmaScheduler, docs/PREDICTION.md) over a horizon x error-sigma
// grid — benign, medium-fault, and stale-feedback variants — and reports for
// every cell the fraction of the oracle's energy headroom it recovers over the
// prediction-free EMA:
//
//     recovered = (E_ema - E_pred) / (E_ema - E_oracle)
//
// where E_oracle is the offline transportation bound (sim/oracle.hpp). The
// oracle-assisted per-user Lookahead scheduler (Proteus/Bartendr-style) runs
// as a comparator: cross-user predictive EMA recovers headroom that per-user
// prefetching cannot (crest capacity is shared, and Eq. 5 never charges a
// pace-every-slot policy the RRC tails the lookahead's refills pay).
//
// With --validate every slot passes the paper-invariant checker AND (at the
// full horizon only; REPRO_SLOTS runs report without gating) the bench
// enforces the acceptance bar: perfect-forecast predictive EMA must recover
// >= 50% of the oracle headroom on the paper scenario.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/invariant_checker.hpp"
#include "bench_util.hpp"
#include "common/error.hpp"
#include "core/lookahead.hpp"
#include "core/predictive_ema.hpp"
#include "sim/fault.hpp"
#include "sim/forecast.hpp"
#include "sim/oracle.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

/// The bench_fault_sweep "medium" cell: deep fades, stale feedback windows,
/// departures, capacity dips.
FaultConfig medium_faults() {
  FaultConfig faults;
  faults.outage_rate_per_kslot = 5.0;
  faults.outage_min_slots = 5;
  faults.outage_max_slots = 30;
  faults.staleness_rate_per_kslot = 10.0;
  faults.staleness_max_slots = 30;
  faults.departure_fraction = 0.25;
  faults.capacity_rate_per_kslot = 2.0;
  faults.capacity_scale = 0.5;
  return faults;
}

/// Stale-feedback-heavy cell: the forecast window interacts with the fault
/// layer (track_fault_staleness freezes predictions across stale windows).
FaultConfig stale_faults() {
  FaultConfig faults;
  faults.staleness_rate_per_kslot = 25.0;
  faults.staleness_min_slots = 5;
  faults.staleness_max_slots = 40;
  return faults;
}

struct Variant {
  std::string name;
  ScenarioConfig scenario;
};

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_prediction",
                     "predictive EMA horizon x error sweep vs the oracle bound",
                     10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig benign = paper_scenario(args.users, args.seed);
  benign.max_slots = args.slots;

  ScenarioConfig faulted = benign;
  faulted.faults = medium_faults();

  ScenarioConfig stale = benign;
  stale.faults = stale_faults();
  stale.forecast.track_fault_staleness = true;

  const std::vector<Variant> variants = {
      {"benign", benign}, {"faulted", faulted}, {"stale", stale}};
  const std::vector<std::int64_t> horizons = {30, 90, 300};
  const std::vector<double> sigmas = {0.0, 4.0, 12.0};

  // Build the whole study as one campaign grid: the prediction-free EMA
  // baseline plus every (horizon, sigma) predictive cell per variant. Cells
  // of a variant share one cached channel substrate (sigma perturbs only the
  // forecast, and the trace key separates forecast fingerprints from the
  // plain series).
  std::vector<ExperimentSpec> specs;
  for (const Variant& variant : variants) {
    {
      ExperimentSpec spec;
      spec.label = variant.name + "/ema";
      spec.scheduler = "ema";
      spec.scenario = variant.scenario;
      specs.push_back(std::move(spec));
    }
    for (const std::int64_t horizon : horizons) {
      for (const double sigma : sigmas) {
        ExperimentSpec spec;
        spec.label = variant.name + "/H=" + std::to_string(horizon) +
                     "/sigma=" + format_double(sigma, 0);
        spec.scheduler = "ema-predictive";
        spec.scenario = variant.scenario;
        spec.scenario.forecast.sigma_dbm = sigma;
        spec.options.ema_predictive.horizon_slots = horizon;
        specs.push_back(std::move(spec));
      }
    }
  }
  const std::vector<RunMetrics> results = run_grid(args, specs);

  Table table("prediction study (recovered = share of oracle headroom over ema)",
              {"series", "PE (mJ/us)", "PC (ms/us)", "recovered"});
  std::vector<std::vector<std::string>> csv_rows;
  double benign_perfect_best = 0.0;

  std::size_t at = 0;
  for (const Variant& variant : variants) {
    const OracleResult oracle = offline_energy_bound(variant.scenario);
    const RunMetrics& ema = results[at++];
    const double headroom_mj = ema.total_energy_mj() - oracle.total_energy_mj();
    table.row({variant.name + "/ema", format_double(ema.avg_energy_per_user_slot_mj(), 1),
               format_double(1000.0 * ema.avg_rebuffer_per_user_slot_s(), 1), "--"});
    csv_rows.push_back({variant.name, "ema", "0", "0",
                        format_double(ema.avg_energy_per_user_slot_mj(), 4),
                        format_double(1000.0 * ema.avg_rebuffer_per_user_slot_s(), 4),
                        "0"});
    for (const std::int64_t horizon : horizons) {
      for (const double sigma : sigmas) {
        const RunMetrics& m = results[at];
        const double recovered =
            headroom_mj > 0.0
                ? (ema.total_energy_mj() - m.total_energy_mj()) / headroom_mj
                : 0.0;
        if (variant.name == "benign" && sigma == 0.0) {
          benign_perfect_best = std::max(benign_perfect_best, recovered);
        }
        table.row({specs[at].label, format_double(m.avg_energy_per_user_slot_mj(), 1),
                   format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1),
                   format_double(100.0 * recovered, 1) + "%"});
        csv_rows.push_back({variant.name, "ema-predictive", std::to_string(horizon),
                            format_double(sigma, 1),
                            format_double(m.avg_energy_per_user_slot_mj(), 4),
                            format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                            format_double(recovered, 4)});
        ++at;
      }
    }
  }
  table.print();

  // Per-user prefetch comparator on the benign scenario (perfect forecast).
  {
    const auto forecast = make_signal_forecast(benign, benign.max_slots);
    LookaheadConfig config;
    config.horizon_slots = 300;
    const RunMetrics m = simulate(
        benign, std::make_unique<LookaheadScheduler>(config, forecast), false);
    std::printf("\nlookahead H=300 (per-user prefetch comparator): "
                "PE %.1f mJ/us, PC %.1f ms/us\n",
                m.avg_energy_per_user_slot_mj(),
                1000.0 * m.avg_rebuffer_per_user_slot_s());
  }

  std::printf("\nReading: the crest credit and deferral terms shift units toward\n"
              "the cheap slots the forecast exposes, so long-horizon cells recover\n"
              "all of the oracle's headroom and then some (best benign sigma=0\n"
              "cell: %.0f%%) — >100%% is legitimate because the offline bound is a\n"
              "cheapest-cell greedy that pays heavy RRC tail energy, i.e. an upper\n"
              "bound on the true optimum. On this periodic channel moderate sigma\n"
              "barely dents (and via price-space convexity can even inflate) the\n"
              "horizon-mean credit, so long-horizon sweeps are robust to noise;\n"
              "faults and stale feedback attenuate but do not erase the gain. The\n"
              "per-user lookahead, by contrast, oversubscribes crest capacity and\n"
              "pays RRC tails on its safety refills — cross-user scheduling keeps\n"
              "the advantage even with prediction on both sides.\n",
              100.0 * benign_perfect_best);

  if (analysis::validation_enabled() && args.slots >= 10000) {
    require(benign_perfect_best >= 0.5,
            "acceptance gate: perfect-forecast predictive EMA recovered " +
                format_double(100.0 * benign_perfect_best, 1) +
                "% of the oracle headroom on the paper scenario (need >= 50%)");
    std::printf("\nvalidate: perfect-forecast recovery %.1f%% >= 50%% gate ok\n",
                100.0 * benign_perfect_best);
  }

  maybe_write_csv(args.csv_dir, "prediction.csv",
                  {"variant", "scheduler", "horizon", "sigma_dbm", "pe_mj",
                   "pc_ms", "recovered"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_prediction", argc, argv, run);
}
