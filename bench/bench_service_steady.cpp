// Online service mode: steady-state behaviour, admission control at overload,
// sustained-concurrency scale, and the zero-arrival batch-equivalence check.
//
// Four parts:
//   1. Steady-state campaign: every factory scheduler under a low and a high
//      Poisson load through run_service_campaign (shared channel substrate,
//      arrival fingerprint joined into the trace key). Tabulates concurrency,
//      session flow, and the steady-state PC/PE analogues.
//   2. Admission at overload: accept-all versus the capacity/backlog threshold
//      policy on an overloaded cell. Exits nonzero unless the threshold keeps
//      the measured-window stall rate strictly below accept-all's.
//   3. Scale: one trace-less service run filling >=100k concurrent sessions
//      (default scheduler); reports per-slot wall time and VmRSS after the
//      fill and at the horizon. Report-only since PR9: the enforcement
//      (ns/user-slot ceiling, end RSS <= 1.5x post-fill, the sustained
//      >=100k concurrency floor) moved into bench_perf_gate, where the
//      numbers are pinned in BENCH_PR9.json.
//   4. Zero-arrival equivalence: a service run with arrivals off must
//      reproduce the batch simulate() result bit for bit (benign and faulted
//      cells, default and ema schedulers). Exits nonzero on any mismatch.
//
// With --validate every executed slot of parts 1, 2, and 4 passes the
// paper-invariant checker across session rebinds (part 3 stays validator-off
// at 100k+ users by the same REPRO budget rule the other benches use: the
// checker is O(users) per slot and the scale part measures the slot path).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "session/service_campaign.hpp"
#include "common/units.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

/// Resident set size in KB from /proc/self/status (0 when unavailable).
long read_vmrss_kb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(status);
  return kb;
}

ScenarioConfig service_cell(std::size_t users, std::int64_t slots,
                            std::uint64_t seed) {
  ScenarioConfig cell = paper_scenario(users, seed);
  cell.max_slots = slots;
  cell.video_min_mb = 2.0;
  cell.video_max_mb = 4.0;
  return cell;
}

bool same_run(const RunMetrics& a, const RunMetrics& b) {
  if (a.slots_run != b.slots_run || a.per_user.size() != b.per_user.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.per_user.size(); ++i) {
    const UserTotals& x = a.per_user[i];
    const UserTotals& y = b.per_user[i];
    if (x.trans_mj != y.trans_mj || x.tail_mj != y.tail_mj ||
        x.rebuffer_s != y.rebuffer_s || x.delivered_kb != y.delivered_kb ||
        x.session_slots != y.session_slots || x.tx_slots != y.tx_slots ||
        x.playback_finished != y.playback_finished) {
      return false;
    }
  }
  return true;
}

void part1_steady_state(const CommonArgs& args, bool quick,
                        std::vector<std::vector<std::string>>& csv_rows) {
  const std::vector<std::string> schedulers = scheduler_names();
  const std::int64_t horizon = quick ? args.slots : 600;
  ScenarioConfig cell = service_cell(24, horizon, args.seed);
  const SchedulerOptions rtma_options = rtma_options_for_alpha(
      1.0, run_default_reference(cell, &global_trace_cache()));

  struct Load {
    const char* name;
    double rate;
  };
  const Load loads[] = {{"low", 0.12}, {"high", 0.4}};

  std::vector<ServiceExperimentSpec> specs;
  for (const Load& load : loads) {
    for (const std::string& name : schedulers) {
      ServiceExperimentSpec spec;
      spec.label = std::string(load.name) + "/" + name;
      spec.scheduler = name;
      spec.config.cell = cell;
      spec.config.arrivals.kind = ArrivalKind::kPoisson;
      spec.config.arrivals.rate_per_slot = load.rate;
      spec.config.warmup_slots = horizon / 5;
      if (name == "rtma") spec.options = rtma_options;
      specs.push_back(std::move(spec));
    }
  }
  CampaignOptions options;
  options.threads = args.threads;
  options.cache = &global_trace_cache();
  const std::vector<ServiceResult> results = run_service_campaign(specs, options);

  Table table("Steady state: Poisson arrivals, 24 population slots, " +
                  std::to_string(horizon) + " slots",
              {"load/scheduler", "offered", "admitted", "completed", "aborted",
               "mean conc", "peak", "PC (ms/us)", "PE (mJ/us)"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ServiceMetrics& m = results[i].service;
    table.row({specs[i].label, std::to_string(m.offered),
               std::to_string(m.admitted), std::to_string(m.completed),
               std::to_string(m.aborted), format_double(m.mean_concurrency(), 2),
               std::to_string(m.peak_concurrency),
               format_double(1000.0 * m.mean_rebuffer_per_user_slot_s(), 2),
               format_double(m.mean_energy_per_user_slot_mj(), 2)});
    csv_rows.push_back(
        {specs[i].label, std::to_string(m.offered), std::to_string(m.admitted),
         std::to_string(m.rejected), std::to_string(m.blocked),
         std::to_string(m.completed), std::to_string(m.aborted),
         format_double(m.mean_concurrency(), 4),
         format_double(m.mean_rebuffer_per_user_slot_s(), 6),
         format_double(m.mean_energy_per_user_slot_mj(), 6)});
  }
  table.print();
  std::printf("\n");
}

int part2_admission_overload(const CommonArgs& args, bool quick) {
  const std::int64_t horizon = quick ? args.slots : 800;
  ScenarioConfig cell = service_cell(80, horizon, args.seed + 1);
  cell.capacity_kbps = 2000.0;  // ~4 sessions' worth of service rate

  ServiceConfig base;
  base.cell = cell;
  base.arrivals.kind = ArrivalKind::kPoisson;
  base.arrivals.rate_per_slot = 1.0;
  base.warmup_slots = quick ? horizon / 5 : 100;

  ServiceExperimentSpec accept{"overload/accept-all", "default", base, {}};
  ServiceExperimentSpec threshold{"overload/threshold", "default", base, {}};
  threshold.config.admission.kind = AdmissionKind::kThreshold;
  threshold.config.admission.threshold.capacity_headroom = 1.15;
  threshold.config.admission.threshold.max_mean_queue_s = 10.0;

  CampaignOptions options;
  options.threads = args.threads;
  options.cache = &global_trace_cache();
  const std::vector<ServiceExperimentSpec> specs{accept, threshold};
  const std::vector<ServiceResult> results = run_service_campaign(specs, options);

  Table table("Admission at overload: lambda = 1/slot on a 2 MB/s cell",
              {"policy", "offered", "admitted", "rejected", "completed",
               "mean conc", "PC (ms/us)"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ServiceMetrics& m = results[i].service;
    table.row({specs[i].label, std::to_string(m.offered),
               std::to_string(m.admitted), std::to_string(m.rejected),
               std::to_string(m.completed),
               format_double(m.mean_concurrency(), 2),
               format_double(1000.0 * m.mean_rebuffer_per_user_slot_s(), 2)});
  }
  table.print();

  const double accept_pc = results[0].service.mean_rebuffer_per_user_slot_s();
  const double threshold_pc = results[1].service.mean_rebuffer_per_user_slot_s();
  std::printf("[admission] accept-all PC %.4f s/user-slot, threshold PC %.4f\n\n",
              accept_pc, threshold_pc);
  if (threshold_pc >= accept_pc) {
    std::fprintf(stderr,
                 "FAIL: threshold admission did not reduce overload stalling "
                 "(%.6f >= %.6f s/user-slot)\n",
                 threshold_pc, accept_pc);
    return 1;
  }
  return 0;
}

void part3_scale(const CommonArgs& args, bool quick,
                 std::vector<std::vector<std::string>>& csv_rows) {
  const std::size_t population = quick ? 2000 : 110000;
  const std::int64_t horizon = quick ? args.slots : 300;
  const std::int64_t fill_slots = 40;  // population/(population/30) + margin

  ScenarioConfig cell = service_cell(population, horizon, args.seed + 2);
  cell.video_min_mb = 100.0;  // sessions outlive the horizon: pure steady load
  cell.video_max_mb = 200.0;

  ServiceConfig config;
  config.cell = cell;
  config.arrivals.kind = ArrivalKind::kPoisson;
  config.arrivals.rate_per_slot = as_double(population) / 30.0;
  config.warmup_slots = std::min<std::int64_t>(fill_slots + 20, horizon - 1);

  // Trace-less on purpose: a 110k x 300 substrate would dwarf the gateway
  // state this part exists to measure.
  ServiceSimulator simulator(config, make_scheduler("default"));
  long rss_fill_kb = 0;
  const auto start = std::chrono::steady_clock::now();
  while (simulator.step()) {
    if (simulator.slot() == fill_slots) rss_fill_kb = read_vmrss_kb();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::size_t live = simulator.active_sessions();
  const ServiceResult result = simulator.finish();
  const long rss_end_kb = read_vmrss_kb();
  if (rss_fill_kb == 0) rss_fill_kb = rss_end_kb;

  const double ns_per_slot =
      as_double(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      as_double(result.service.slots_run);
  const ServiceMetrics& m = result.service;
  std::printf(
      "[scale] %zu population slots, %lld slots: mean concurrency %.0f, peak "
      "%zu, %lld still streaming; %.0f ns/slot (%.1f ns/user-slot); RSS %.1f "
      "MB after fill, %.1f MB at end\n\n",
      population, static_cast<long long>(m.slots_run), m.mean_concurrency(),
      m.peak_concurrency, static_cast<long long>(m.in_flight_at_end), ns_per_slot,
      ns_per_slot / as_double(population),
      as_double(rss_fill_kb) / 1000.0,
      as_double(rss_end_kb) / 1000.0);
  csv_rows.push_back({"scale", std::to_string(population),
                      std::to_string(m.slots_run),
                      format_double(m.mean_concurrency(), 1),
                      std::to_string(m.peak_concurrency),
                      format_double(ns_per_slot, 0), std::to_string(rss_fill_kb),
                      std::to_string(rss_end_kb)});
  // The ceilings on these numbers (residency, ns/user-slot, concurrency
  // floor) are enforced by bench_perf_gate's service_scale_gate; this part
  // only reports them, so the session smoke stays cheap.
  (void)live;
}

int part4_zero_arrival_equivalence(const CommonArgs& args, bool quick) {
  ScenarioConfig benign = paper_scenario(8, args.seed);
  benign.max_slots = quick ? args.slots : 400;
  benign.video_min_mb = 2.0;
  benign.video_max_mb = 4.0;

  ScenarioConfig faulted = benign;
  faulted.faults.outage_rate_per_kslot = 5.0;
  faulted.faults.departure_fraction = 0.25;
  faulted.faults.capacity_rate_per_kslot = 2.0;
  faulted.faults.capacity_scale = 0.5;

  struct Case {
    const char* name;
    const ScenarioConfig* cell;
    const char* scheduler;
  };
  const Case cases[] = {{"benign/default", &benign, "default"},
                        {"benign/ema", &benign, "ema"},
                        {"faulted/default", &faulted, "default"},
                        {"faulted/ema", &faulted, "ema"}};
  int failures = 0;
  for (const Case& c : cases) {
    ServiceConfig config;
    config.cell = *c.cell;
    const ServiceResult service =
        simulate_service(config, make_scheduler(c.scheduler));
    const RunMetrics batch = simulate(*c.cell, make_scheduler(c.scheduler), false);
    const bool identical = same_run(service.run, batch);
    std::printf("[equivalence] %-16s %s\n", c.name,
                identical ? "bit-identical" : "MISMATCH");
    if (!identical) ++failures;
  }
  std::printf("\n");
  return failures == 0 ? 0 : 1;
}

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_service_steady",
                     "Online service mode: steady state, admission, scale",
                     /*default_slots=*/600, /*default_users=*/24);
  const CommonArgs args = parse_common(cli, argc, argv);
  const bool quick = args.slots <= 100;

  std::vector<std::vector<std::string>> steady_rows;
  std::vector<std::vector<std::string>> scale_rows;
  part1_steady_state(args, quick, steady_rows);
  int status = part2_admission_overload(args, quick);
  part3_scale(args, quick, scale_rows);
  const int equivalence_status = part4_zero_arrival_equivalence(args, quick);
  if (status == 0) status = equivalence_status;

  maybe_write_csv(args.csv_dir, "service_steady.csv",
                  {"label", "offered", "admitted", "rejected", "blocked",
                   "completed", "aborted", "mean_concurrency",
                   "rebuffer_per_user_slot_s", "energy_per_user_slot_mj"},
                  steady_rows);
  maybe_write_csv(args.csv_dir, "service_scale.csv",
                  {"part", "population", "slots", "mean_concurrency", "peak",
                   "ns_per_slot", "rss_fill_kb", "rss_end_kb"},
                  scale_rows);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_service_steady", argc, argv, run);
}
