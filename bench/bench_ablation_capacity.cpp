// Ablation: time-varying base-station capacity ("workload changes at the
// base station" is one of the unpredictability sources the paper's
// introduction cites). Sweeps the capacity-wave amplitude and compares the
// schedulers' robustness.
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_ablation_capacity", "capacity wave amplitude sweep",
                     10000, 40);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("capacity-wave ablation",
              {"wave amplitude", "scheduler", "PE (mJ/us)", "PC (ms/us)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (double fraction : {0.0, 0.2, 0.4, 0.6}) {
    ScenarioConfig scenario = paper_scenario(args.users, args.seed);
    scenario.max_slots = args.slots;
    if (fraction > 0.0) {
      scenario.capacity_kind = CapacityKind::kSine;
      scenario.capacity_wave_fraction = fraction;
      scenario.capacity_wave_period = 600.0;
    }
    const DefaultReference reference = run_default_reference(scenario);
    for (const char* name : {"default", "rtma", "ema"}) {
      ExperimentSpec spec{name, name, scenario, {}};
      if (spec.scheduler == "rtma") spec.options = rtma_options_for_alpha(1.0, reference);
      if (spec.scheduler == "ema") spec.options.ema.v_weight = 0.05;
      const RunMetrics m = run_experiment(spec, false);
      const std::string amplitude = format_double(100.0 * fraction, 0) + " %";
      table.row({amplitude, name, format_double(m.avg_energy_per_user_slot_mj(), 1),
                 format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1)});
      csv_rows.push_back({format_double(fraction, 2), name,
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4)});
    }
  }
  table.print();
  std::printf("\nExpected: deeper capacity troughs raise everyone's rebuffering; the\n"
              "RTMA-vs-default and EMA-vs-default orderings persist at every amplitude.\n");
  maybe_write_csv(args.csv_dir, "ablation_capacity.csv",
                  {"wave_fraction", "scheduler", "pe_mj", "pc_ms"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_ablation_capacity", argc, argv, run);
}
