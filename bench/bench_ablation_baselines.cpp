// Ablation: baseline parameter sensitivity. The paper does not publish the
// configurations of Throttling / ON-OFF / SALSA / EStreamer; this sweep
// varies each around our defaults and checks that the headline conclusions
// (RTMA's rebuffering advantage, EMA's energy advantage) do not hinge on any
// particular tuning.
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_ablation_baselines", "baseline parameter sensitivity",
                     10000, 40);
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;
  const DefaultReference reference = run_default_reference(scenario);
  const RunMetrics rtma = run_experiment(
      {"rtma", "rtma", scenario, rtma_options_for_alpha(1.0, reference)}, false);
  SchedulerOptions ema_options;
  ema_options.ema.v_weight = 0.05;
  const RunMetrics ema = run_experiment({"ema", "ema", scenario, ema_options}, false);
  std::printf("references: RTMA PC = %.1f ms/us, EMA PE = %.1f mJ/us\n\n",
              1000.0 * rtma.avg_rebuffer_per_user_slot_s(),
              ema.avg_energy_per_user_slot_mj());

  Table table("baseline sensitivity",
              {"baseline", "variant", "PE (mJ/us)", "PC (ms/us)",
               "RTMA still lower PC?", "EMA still lower PE?"});
  std::vector<std::vector<std::string>> csv_rows;

  const auto probe = [&](const std::string& name, const std::string& variant,
                         const SchedulerOptions& options) {
    const RunMetrics m = run_experiment({name, name, scenario, options}, false);
    const bool rtma_wins = rtma.avg_rebuffer_per_user_slot_s() <
                           m.avg_rebuffer_per_user_slot_s();
    const bool ema_wins =
        ema.avg_energy_per_user_slot_mj() < m.avg_energy_per_user_slot_mj();
    table.row({name, variant, format_double(m.avg_energy_per_user_slot_mj(), 1),
               format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1),
               rtma_wins ? "yes" : "NO", ema_wins ? "yes" : "NO"});
    csv_rows.push_back({name, variant, format_double(m.avg_energy_per_user_slot_mj(), 4),
                        format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                        rtma_wins ? "1" : "0", ema_wins ? "1" : "0"});
  };

  for (double factor : {1.1, 1.25, 1.5}) {
    SchedulerOptions options;
    options.throttling_rate_factor = factor;
    probe("throttling", "factor=" + format_double(factor, 2), options);
  }
  for (double low : {5.0, 10.0, 20.0}) {
    SchedulerOptions options;
    options.onoff_low_s = low;
    options.onoff_high_s = low + 30.0;
    probe("onoff", "low=" + format_double(low, 0) + "s", options);
  }
  probe("salsa", "defaults", {});
  for (double capacity : {20.0, 30.0, 60.0}) {
    SchedulerOptions options;
    options.estreamer_capacity_s = capacity;
    options.estreamer_resume_s = capacity / 5.0;
    probe("estreamer", "cap=" + format_double(capacity, 0) + "s", options);
  }
  table.print();
  maybe_write_csv(args.csv_dir, "ablation_baselines.csv",
                  {"baseline", "variant", "pe_mj", "pc_ms", "rtma_wins", "ema_wins"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_ablation_baselines", argc, argv, run);
}
