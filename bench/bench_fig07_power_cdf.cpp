// Figure 7: CDF of the per-slot power consumption (total energy across all
// users in a slot, J), EMA vs the default strategy (40 users). EMA schedules
// transmissions under better signal and avoids tail waste, shifting the
// whole distribution left; the paper reports ~50% of EMA slots below 25 J.
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

std::vector<double> to_joules(const std::vector<double>& mj) {
  std::vector<double> joules;
  joules.reserve(mj.size());
  for (double value : mj) joules.push_back(value / 1000.0);
  return joules;
}

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig07_power_cdf",
                     "Fig. 7: per-slot power CDF, EMA vs default");
  cli.add_flag("beta", "1.0", "rebuffering bound Omega = beta * R_default");
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;
  TraceCache& cache = global_trace_cache();
  const DefaultReference reference = run_default_reference(scenario, &cache);

  SchedulerOptions ema_options;
  ema_options.ema.v_weight = calibrate_v_for_rebuffer(
      scenario, cli.get_double("beta") * reference.rebuffer_per_user_slot_s, 1e-4,
      10.0, 10, &cache);

  const std::vector<ExperimentSpec> specs{
      {"default", "default", scenario, {}},
      {"ema", "ema", scenario, ema_options}};
  const std::vector<RunMetrics> results = run_grid(args, specs, /*keep_series=*/true);
  const RunMetrics& default_metrics = results[0];
  const RunMetrics& ema_metrics = results[1];

  const std::vector<double> default_power = to_joules(default_metrics.slot_energy_mj);
  const std::vector<double> ema_power = to_joules(ema_metrics.slot_energy_mj);

  print_cdf_table("Fig. 7 series: default power-per-slot CDF", "power_J",
                  default_power);
  print_cdf_table("Fig. 7 series: EMA power-per-slot CDF", "power_J", ema_power);

  Table summary("Fig. 7 summary", {"metric", "default", "ema"});
  summary.row({"median power per slot (J)",
               format_double(percentile(default_power, 0.5), 2),
               format_double(percentile(ema_power, 0.5), 2)});
  summary.row({"slots below 25 J",
               format_double(100.0 * fraction_at_most(default_power, 25.0), 1) + " %",
               format_double(100.0 * fraction_at_most(ema_power, 25.0), 1) + " %"});
  summary.row({"mean power per slot (J)",
               format_double(summarize(default_power).mean, 2),
               format_double(summarize(ema_power).mean, 2)});
  summary.print();

  std::vector<std::vector<std::string>> rows;
  for (const auto& point : empirical_cdf(default_power, 100)) {
    rows.push_back({"default", format_double(point.value, 5), format_double(point.fraction, 5)});
  }
  for (const auto& point : empirical_cdf(ema_power, 100)) {
    rows.push_back({"ema", format_double(point.value, 5), format_double(point.fraction, 5)});
  }
  maybe_write_csv(args.csv_dir, "fig07_power_cdf.csv", {"series", "power_j", "cdf"},
                  rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig07_power_cdf", argc, argv, run);
}
