// Ablation: static vs adaptive RTMA energy budgets under drift. The static
// scheme anchors Phi once on a default-strategy reference; the adaptive
// controller retunes Phi online from its own Eq. 3 estimates. Under a
// capacity wave plus arrival churn, the one-shot anchor goes stale while the
// controller tracks its target.
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_ablation_adaptive", "static vs adaptive RTMA budget",
                     10000, 40);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("adaptive-budget ablation",
              {"scenario", "scheduler", "PE (mJ/us)", "PC (ms/us)",
               "serving energy (mJ/tx-slot)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const bool drift : {false, true}) {
    ScenarioConfig scenario = paper_scenario(args.users, args.seed);
    scenario.max_slots = args.slots;
    if (drift) {
      scenario.capacity_kind = CapacityKind::kSine;
      scenario.capacity_wave_fraction = 0.4;
      scenario.capacity_wave_period = 700.0;
      scenario.arrival_spread_slots = 400;
    }
    const DefaultReference reference = run_default_reference(scenario);
    for (const char* name : {"rtma", "rtma-adaptive"}) {
      ExperimentSpec spec{name, name, scenario, {}};
      if (spec.scheduler == "rtma") {
        spec.options = rtma_options_for_alpha(1.0, reference);
      } else {
        spec.options.rtma_adaptive.target_energy_mj = reference.trans_per_tx_slot_mj;
      }
      const RunMetrics m = run_experiment(spec, false);
      double serving = 0.0;
      std::size_t counted = 0;
      for (const auto& user : m.per_user) {
        if (user.tx_slots == 0) continue;
        serving += user.trans_mj / as_double(user.tx_slots);
        ++counted;
      }
      if (counted > 0) serving /= as_double(counted);
      const std::string label = drift ? "drift (wave+churn)" : "static";
      table.row({label, name, format_double(m.avg_energy_per_user_slot_mj(), 1),
                 format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1),
                 format_double(serving, 0)});
      csv_rows.push_back({drift ? "drift" : "static", name,
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                          format_double(serving, 2)});
    }
  }
  table.print();
  std::printf("\nReading: Phi is a cap, not a setpoint — whenever RTMA's need-based\n"
              "shards spend less than the target, the controller relaxes the budget\n"
              "and the adaptive scheduler converges to the static one (static row).\n"
              "Under drift the controller re-tightens in expensive phases, trading\n"
              "some rebuffering for energy relative to the stale static anchor.\n");
  maybe_write_csv(args.csv_dir, "ablation_adaptive.csv",
                  {"scenario", "scheduler", "pe_mj", "pc_ms", "serving_mj"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_ablation_adaptive", argc, argv, run);
}
