// Perf regression gate for the slot engine (see docs/PERFORMANCE.md).
//
// Three measurement families, all on pinned deterministic workloads:
//
//  1. Solver microbench: the O(N*M) sliding-window EMA DP vs the
//     paper-literal O(N*M*phi_max) reference on the same instances. The gate
//     requires >= 5x speedup at N = 40 users with M >= 200 capacity units
//     (the paper's evaluation scale); the binary exits nonzero otherwise.
//  2. Slot-path matrix: end-to-end Framework::run_slot cost (ns/slot, both
//     the per-run SignalModel path and the campaign engine's cached-trace
//     path), the scheduler decision alone (ns/solve), and heap allocations
//     per slot for N in {40, 200, 1000} x {default, rtma, ema-fast, ema}.
//     This binary replaces the global operator new to count allocations.
//  3. Campaign gate: a 7-scheduler x 8-seed grid at N = 200 over the full
//     10000-slot horizon, run once with per-cell trace regeneration and once
//     through the shared trace cache. Cached results must be bit-identical,
//     and (at the full horizon; REPRO_SLOTS runs report only) >= 3x faster.
//
// Results land in BENCH_PR4.json (override with --out <path>); the JSON
// schema is documented in docs/PERFORMANCE.md. REPRO_SLOTS in the
// environment shrinks every loop for smoke runs. The paper-invariant
// validator must stay at its compiled-out-of-the-hot-path default here: the
// gate pins the zero-alloc slot path, and validation is not part of it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/ema.hpp"
#include "gateway/framework.hpp"
#include "net/base_station.hpp"
#include "sim/campaign.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_cache.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  void* ptr = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }

namespace jstream {
namespace {

using Clock = std::chrono::steady_clock;

/// Times `iters` calls of `body`, returning mean ns per call.
template <typename Fn>
double time_ns_per_iter(std::int64_t iters, Fn&& body) {
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < iters; ++i) body();
  const auto stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

std::int64_t repro_slots() {
  const char* env = std::getenv("REPRO_SLOTS");
  if (env == nullptr) return 0;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<std::int64_t>(v) : 0;
}

// ---------------------------------------------------------------------------
// Solver microbench: new O(N*M) DP vs the paper-literal reference.
// ---------------------------------------------------------------------------

struct SolverInstance {
  EmaSlotCosts costs;
  std::vector<std::int64_t> caps;
  std::int64_t capacity = 0;
};

SolverInstance make_solver_instance(std::size_t users, std::int64_t capacity,
                                    std::int64_t max_cap, std::uint64_t seed) {
  SolverInstance inst;
  Rng rng(seed);
  inst.costs.idle_cost.resize(users);
  inst.costs.active_base.resize(users);
  inst.costs.slope.resize(users);
  inst.caps.resize(users);
  for (std::size_t i = 0; i < users; ++i) {
    // Cost regimes of a loaded EMA slot: tail-scale idle costs, slopes on
    // both sides of zero (queue pressure flips the sign), heterogeneous caps.
    inst.costs.idle_cost[i] = rng.uniform(0.0, 5.0);
    inst.costs.active_base[i] = rng.uniform(0.0, 1.0) < 0.5 ? 0.0 : rng.uniform(0.0, 2.0);
    inst.costs.slope[i] = rng.uniform(-1.0, 1.0);
    inst.caps[i] = rng.uniform_int(1, max_cap);
  }
  inst.capacity = capacity;
  return inst;
}

double allocation_cost(const EmaSlotCosts& costs, const Allocation& alloc) {
  double sum = 0.0;
  for (std::size_t i = 0; i < alloc.units.size(); ++i) {
    sum += ema_cost(costs, i, alloc.units[i]);
  }
  return sum;
}

struct SolverResult {
  std::size_t users = 0;
  std::int64_t capacity_units = 0;
  std::int64_t fast_iters = 0;
  std::int64_t reference_iters = 0;
  double fast_ns_per_solve = 0.0;
  double reference_ns_per_solve = 0.0;
  double speedup = 0.0;
};

SolverResult bench_solver(std::size_t users, std::int64_t capacity,
                          std::int64_t fast_iters, std::int64_t ref_iters) {
  SolverResult result;
  result.users = users;
  result.capacity_units = capacity;
  result.fast_iters = fast_iters;
  result.reference_iters = ref_iters;

  const SolverInstance inst = make_solver_instance(users, capacity, 40, 0xbeef + users);
  EmaDpWorkspace ws;
  Allocation out;

  // Warm both paths and check they agree before trusting the timings.
  solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, ws, out);
  const Allocation ref = solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
  const double gap = allocation_cost(inst.costs, out) - allocation_cost(inst.costs, ref);
  require(gap < 1e-9 && gap > -1e-9, "solvers disagree; timings are meaningless");

  result.fast_ns_per_solve = time_ns_per_iter(fast_iters, [&] {
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, ws, out);
  });
  result.reference_ns_per_solve = time_ns_per_iter(ref_iters, [&] {
    const Allocation r = solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
    if (r.units.empty()) std::abort();  // keep the call observable
  });
  result.speedup = result.reference_ns_per_solve / result.fast_ns_per_solve;
  return result;
}

// ---------------------------------------------------------------------------
// Slot-path matrix: end-to-end run_slot cost and allocation counts.
// ---------------------------------------------------------------------------

struct SlotCase {
  std::string scheduler;
  std::size_t users = 0;
  std::int64_t measured_slots = 0;
  double ns_per_slot = 0.0;
  double ns_per_slot_traced = 0.0;  ///< same slots against the cached substrate
  double ns_per_solve = 0.0;
  double allocs_per_slot = 0.0;
};

SlotCase bench_slot_path(const std::string& scheduler_name, std::size_t users,
                         std::int64_t warmup, std::int64_t measured,
                         std::int64_t solve_iters) {
  SlotCase result;
  result.scheduler = scheduler_name;
  result.users = users;
  result.measured_slots = measured;

  ScenarioConfig scenario = paper_scenario(users, 42);
  scenario.capacity_kbps = 500.0 * static_cast<double>(users);
  std::vector<UserEndpoint> endpoints = build_endpoints(scenario);
  const BaseStation bs(capacity_profile(scenario));
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  Framework framework(InfoCollector(scenario.slot, scenario.link, scenario.radio),
                      make_scheduler(scheduler_name, options),
                      SchedulingMode::kEnergyMinimization, users);

  for (std::int64_t slot = 0; slot < warmup; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }

  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  result.ns_per_slot = time_ns_per_iter(measured, [&, slot = warmup]() mutable {
    (void)framework.run_slot(slot, endpoints, bs);
    ++slot;
  });
  const std::uint64_t allocs_after = g_alloc_count.load(std::memory_order_relaxed);
  result.allocs_per_slot = static_cast<double>(allocs_after - allocs_before) /
                           static_cast<double>(measured);

  // Same slots against the campaign engine's cached substrate: fresh
  // endpoints reading signal/throughput/energy out of the precomputed
  // slot-major matrices instead of evaluating the models per slot. The trace
  // horizon is trimmed to the measured window so generation stays cheap.
  ScenarioConfig traced_scenario = scenario;
  traced_scenario.max_slots = warmup + measured;
  const std::shared_ptr<const SignalTraceSet> trace =
      generate_signal_trace_set(traced_scenario);
  std::vector<UserEndpoint> traced_endpoints = build_endpoints(scenario);
  for (std::size_t i = 0; i < traced_endpoints.size(); ++i) {
    traced_endpoints[i].attach_trace(trace.get(), i);
  }
  Framework traced(InfoCollector(scenario.slot, scenario.link, scenario.radio),
                   make_scheduler(scheduler_name, options),
                   SchedulingMode::kEnergyMinimization, users);
  for (std::int64_t slot = 0; slot < warmup; ++slot) {
    (void)traced.run_slot(slot, traced_endpoints, bs);
  }
  result.ns_per_slot_traced = time_ns_per_iter(measured, [&, slot = warmup]() mutable {
    (void)traced.run_slot(slot, traced_endpoints, bs);
    ++slot;
  });

  // Decision cost alone, on the warm steady-state snapshot.
  Allocation decision;
  Scheduler& scheduler = framework.scheduler();
  const SlotContext& ctx = framework.last_context();
  scheduler.allocate_into(ctx, decision);
  result.ns_per_solve =
      time_ns_per_iter(solve_iters, [&] { scheduler.allocate_into(ctx, decision); });
  return result;
}

// ---------------------------------------------------------------------------
// Campaign gate: scheduler x seed grid, cached trace vs per-cell regeneration.
// ---------------------------------------------------------------------------

struct CampaignResult {
  std::size_t users = 0;
  std::size_t schedulers = 0;
  std::size_t replications = 0;
  std::int64_t horizon_slots = 0;
  double uncached_wall_s = 0.0;
  double cached_wall_s = 0.0;
  double speedup = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

CampaignResult bench_campaign(std::int64_t horizon) {
  // Every factory scheduler with paper-scale cost (the exact EMA DP at
  // N = 200 is benched separately in the slot matrix; ema-fast stands in for
  // it here so the grid stays minutes, not hours).
  const std::vector<std::string> names{"default", "throttling", "onoff",
                                       "salsa",   "estreamer",  "rtma",
                                       "ema-fast"};
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  std::vector<CampaignSeries> series;
  for (const std::string& name : names) series.push_back({name, name, options});

  ScenarioConfig base = paper_scenario(200, 42);
  base.max_slots = horizon;
  base.capacity_kbps = 500.0 * static_cast<double>(base.users);
  // Shorter sessions than the figure scenarios (not part of the trace key, so
  // generation cost is untouched): the gate measures how well the grid
  // amortizes trace generation, and early-stopped sims keep the generation
  // share of an uncached cell at its realistic full-horizon cost.
  base.video_min_mb = 100.0;
  base.video_max_mb = 200.0;
  const std::vector<ExperimentSpec> specs = make_campaign_grid(base, series, 8);

  CampaignResult result;
  result.users = base.users;
  result.schedulers = names.size();
  result.replications = 8;
  result.horizon_slots = horizon;

  CampaignOptions uncached_options;
  uncached_options.use_trace_cache = false;
  auto start = Clock::now();
  const std::vector<RunMetrics> uncached = run_campaign(specs, uncached_options);
  result.uncached_wall_s = seconds_since(start);

  TraceCache cache;
  CampaignOptions cached_options;
  cached_options.cache = &cache;
  start = Clock::now();
  const std::vector<RunMetrics> cached = run_campaign(specs, cached_options);
  result.cached_wall_s = seconds_since(start);
  result.cache_hits = cache.hits();
  result.cache_misses = cache.misses();
  result.speedup =
      result.cached_wall_s > 0.0 ? result.uncached_wall_s / result.cached_wall_s : 0.0;

  // The differential guarantee the cache rests on: every cell bit-identical.
  require(cached.size() == uncached.size(), "campaign grids differ in size");
  for (std::size_t i = 0; i < cached.size(); ++i) {
    require(cached[i].slots_run == uncached[i].slots_run &&
                cached[i].total_energy_mj() == uncached[i].total_energy_mj() &&
                cached[i].total_rebuffer_s() == uncached[i].total_rebuffer_s(),
            "campaign cached cell diverged from per-run regeneration");
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------

int run(int argc, const char* const* argv) {
  std::string out_path = "BENCH_PR4.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: bench_perf_gate [--out <path>]\n");
      return 0;
    }
  }

  const std::int64_t repro = repro_slots();
  const auto clamp = [&](std::int64_t n) { return repro > 0 ? std::min(n, repro) : n; };

  // Solver gate: paper scale (N = 40, M = 250 >= 200) plus one larger point.
  std::printf("solver microbench (exact O(N*M) vs reference O(N*M*phi_max))\n");
  std::vector<SolverResult> solver_results;
  solver_results.push_back(bench_solver(40, 250, clamp(2000), clamp(200)));
  solver_results.push_back(bench_solver(200, 1000, clamp(200), clamp(20)));
  for (const SolverResult& r : solver_results) {
    std::printf("  N=%-4zu M=%-5lld fast %10.0f ns/solve   reference %12.0f ns/solve   speedup %6.1fx\n",
                r.users, static_cast<long long>(r.capacity_units), r.fast_ns_per_solve,
                r.reference_ns_per_solve, r.speedup);
  }

  constexpr double kMinSpeedup = 5.0;
  const bool gate_pass = solver_results.front().speedup >= kMinSpeedup;

  std::printf("slot-path matrix (paper scenario, capacity 500 KB/s per user)\n");
  std::vector<SlotCase> slot_cases;
  const std::vector<std::size_t> populations{40, 200, 1000};
  const std::vector<std::string> schedulers{"default", "rtma", "ema-fast", "ema"};
  for (const std::size_t users : populations) {
    // Fewer measured slots at larger N keeps the gate under a minute.
    const std::int64_t measured = clamp(users == 40 ? 200 : users == 200 ? 60 : 24);
    const std::int64_t warmup = clamp(20);
    const std::int64_t solve_iters = clamp(users == 1000 ? 10 : 50);
    for (const std::string& name : schedulers) {
      slot_cases.push_back(bench_slot_path(name, users, warmup, measured, solve_iters));
      const SlotCase& c = slot_cases.back();
      std::printf(
          "  %-9s N=%-4zu %12.0f ns/slot %12.0f ns/slot(traced) %12.0f ns/solve %8.2f allocs/slot\n",
          c.scheduler.c_str(), c.users, c.ns_per_slot, c.ns_per_slot_traced,
          c.ns_per_solve, c.allocs_per_slot);
    }
  }

  // Campaign gate: amortizing trace generation across the grid must pay off.
  // REPRO_SLOTS shrinks the horizon so far that the sims dominate and the
  // ratio is meaningless; the >= 3x bar is enforced only at full scale.
  constexpr double kMinCampaignSpeedup = 3.0;
  std::printf("campaign grid (7 schedulers x 8 seeds, N=200)\n");
  const CampaignResult campaign = bench_campaign(clamp(10000));
  std::printf(
      "  uncached %7.2f s   cached %7.2f s   speedup %5.2fx   cache %llu hits / %llu misses\n",
      campaign.uncached_wall_s, campaign.cached_wall_s, campaign.speedup,
      static_cast<unsigned long long>(campaign.cache_hits),
      static_cast<unsigned long long>(campaign.cache_misses));
  const bool campaign_enforced = repro == 0;
  const bool campaign_pass =
      !campaign_enforced || campaign.speedup >= kMinCampaignSpeedup;

  std::ofstream json(out_path);
  require(json.good(), "cannot open perf-gate output file");
  json << "{\n";
  json << "  \"schema\": \"jstream-perf-gate-v2\",\n";
  json << "  \"workload\": \"paper_scenario(users, seed=42), capacity 500 KB/s per user\",\n";
  json << "  \"gate\": {\"metric\": \"solver[0].speedup_vs_reference\", \"min_speedup\": "
       << kMinSpeedup << ", \"pass\": " << (gate_pass ? "true" : "false") << "},\n";
  json << "  \"campaign_gate\": {\"metric\": \"campaign.speedup_cached_vs_uncached\", "
       << "\"min_speedup\": " << kMinCampaignSpeedup
       << ", \"enforced\": " << (campaign_enforced ? "true" : "false")
       << ", \"pass\": " << (campaign_pass ? "true" : "false") << "},\n";
  json << "  \"campaign\": {\"users\": " << campaign.users
       << ", \"schedulers\": " << campaign.schedulers
       << ", \"replications\": " << campaign.replications
       << ", \"horizon_slots\": " << campaign.horizon_slots
       << ", \"uncached_wall_s\": " << campaign.uncached_wall_s
       << ", \"cached_wall_s\": " << campaign.cached_wall_s
       << ", \"speedup_cached_vs_uncached\": " << campaign.speedup
       << ", \"cache_hits\": " << campaign.cache_hits
       << ", \"cache_misses\": " << campaign.cache_misses
       << ", \"bit_identical\": true},\n";
  json << "  \"solver\": [\n";
  for (std::size_t i = 0; i < solver_results.size(); ++i) {
    const SolverResult& r = solver_results[i];
    json << "    {\"users\": " << r.users << ", \"capacity_units\": " << r.capacity_units
         << ", \"fast_iters\": " << r.fast_iters
         << ", \"reference_iters\": " << r.reference_iters
         << ", \"fast_ns_per_solve\": " << r.fast_ns_per_solve
         << ", \"reference_ns_per_solve\": " << r.reference_ns_per_solve
         << ", \"speedup_vs_reference\": " << r.speedup << "}"
         << (i + 1 < solver_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"slot_path\": [\n";
  for (std::size_t i = 0; i < slot_cases.size(); ++i) {
    const SlotCase& c = slot_cases[i];
    json << "    {\"scheduler\": \"" << c.scheduler << "\", \"users\": " << c.users
         << ", \"measured_slots\": " << c.measured_slots
         << ", \"ns_per_slot\": " << c.ns_per_slot
         << ", \"ns_per_slot_traced\": " << c.ns_per_slot_traced
         << ", \"ns_per_solve\": " << c.ns_per_solve
         << ", \"allocs_per_slot\": " << c.allocs_per_slot << "}"
         << (i + 1 < slot_cases.size() ? "," : "") << "\n";
  }
  json << "  ]\n";
  json << "}\n";
  json.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!gate_pass) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: EMA-DP speedup %.1fx < %.1fx at N=40, M=250\n",
                 solver_results.front().speedup, kMinSpeedup);
    return 1;
  }
  if (!campaign_pass) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: campaign cached speedup %.2fx < %.1fx on the "
                 "7x8 grid at N=200\n",
                 campaign.speedup, kMinCampaignSpeedup);
    return 1;
  }
  std::printf("perf gate passed (solver %.1fx >= %.1fx; campaign %.2fx%s)\n",
              solver_results.front().speedup, kMinSpeedup, campaign.speedup,
              campaign_enforced ? " >= 3.0x" : ", informational under REPRO_SLOTS");
  return 0;
}

}  // namespace jstream

int main(int argc, char** argv) {
  try {
    return jstream::run(argc, argv);
  } catch (const jstream::Error& e) {
    std::fprintf(stderr, "bench_perf_gate: %s\n", e.what());
    return 2;
  }
}
