// Perf regression gate for the slot engine (see docs/PERFORMANCE.md).
//
// Seven measurement families, all on pinned deterministic workloads:
//
//  1. Solver microbench: the production EMA DP (cold and warm),
//     the PR2 monotone-deque DP it replaced, and the paper-literal
//     O(N*M*phi_max) reference on the same instances. The gate requires the
//     cold production solver >= 5x over the reference at N = 40 users with
//     M >= 200 capacity units (the paper's evaluation scale).
//  2. Slot-path matrix: end-to-end Framework::run_slot cost (mean ns/slot
//     with a 95% Student-t confidence half-width, both the per-run
//     SignalModel path and the campaign engine's cached-trace path), the
//     scheduler decision alone (ns/solve), and heap allocations per slot for
//     N in {40, 200, 1000} x {default, rtma, ema-fast, ema}. The PR6
//     tentpole gate lives here: exact EMA at N = 1000 must run under
//     1 ms/slot. This binary replaces the global operator new to count
//     allocations.
//  3. Certified coarsening: the same slot path with EmaConfig::coarsen_units
//     = 8, reporting the scheduler's SolveCertificate (exact vs certified
//     slots, max/mean certified gap). bench_theorem1_bounds compares these
//     gaps against the Theorem 1 drift bound B; here they are pinned so
//     regressions in the certificate itself are visible.
//  4. Campaign gate: a 7-scheduler x 8-seed grid at N = 200 over the full
//     10000-slot horizon, run once with per-cell trace regeneration and once
//     through the shared trace cache. Cached results must be bit-identical,
//     and (at the full horizon; REPRO_SLOTS runs report only) >= 3x faster.
//  5. Distributed gate: the same workload shape at 4 seeds, sharded over 4
//     worker processes through run_campaign_distributed. The merged results
//     must hash (xxh64 over the canonical frame encoding) to exactly the
//     serial engine's digest — enforced at every scale, since determinism
//     does not depend on timing. The wall-clock ratio is reported for
//     context only (it tracks core count, which CI does not pin).
//  6. Disk-warm gate: a trace-bound grid (short sessions, full-horizon
//     substrate) run cold against an empty persistent TraceStore and then
//     again with a fresh cache over the now-warm store. The warm pass must
//     regenerate nothing (generations == 0, every miss promoted from mmap)
//     at every scale, and at the full horizon must beat the cold pass by
//     >= 3x wall clock.
//  7. Service-scale gate: one trace-less 110k-population service run (the
//     numbers bench_service_steady part 3 reports): ns/user-slot ceiling,
//     RSS at the horizon <= 1.5x RSS after the fill, and the sustained
//     >= 100k concurrency floor, all enforced at full scale.
//
// Results land in BENCH_PR9.json (override with --out <path>); the JSON
// schema is documented in docs/PERFORMANCE.md. REPRO_SLOTS in the
// environment shrinks every loop for smoke runs. The paper-invariant
// validator must stay at its compiled-out-of-the-hot-path default here: the
// gate pins the zero-alloc slot path, and validation is not part of it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include <unistd.h>

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/ema.hpp"
#include "gateway/framework.hpp"
#include "net/base_station.hpp"
#include "session/service_campaign.hpp"
#include "sim/campaign.hpp"
#include "sim/distrib.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_cache.hpp"
#include "sim/trace_store.hpp"
#include "common/units.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  void* ptr = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }

namespace jstream {
namespace {

using Clock = std::chrono::steady_clock;

/// Times `iters` calls of `body`, returning mean ns per call.
template <typename Fn>
double time_ns_per_iter(std::int64_t iters, Fn&& body) {
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < iters; ++i) body();
  const auto stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         as_double(iters);
}

std::int64_t repro_slots() {
  const char* env = std::getenv("REPRO_SLOTS");
  if (env == nullptr) return 0;
  const long long v = std::atoll(env);
  return v > 0 ? v : 0;
}

// ---------------------------------------------------------------------------
// Solver microbench: production DP (cold + warm) vs deque DP vs reference DP.
// ---------------------------------------------------------------------------

struct SolverInstance {
  EmaSlotCosts costs;
  std::vector<std::int64_t> caps;
  std::int64_t capacity = 0;
};

SolverInstance make_solver_instance(std::size_t users, std::int64_t capacity,
                                    std::int64_t max_cap, std::uint64_t seed) {
  SolverInstance inst;
  Rng rng(seed);
  inst.costs.idle_cost.resize(users);
  inst.costs.active_base.resize(users);
  inst.costs.slope.resize(users);
  inst.caps.resize(users);
  for (std::size_t i = 0; i < users; ++i) {
    // Cost regimes of a loaded EMA slot: tail-scale idle costs, slopes on
    // both sides of zero (queue pressure flips the sign), heterogeneous caps.
    inst.costs.idle_cost[i] = rng.uniform(0.0, 5.0);
    inst.costs.active_base[i] = rng.uniform(0.0, 1.0) < 0.5 ? 0.0 : rng.uniform(0.0, 2.0);
    inst.costs.slope[i] = rng.uniform(-1.0, 1.0);
    inst.caps[i] = rng.uniform_int(1, max_cap);
  }
  inst.capacity = capacity;
  return inst;
}

double allocation_cost(const EmaSlotCosts& costs, const Allocation& alloc) {
  double sum = 0.0;
  for (std::size_t i = 0; i < alloc.units.size(); ++i) {
    sum += ema_cost(costs, i, alloc.units[i]);
  }
  return sum;
}

struct SolverResult {
  std::size_t users = 0;
  std::int64_t capacity_units = 0;
  std::int64_t fast_iters = 0;
  std::int64_t reference_iters = 0;
  double cold_ns_per_solve = 0.0;   ///< production DP, warm-start state dropped per solve
  double warm_ns_per_solve = 0.0;   ///< production DP, tail-drift sequence (resume engages)
  double deque_ns_per_solve = 0.0;  ///< the PR2 monotone-deque solver (before)
  double reference_ns_per_solve = 0.0;
  double speedup = 0.0;             ///< cold production DP vs reference (gated)
  double speedup_vs_deque = 0.0;    ///< cold production DP vs deque (the PR delta)
};

SolverResult bench_solver(std::size_t users, std::int64_t capacity,
                          std::int64_t fast_iters, std::int64_t ref_iters) {
  SolverResult result;
  result.users = users;
  result.capacity_units = capacity;
  result.fast_iters = fast_iters;
  result.reference_iters = ref_iters;

  SolverInstance inst = make_solver_instance(users, capacity, 40, 0xbeef + users);
  EmaDpWorkspace ws;
  EmaDpWorkspace deque_ws;
  Allocation out;

  // Warm all paths and check they agree before trusting the timings.
  solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, ws, out);
  const double fast_cost = allocation_cost(inst.costs, out);
  solve_min_cost_dp_deque(inst.costs, inst.caps, inst.capacity, deque_ws, out);
  const double deque_cost = allocation_cost(inst.costs, out);
  const Allocation ref = solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
  const double ref_cost = allocation_cost(inst.costs, ref);
  require(std::abs(fast_cost - ref_cost) < 1e-9 && std::abs(deque_cost - ref_cost) < 1e-9,
          "solvers disagree; timings are meaningless");

  // Cold: drop the memo/checkpoint state every iteration so the measured cost
  // is a full DP solve, not a reuse-layer replay.
  result.cold_ns_per_solve = time_ns_per_iter(fast_iters, [&] {
    ws.invalidate();
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, ws, out);
  });
  // Warm: a drifting-tail sequence (the last user's queue term moves each
  // slot), the shape the scheduler's cross-slot reuse is built for.
  double tail_drift = 0.0;
  const std::size_t last = users - 1;
  const double base_slope = inst.costs.slope[last];
  result.warm_ns_per_solve = time_ns_per_iter(fast_iters, [&] {
    tail_drift += 1e-6;
    inst.costs.slope[last] = base_slope + tail_drift;
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, ws, out);
  });
  inst.costs.slope[last] = base_slope;
  result.deque_ns_per_solve = time_ns_per_iter(fast_iters, [&] {
    solve_min_cost_dp_deque(inst.costs, inst.caps, inst.capacity, deque_ws, out);
  });
  result.reference_ns_per_solve = time_ns_per_iter(ref_iters, [&] {
    const Allocation r = solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
    if (r.units.empty()) std::abort();  // keep the call observable
  });
  result.speedup = result.reference_ns_per_solve / result.cold_ns_per_solve;
  result.speedup_vs_deque = result.deque_ns_per_solve / result.cold_ns_per_solve;
  return result;
}

// ---------------------------------------------------------------------------
// Slot-path matrix: end-to-end run_slot cost and allocation counts.
// ---------------------------------------------------------------------------

struct SlotCase {
  std::string scheduler;
  std::size_t users = 0;
  std::int64_t coarsen_units = 1;
  std::int64_t measured_slots = 0;
  double ns_per_slot = 0.0;
  double ns_per_slot_ci95 = 0.0;    ///< Student-t 95% half-width of the mean
  double ns_per_slot_traced = 0.0;  ///< same slots against the cached substrate
  double ns_per_solve = 0.0;
  double allocs_per_slot = 0.0;
  // Coarsened-mode certificate over the warmup+measured window (coarsen > 1).
  bool has_certificate = false;
  double cert_gap_max = 0.0;
  double cert_gap_mean = 0.0;
  std::int64_t cert_exact_slots = 0;
  std::int64_t cert_certified_slots = 0;
};

/// Times `count` calls of `body` individually, filling `samples_ns`.
template <typename Fn>
void sample_ns(std::int64_t count, std::vector<double>& samples_ns, Fn&& body) {
  samples_ns.clear();
  samples_ns.reserve(checked_size(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const auto start = Clock::now();
    body();
    const auto stop = Clock::now();
    samples_ns.push_back(std::chrono::duration<double, std::nano>(stop - start).count());
  }
}

double ci95_halfwidth(const Summary& s) {
  if (s.count < 2) return 0.0;
  return student_t_975(s.count - 1) * s.stddev /
         std::sqrt(as_double(s.count));
}

SlotCase bench_slot_path(const std::string& scheduler_name, std::size_t users,
                         std::int64_t warmup, std::int64_t measured,
                         std::int64_t solve_iters, std::int64_t coarsen_units) {
  SlotCase result;
  result.scheduler = scheduler_name;
  result.users = users;
  result.coarsen_units = coarsen_units;
  result.measured_slots = measured;

  ScenarioConfig scenario = paper_scenario(users, 42);
  scenario.capacity_kbps = 500.0 * as_double(users);
  std::vector<UserEndpoint> endpoints = build_endpoints(scenario);
  const BaseStation bs(capacity_profile(scenario));
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  options.ema.coarsen_units = coarsen_units;
  Framework framework(InfoCollector(scenario.slot, scenario.link, scenario.radio),
                      make_scheduler(scheduler_name, options),
                      SchedulingMode::kEnergyMinimization, users);

  for (std::int64_t slot = 0; slot < warmup; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }

  // Per-slot samples (pre-reserved so the sampling itself stays off the
  // allocation counter), then mean + 95% CI of the mean.
  std::vector<double> samples;
  samples.reserve(checked_size(measured));
  const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  std::int64_t slot_cursor = warmup;
  sample_ns(measured, samples, [&] {
    (void)framework.run_slot(slot_cursor, endpoints, bs);
    ++slot_cursor;
  });
  const std::uint64_t allocs_after = g_alloc_count.load(std::memory_order_relaxed);
  const Summary summary = summarize(samples);
  result.ns_per_slot = summary.mean;
  result.ns_per_slot_ci95 = ci95_halfwidth(summary);
  result.allocs_per_slot = as_double(allocs_after - allocs_before) /
                           as_double(measured);

  if (const SolveCertificate* cert = framework.scheduler().solve_certificate()) {
    result.has_certificate = coarsen_units > 1;
    result.cert_gap_max = cert->gap_max;
    const std::int64_t certified = cert->certified_slots;
    result.cert_gap_mean = certified > 0
                               ? cert->gap_sum / as_double(certified)
                               : 0.0;
    result.cert_exact_slots = cert->exact_slots;
    result.cert_certified_slots = certified;
  }

  // Same slots against the campaign engine's cached substrate: fresh
  // endpoints reading signal/throughput/energy out of the precomputed
  // slot-major matrices instead of evaluating the models per slot. The trace
  // horizon is trimmed to the measured window so generation stays cheap.
  ScenarioConfig traced_scenario = scenario;
  traced_scenario.max_slots = warmup + measured;
  const std::shared_ptr<const SignalTraceSet> trace =
      generate_signal_trace_set(traced_scenario);
  std::vector<UserEndpoint> traced_endpoints = build_endpoints(scenario);
  for (std::size_t i = 0; i < traced_endpoints.size(); ++i) {
    traced_endpoints[i].attach_trace(trace.get(), i);
  }
  Framework traced(InfoCollector(scenario.slot, scenario.link, scenario.radio),
                   make_scheduler(scheduler_name, options),
                   SchedulingMode::kEnergyMinimization, users);
  for (std::int64_t slot = 0; slot < warmup; ++slot) {
    (void)traced.run_slot(slot, traced_endpoints, bs);
  }
  result.ns_per_slot_traced = time_ns_per_iter(measured, [&, slot = warmup]() mutable {
    (void)traced.run_slot(slot, traced_endpoints, bs);
    ++slot;
  });

  // Decision cost alone, on the warm steady-state snapshot.
  Allocation decision;
  Scheduler& scheduler = framework.scheduler();
  const SlotContext& ctx = framework.last_context();
  scheduler.allocate_into(ctx, decision);
  result.ns_per_solve =
      time_ns_per_iter(solve_iters, [&] { scheduler.allocate_into(ctx, decision); });
  return result;
}

// ---------------------------------------------------------------------------
// Campaign gate: scheduler x seed grid, cached trace vs per-cell regeneration.
// ---------------------------------------------------------------------------

struct CampaignResult {
  std::size_t users = 0;
  std::size_t schedulers = 0;
  std::size_t replications = 0;
  std::int64_t horizon_slots = 0;
  double uncached_wall_s = 0.0;
  double cached_wall_s = 0.0;
  double speedup = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

CampaignResult bench_campaign(std::int64_t horizon) {
  // Every factory scheduler with paper-scale cost (the exact EMA DP at
  // N = 200 is benched separately in the slot matrix; ema-fast stands in for
  // it here so the grid stays minutes, not hours).
  const std::vector<std::string> names{"default", "throttling", "onoff",
                                       "salsa",   "estreamer",  "rtma",
                                       "ema-fast"};
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  std::vector<CampaignSeries> series;
  for (const std::string& name : names) series.push_back({name, name, options});

  ScenarioConfig base = paper_scenario(200, 42);
  base.max_slots = horizon;
  base.capacity_kbps = 500.0 * as_double(base.users);
  // Shorter sessions than the figure scenarios (not part of the trace key, so
  // generation cost is untouched): the gate measures how well the grid
  // amortizes trace generation, and early-stopped sims keep the generation
  // share of an uncached cell at its realistic full-horizon cost.
  base.video_min_mb = 100.0;
  base.video_max_mb = 200.0;
  const std::vector<ExperimentSpec> specs = make_campaign_grid(base, series, 8);

  CampaignResult result;
  result.users = base.users;
  result.schedulers = names.size();
  result.replications = 8;
  result.horizon_slots = horizon;

  CampaignOptions uncached_options;
  uncached_options.use_trace_cache = false;
  auto start = Clock::now();
  const std::vector<RunMetrics> uncached = run_campaign(specs, uncached_options);
  result.uncached_wall_s = seconds_since(start);

  TraceCache cache;
  CampaignOptions cached_options;
  cached_options.cache = &cache;
  start = Clock::now();
  const std::vector<RunMetrics> cached = run_campaign(specs, cached_options);
  result.cached_wall_s = seconds_since(start);
  result.cache_hits = cache.hits();
  result.cache_misses = cache.misses();
  result.speedup =
      result.cached_wall_s > 0.0 ? result.uncached_wall_s / result.cached_wall_s : 0.0;

  // The differential guarantee the cache rests on: every cell bit-identical.
  require(cached.size() == uncached.size(), "campaign grids differ in size");
  for (std::size_t i = 0; i < cached.size(); ++i) {
    require(cached[i].slots_run == uncached[i].slots_run &&
                cached[i].total_energy_mj() == uncached[i].total_energy_mj() &&
                cached[i].total_rebuffer_s() == uncached[i].total_rebuffer_s(),
            "campaign cached cell diverged from per-run regeneration");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Distributed gate: 4-shard multi-process campaign vs the serial engine.
// ---------------------------------------------------------------------------

struct DistribResult {
  std::size_t processes = 0;
  std::size_t cells = 0;
  double serial_wall_s = 0.0;
  double distributed_wall_s = 0.0;
  double speedup = 0.0;
  std::uint64_t serial_digest = 0;
  std::uint64_t merged_digest = 0;
  bool bit_identical = false;
};

DistribResult bench_distrib(std::int64_t horizon) {
  // Same workload shape as the campaign gate (every paper-scale factory
  // scheduler, N = 200, sessions outliving the horizon) at 4 seeds, so the
  // 4-shard split puts one full rep-major seed group in each worker. Both
  // sides get their own fresh cache: the serial one lives in this process,
  // the distributed one is inherited empty across fork() so every worker
  // generates exactly its shard's substrate.
  const std::vector<std::string> names{"default", "throttling", "onoff",
                                       "salsa",   "estreamer",  "rtma",
                                       "ema-fast"};
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  std::vector<CampaignSeries> series;
  for (const std::string& name : names) series.push_back({name, name, options});

  ScenarioConfig base = paper_scenario(200, 42);
  base.max_slots = horizon;
  base.capacity_kbps = 500.0 * as_double(base.users);
  base.video_min_mb = 100.0;
  base.video_max_mb = 200.0;
  const std::vector<ExperimentSpec> specs = make_campaign_grid(base, series, 4);

  DistribResult result;
  result.processes = 4;
  result.cells = specs.size();

  TraceCache serial_cache;
  CampaignOptions campaign;
  campaign.cache = &serial_cache;
  auto start = Clock::now();
  const std::vector<RunMetrics> serial = run_campaign(specs, campaign);
  result.serial_wall_s = seconds_since(start);

  TraceCache shard_cache;
  DistribOptions distrib;
  distrib.processes = result.processes;
  distrib.campaign = campaign;
  distrib.campaign.cache = &shard_cache;
  start = Clock::now();
  const std::vector<RunMetrics> merged = run_campaign_distributed(specs, distrib);
  result.distributed_wall_s = seconds_since(start);
  result.speedup = result.distributed_wall_s > 0.0
                       ? result.serial_wall_s / result.distributed_wall_s
                       : 0.0;

  result.serial_digest = metrics_digest(std::span<const RunMetrics>(serial));
  result.merged_digest = metrics_digest(std::span<const RunMetrics>(merged));
  result.bit_identical = result.serial_digest == result.merged_digest;
  return result;
}

// ---------------------------------------------------------------------------
// Disk-warm gate: persistent trace tier vs cold regeneration.
// ---------------------------------------------------------------------------

struct DiskWarmResult {
  std::size_t users = 0;
  std::size_t seeds = 0;
  std::size_t cells = 0;
  std::int64_t horizon_slots = 0;
  double cold_wall_s = 0.0;
  double warm_wall_s = 0.0;
  double speedup = 0.0;
  std::uint64_t cold_generations = 0;
  std::uint64_t warm_generations = 0;
  std::uint64_t warm_promotions = 0;
  bool bit_identical = false;
};

DiskWarmResult bench_disk_warm(std::int64_t horizon) {
  // Trace-bound grid: short sessions early-stop the sims, so wall time is
  // dominated by producing the channel substrate — exactly the cost the
  // persistent tier amortizes across campaign invocations. The trace horizon
  // stays at the full gate length (max_slots is part of the trace key), so
  // the cold pass carries its realistic generation cost.
  const std::vector<CampaignSeries> series = {{"default", "default", {}},
                                              {"ema-fast", "ema-fast", {}}};
  ScenarioConfig base = paper_scenario(200, 42);
  base.max_slots = horizon;
  base.capacity_kbps = 500.0 * as_double(base.users);
  base.video_min_mb = 2.0;
  base.video_max_mb = 4.0;
  constexpr std::size_t kSeeds = 8;
  const std::vector<ExperimentSpec> specs = make_campaign_grid(base, series, kSeeds);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("jstream_perf_gate_store_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  DiskWarmResult result;
  result.users = base.users;
  result.seeds = kSeeds;
  result.cells = specs.size();
  result.horizon_slots = horizon;
  {
    TraceStore store(dir);
    TraceCache cold_cache;
    CampaignOptions cold;
    cold.cache = &cold_cache;
    cold.store = &store;
    auto start = Clock::now();
    const std::vector<RunMetrics> cold_results = run_campaign(specs, cold);
    result.cold_wall_s = seconds_since(start);
    result.cold_generations = cold_cache.generations();

    // Disk-warm rerun: a fresh cache over the now-populated store. Every
    // miss must promote from the mmap tier; a single regeneration means the
    // fingerprint keying or the end-of-run flush broke.
    TraceCache warm_cache;
    CampaignOptions warm = cold;
    warm.cache = &warm_cache;
    start = Clock::now();
    const std::vector<RunMetrics> warm_results = run_campaign(specs, warm);
    result.warm_wall_s = seconds_since(start);
    result.warm_generations = warm_cache.generations();
    result.warm_promotions = warm_cache.promotions();
    result.speedup =
        result.warm_wall_s > 0.0 ? result.cold_wall_s / result.warm_wall_s : 0.0;

    result.bit_identical = warm_results.size() == cold_results.size();
    for (std::size_t i = 0; result.bit_identical && i < warm_results.size(); ++i) {
      result.bit_identical =
          metrics_digest(warm_results[i]) == metrics_digest(cold_results[i]);
    }
  }
  std::filesystem::remove_all(dir);
  return result;
}

// ---------------------------------------------------------------------------
// Service-scale gate: the 110k-population trace-less run, promoted from
// bench_service_steady part 3 (which now only reports these numbers).
// ---------------------------------------------------------------------------

/// Resident set size in KB from /proc/self/status (0 when unavailable).
long read_vmrss_kb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(status);
  return kb;
}

struct ServiceScaleResult {
  std::size_t population = 0;
  std::int64_t horizon_slots = 0;
  std::int64_t slots_run = 0;
  double ns_per_slot = 0.0;
  double ns_per_user_slot = 0.0;
  double mean_concurrency = 0.0;
  std::size_t peak_concurrency = 0;
  std::size_t live_at_end = 0;
  long rss_fill_kb = 0;
  long rss_end_kb = 0;
};

ServiceScaleResult bench_service_scale(bool full, std::int64_t horizon) {
  const std::size_t population = full ? 110000 : 2000;
  const std::int64_t fill_slots = std::min<std::int64_t>(40, horizon - 1);

  ScenarioConfig cell = paper_scenario(population, 44);
  cell.max_slots = horizon;
  cell.video_min_mb = 100.0;  // sessions outlive the horizon: pure steady load
  cell.video_max_mb = 200.0;

  ServiceConfig config;
  config.cell = cell;
  config.arrivals.kind = ArrivalKind::kPoisson;
  config.arrivals.rate_per_slot = as_double(population) / 30.0;
  config.warmup_slots = std::min<std::int64_t>(fill_slots + 20, horizon - 1);

  // Trace-less on purpose: a 110k x 300 substrate would dwarf the gateway
  // state this gate exists to bound.
  ServiceSimulator simulator(config, make_scheduler("default"));
  ServiceScaleResult result;
  result.population = population;
  result.horizon_slots = horizon;
  const auto start = Clock::now();
  while (simulator.step()) {
    if (simulator.slot() == fill_slots) result.rss_fill_kb = read_vmrss_kb();
  }
  const double wall_ns = seconds_since(start) * 1e9;
  result.live_at_end = simulator.active_sessions();
  const ServiceResult run = simulator.finish();
  result.rss_end_kb = read_vmrss_kb();
  if (result.rss_fill_kb == 0) result.rss_fill_kb = result.rss_end_kb;

  result.slots_run = run.service.slots_run;
  result.ns_per_slot = wall_ns / as_double(run.service.slots_run);
  result.ns_per_user_slot = result.ns_per_slot / as_double(population);
  result.mean_concurrency = run.service.mean_concurrency();
  result.peak_concurrency = run.service.peak_concurrency;
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------

int run(int argc, const char* const* argv) {
  std::string out_path = "BENCH_PR9.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: bench_perf_gate [--out <path>]\n");
      return 0;
    }
  }

  const std::int64_t repro = repro_slots();
  const auto clamp = [&](std::int64_t n) { return repro > 0 ? std::min(n, repro) : n; };

  // Solver gate: paper scale (N = 40, M = 250 >= 200), the campaign scale,
  // and the tentpole scale (N = 1000, M = 5000).
  std::printf("solver microbench (production DP cold/warm vs deque DP vs reference)\n");
  std::vector<SolverResult> solver_results;
  solver_results.push_back(bench_solver(40, 250, clamp(2000), clamp(200)));
  solver_results.push_back(bench_solver(200, 1000, clamp(200), clamp(20)));
  solver_results.push_back(bench_solver(1000, 5000, clamp(50), clamp(3)));
  for (const SolverResult& r : solver_results) {
    std::printf(
        "  N=%-4zu M=%-5lld cold %9.0f ns   warm %9.0f ns   deque %10.0f ns   "
        "reference %12.0f ns   vs-ref %7.1fx   vs-deque %5.1fx\n",
        r.users, static_cast<long long>(r.capacity_units), r.cold_ns_per_solve,
        r.warm_ns_per_solve, r.deque_ns_per_solve, r.reference_ns_per_solve,
        r.speedup, r.speedup_vs_deque);
  }

  constexpr double kMinSpeedup = 5.0;
  const bool solver_gate_pass = solver_results.front().speedup >= kMinSpeedup;

  std::printf("slot-path matrix (paper scenario, capacity 500 KB/s per user)\n");
  std::vector<SlotCase> slot_cases;
  const std::vector<std::size_t> populations{40, 200, 1000};
  const std::vector<std::string> schedulers{"default", "rtma", "ema-fast", "ema"};
  double ema_1000_ns_per_slot = -1.0;
  for (const std::size_t users : populations) {
    // Measured windows sized so every row — N = 1000 included — reports a
    // meaningful 95% CI while the whole matrix stays minutes.
    const std::int64_t measured = clamp(users == 40 ? 200 : users == 200 ? 120 : 160);
    const std::int64_t warmup = clamp(20);
    const std::int64_t solve_iters = clamp(users == 1000 ? 20 : 50);
    for (const std::string& name : schedulers) {
      slot_cases.push_back(bench_slot_path(name, users, warmup, measured,
                                           solve_iters, /*coarsen_units=*/1));
      const SlotCase& c = slot_cases.back();
      if (name == "ema" && users == 1000) ema_1000_ns_per_slot = c.ns_per_slot;
      std::printf(
          "  %-9s N=%-4zu %11.0f +-%8.0f ns/slot %11.0f ns/slot(traced) %11.0f "
          "ns/solve %7.2f allocs/slot\n",
          c.scheduler.c_str(), c.users, c.ns_per_slot, c.ns_per_slot_ci95,
          c.ns_per_slot_traced, c.ns_per_solve, c.allocs_per_slot);
    }
  }

  // Tentpole gate: exact EMA must fit the paper's 1 s slot with three orders
  // of margin at N = 1000 — under 1 ms per end-to-end slot.
  constexpr double kMaxEmaNsPerSlot = 1e6;
  const bool ema_gate_enforced = repro == 0;
  const bool ema_gate_pass =
      !ema_gate_enforced ||
      (ema_1000_ns_per_slot > 0.0 && ema_1000_ns_per_slot < kMaxEmaNsPerSlot);

  // Certified coarsening rows: same slot path, EMA with coarsen_units = 8.
  // At N = 200 capacity binds on a meaningful fraction of slots, so the DP
  // runs coarse and the certificate is exercised; at N = 1000 the separable
  // shortcut keeps the solve exact (gap 0) — both facts are pinned here.
  std::printf("certified coarsening (ema, coarsen_units=8)\n");
  std::vector<SlotCase> coarse_cases;
  for (const std::size_t users : {std::size_t{200}, std::size_t{1000}}) {
    const std::int64_t measured = clamp(users == 200 ? 120 : 160);
    coarse_cases.push_back(bench_slot_path("ema", users, clamp(20), measured,
                                           clamp(20), /*coarsen_units=*/8));
    const SlotCase& c = coarse_cases.back();
    std::printf(
        "  ema-k8    N=%-4zu %11.0f +-%8.0f ns/slot   gap max %.3e mean %.3e   "
        "%lld exact / %lld certified slots\n",
        c.users, c.ns_per_slot, c.ns_per_slot_ci95, c.cert_gap_max,
        c.cert_gap_mean, static_cast<long long>(c.cert_exact_slots),
        static_cast<long long>(c.cert_certified_slots));
    require(c.cert_gap_max >= 0.0, "certified gap must be non-negative");
  }

  // Campaign gate: amortizing trace generation across the grid must pay off.
  // REPRO_SLOTS shrinks the horizon so far that the sims dominate and the
  // ratio is meaningless; the >= 3x bar is enforced only at full scale.
  constexpr double kMinCampaignSpeedup = 3.0;
  std::printf("campaign grid (7 schedulers x 8 seeds, N=200)\n");
  const CampaignResult campaign = bench_campaign(clamp(10000));
  std::printf(
      "  uncached %7.2f s   cached %7.2f s   speedup %5.2fx   cache %llu hits / %llu misses\n",
      campaign.uncached_wall_s, campaign.cached_wall_s, campaign.speedup,
      static_cast<unsigned long long>(campaign.cache_hits),
      static_cast<unsigned long long>(campaign.cache_misses));
  const bool campaign_enforced = repro == 0;
  const bool campaign_pass =
      !campaign_enforced || campaign.speedup >= kMinCampaignSpeedup;

  // Distributed gate: merged shard results must hash to the serial digest.
  // Bit identity is timing-independent, so this gate is enforced at every
  // scale; only the wall-clock ratio is informational.
  std::printf("distributed campaign (7 schedulers x 4 seeds, N=200, 4 shards)\n");
  const DistribResult distrib = bench_distrib(clamp(10000));
  std::printf(
      "  serial %7.2f s   4-shard %7.2f s   speedup %5.2fx   digest %016llx %s\n",
      distrib.serial_wall_s, distrib.distributed_wall_s, distrib.speedup,
      static_cast<unsigned long long>(distrib.merged_digest),
      distrib.bit_identical ? "== serial" : "!= serial (MISMATCH)");
  const bool distrib_pass = distrib.bit_identical;

  // Disk-warm gate: a fresh cache over a warm store must promote every miss
  // (enforced always) and beat cold regeneration >= 3x at the full horizon.
  constexpr double kMinDiskWarmSpeedup = 3.0;
  std::printf("persistent trace tier (2 schedulers x 8 seeds, N=200, trace-bound)\n");
  const DiskWarmResult disk = bench_disk_warm(clamp(10000));
  std::printf(
      "  cold %7.2f s (%llu generations)   warm %7.2f s (%llu generations, "
      "%llu promotions)   speedup %5.2fx\n",
      disk.cold_wall_s, static_cast<unsigned long long>(disk.cold_generations),
      disk.warm_wall_s, static_cast<unsigned long long>(disk.warm_generations),
      static_cast<unsigned long long>(disk.warm_promotions), disk.speedup);
  const bool disk_enforced = repro == 0;
  const bool disk_pass = disk.warm_generations == 0 && disk.bit_identical &&
                         (!disk_enforced || disk.speedup >= kMinDiskWarmSpeedup);

  // Service-scale gate, promoted from bench_service_steady part 3.
  constexpr double kMaxServiceNsPerUserSlot = 1000.0;
  constexpr double kMaxServiceRssRatio = 1.5;
  constexpr double kMinServiceConcurrency = 100000.0;
  const bool service_enforced = repro == 0;
  std::printf("service scale (trace-less Poisson fill, default scheduler)\n");
  const ServiceScaleResult service =
      bench_service_scale(service_enforced, clamp(300));
  std::printf(
      "  %zu population slots, %lld slots: mean concurrency %.0f, peak %zu, "
      "%zu still streaming; %.0f ns/slot (%.1f ns/user-slot); RSS %.1f MB "
      "after fill, %.1f MB at end\n",
      service.population, static_cast<long long>(service.slots_run),
      service.mean_concurrency, service.peak_concurrency, service.live_at_end,
      service.ns_per_slot, service.ns_per_user_slot,
      as_double(service.rss_fill_kb) / 1000.0,
      as_double(service.rss_end_kb) / 1000.0);
  const bool service_rss_ok =
      service.rss_fill_kb <= 0 || service.rss_end_kb <= 0 ||
      as_double(service.rss_end_kb) <=
          kMaxServiceRssRatio * as_double(service.rss_fill_kb);
  const bool service_pass =
      !service_enforced ||
      (service_rss_ok && service.ns_per_user_slot < kMaxServiceNsPerUserSlot &&
       as_double(service.live_at_end) >= kMinServiceConcurrency &&
       service.mean_concurrency >= kMinServiceConcurrency);

  const auto hex_digest = [](std::uint64_t digest) {
    char buffer[19];
    std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    return std::string(buffer);
  };

  const auto emit_slot_case = [](std::ofstream& json, const SlotCase& c) {
    json << "    {\"scheduler\": \"" << c.scheduler << "\", \"users\": " << c.users
         << ", \"coarsen_units\": " << c.coarsen_units
         << ", \"measured_slots\": " << c.measured_slots
         << ", \"ns_per_slot\": " << c.ns_per_slot
         << ", \"ns_per_slot_ci95\": " << c.ns_per_slot_ci95
         << ", \"ns_per_slot_traced\": " << c.ns_per_slot_traced
         << ", \"ns_per_solve\": " << c.ns_per_solve
         << ", \"allocs_per_slot\": " << c.allocs_per_slot;
    if (c.has_certificate) {
      json << ", \"cert_gap_max\": " << c.cert_gap_max
           << ", \"cert_gap_mean\": " << c.cert_gap_mean
           << ", \"cert_exact_slots\": " << c.cert_exact_slots
           << ", \"cert_certified_slots\": " << c.cert_certified_slots;
    }
    json << "}";
  };

  std::ofstream json(out_path);
  require(json.good(), "cannot open perf-gate output file");
  json << "{\n";
  json << "  \"schema\": \"jstream-perf-gate-v4\",\n";
  json << "  \"workload\": \"paper_scenario(users, seed=42), capacity 500 KB/s per user\",\n";
  json << "  \"gate\": {\"metric\": \"solver[0].speedup_vs_reference\", \"min_speedup\": "
       << kMinSpeedup << ", \"pass\": " << (solver_gate_pass ? "true" : "false") << "},\n";
  json << "  \"ema_scale_gate\": {\"metric\": \"slot_path[ema,N=1000].ns_per_slot\", "
       << "\"max_ns_per_slot\": " << kMaxEmaNsPerSlot
       << ", \"measured_ns_per_slot\": " << ema_1000_ns_per_slot
       << ", \"enforced\": " << (ema_gate_enforced ? "true" : "false")
       << ", \"pass\": " << (ema_gate_pass ? "true" : "false") << "},\n";
  json << "  \"campaign_gate\": {\"metric\": \"campaign.speedup_cached_vs_uncached\", "
       << "\"min_speedup\": " << kMinCampaignSpeedup
       << ", \"enforced\": " << (campaign_enforced ? "true" : "false")
       << ", \"pass\": " << (campaign_pass ? "true" : "false") << "},\n";
  json << "  \"distrib_gate\": {\"metric\": \"distrib.merged_digest == distrib.serial_digest\", "
       << "\"processes\": " << distrib.processes
       << ", \"cells\": " << distrib.cells
       << ", \"serial_wall_s\": " << distrib.serial_wall_s
       << ", \"distributed_wall_s\": " << distrib.distributed_wall_s
       << ", \"speedup_distributed_vs_serial\": " << distrib.speedup
       << ", \"serial_digest\": \"" << hex_digest(distrib.serial_digest)
       << "\", \"merged_digest\": \"" << hex_digest(distrib.merged_digest)
       << "\", \"enforced\": true, \"pass\": "
       << (distrib_pass ? "true" : "false") << "},\n";
  json << "  \"disk_warm_gate\": {\"metric\": \"disk_warm.speedup_warm_vs_cold\", "
       << "\"min_speedup\": " << kMinDiskWarmSpeedup
       << ", \"users\": " << disk.users << ", \"seeds\": " << disk.seeds
       << ", \"cells\": " << disk.cells
       << ", \"horizon_slots\": " << disk.horizon_slots
       << ", \"cold_wall_s\": " << disk.cold_wall_s
       << ", \"warm_wall_s\": " << disk.warm_wall_s
       << ", \"speedup_warm_vs_cold\": " << disk.speedup
       << ", \"cold_generations\": " << disk.cold_generations
       << ", \"warm_generations\": " << disk.warm_generations
       << ", \"warm_promotions\": " << disk.warm_promotions
       << ", \"bit_identical\": " << (disk.bit_identical ? "true" : "false")
       << ", \"enforced\": " << (disk_enforced ? "true" : "false")
       << ", \"pass\": " << (disk_pass ? "true" : "false") << "},\n";
  json << "  \"service_scale_gate\": {\"metric\": \"service_scale.ns_per_user_slot\", "
       << "\"max_ns_per_user_slot\": " << kMaxServiceNsPerUserSlot
       << ", \"max_rss_ratio\": " << kMaxServiceRssRatio
       << ", \"min_concurrency\": " << kMinServiceConcurrency
       << ", \"population\": " << service.population
       << ", \"horizon_slots\": " << service.horizon_slots
       << ", \"slots_run\": " << service.slots_run
       << ", \"ns_per_slot\": " << service.ns_per_slot
       << ", \"ns_per_user_slot\": " << service.ns_per_user_slot
       << ", \"mean_concurrency\": " << service.mean_concurrency
       << ", \"peak_concurrency\": " << service.peak_concurrency
       << ", \"live_at_end\": " << service.live_at_end
       << ", \"rss_fill_kb\": " << service.rss_fill_kb
       << ", \"rss_end_kb\": " << service.rss_end_kb
       << ", \"enforced\": " << (service_enforced ? "true" : "false")
       << ", \"pass\": " << (service_pass ? "true" : "false") << "},\n";
  json << "  \"campaign\": {\"users\": " << campaign.users
       << ", \"schedulers\": " << campaign.schedulers
       << ", \"replications\": " << campaign.replications
       << ", \"horizon_slots\": " << campaign.horizon_slots
       << ", \"uncached_wall_s\": " << campaign.uncached_wall_s
       << ", \"cached_wall_s\": " << campaign.cached_wall_s
       << ", \"speedup_cached_vs_uncached\": " << campaign.speedup
       << ", \"cache_hits\": " << campaign.cache_hits
       << ", \"cache_misses\": " << campaign.cache_misses
       << ", \"bit_identical\": true},\n";
  json << "  \"solver\": [\n";
  for (std::size_t i = 0; i < solver_results.size(); ++i) {
    const SolverResult& r = solver_results[i];
    json << "    {\"users\": " << r.users << ", \"capacity_units\": " << r.capacity_units
         << ", \"fast_iters\": " << r.fast_iters
         << ", \"reference_iters\": " << r.reference_iters
         << ", \"cold_ns_per_solve\": " << r.cold_ns_per_solve
         << ", \"warm_ns_per_solve\": " << r.warm_ns_per_solve
         << ", \"deque_ns_per_solve\": " << r.deque_ns_per_solve
         << ", \"reference_ns_per_solve\": " << r.reference_ns_per_solve
         << ", \"speedup_vs_reference\": " << r.speedup
         << ", \"speedup_vs_deque\": " << r.speedup_vs_deque << "}"
         << (i + 1 < solver_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"slot_path\": [\n";
  for (std::size_t i = 0; i < slot_cases.size(); ++i) {
    emit_slot_case(json, slot_cases[i]);
    json << (i + 1 < slot_cases.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"coarsened\": [\n";
  for (std::size_t i = 0; i < coarse_cases.size(); ++i) {
    emit_slot_case(json, coarse_cases[i]);
    json << (i + 1 < coarse_cases.size() ? "," : "") << "\n";
  }
  json << "  ]\n";
  json << "}\n";
  json.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!solver_gate_pass) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: EMA-DP speedup %.1fx < %.1fx at N=40, M=250\n",
                 solver_results.front().speedup, kMinSpeedup);
    return 1;
  }
  if (!ema_gate_pass) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: exact EMA %.0f ns/slot >= %.0f ns/slot at N=1000\n",
                 ema_1000_ns_per_slot, kMaxEmaNsPerSlot);
    return 1;
  }
  if (!campaign_pass) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: campaign cached speedup %.2fx < %.1fx on the "
                 "7x8 grid at N=200\n",
                 campaign.speedup, kMinCampaignSpeedup);
    return 1;
  }
  if (!distrib_pass) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: 4-shard merged digest %016llx != serial "
                 "digest %016llx\n",
                 static_cast<unsigned long long>(distrib.merged_digest),
                 static_cast<unsigned long long>(distrib.serial_digest));
    return 1;
  }
  if (!disk_pass) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: disk-warm rerun (%llu generations, %s, "
                 "%.2fx vs cold) missed the warm-store bar\n",
                 static_cast<unsigned long long>(disk.warm_generations),
                 disk.bit_identical ? "bit-identical" : "DIVERGED",
                 disk.speedup);
    return 1;
  }
  if (!service_pass) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: service scale (%.1f ns/user-slot, RSS %ld "
                 "-> %ld KB, live %zu, mean %.0f) missed a bound\n",
                 service.ns_per_user_slot, service.rss_fill_kb,
                 service.rss_end_kb, service.live_at_end,
                 service.mean_concurrency);
    return 1;
  }
  std::printf(
      "perf gate passed (solver %.1fx >= %.1fx; ema N=1000 %s; campaign %.2fx%s; "
      "4-shard bit-identical; disk-warm %.2fx%s; service scale %s)\n",
      solver_results.front().speedup, kMinSpeedup,
      ema_gate_enforced ? "< 1 ms/slot" : "informational under REPRO_SLOTS",
      campaign.speedup,
      campaign_enforced ? " >= 3.0x" : ", informational under REPRO_SLOTS",
      disk.speedup,
      disk_enforced ? " >= 3.0x" : ", ratio informational under REPRO_SLOTS",
      service_enforced ? "within bounds" : "informational under REPRO_SLOTS");
  return 0;
}

}  // namespace jstream

int main(int argc, char** argv) {
  try {
    return jstream::run(argc, argv);
  } catch (const jstream::Error& e) {
    std::fprintf(stderr, "bench_perf_gate: %s\n", e.what());
    return 2;
  }
}
