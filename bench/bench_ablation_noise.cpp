// Ablation: signal-noise sensitivity. The paper says "30 dBm white Gaussian
// noise intensity" without defining it; this sweep shows that the figure
// shapes (RTMA beats default on rebuffering, EMA beats default on energy)
// hold across noise levels, which is why the exact interpretation does not
// matter for reproduction (see DESIGN.md).
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_ablation_noise", "signal noise sensitivity", 10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("noise ablation",
              {"sigma (dB)", "scheduler", "PE (mJ/us)", "PC (ms/us)", "fairness"});
  std::vector<std::vector<std::string>> csv_rows;
  for (double sigma : {0.0, 2.0, 4.0, 8.0}) {
    ScenarioConfig scenario = paper_scenario(args.users, args.seed);
    scenario.max_slots = args.slots;
    scenario.signal.noise_stddev_db = sigma;
    const DefaultReference reference = run_default_reference(scenario);
    for (const char* name : {"default", "rtma", "ema"}) {
      ExperimentSpec spec{name, name, scenario, {}};
      if (spec.scheduler == "rtma") spec.options = rtma_options_for_alpha(1.0, reference);
      if (spec.scheduler == "ema") spec.options.ema.v_weight = 0.05;
      const RunMetrics m = run_experiment(spec, true);
      table.row({format_double(sigma, 0), name,
                 format_double(m.avg_energy_per_user_slot_mj(), 1),
                 format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1),
                 format_double(m.mean_fairness(), 3)});
      csv_rows.push_back({format_double(sigma, 0), name,
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                          format_double(m.mean_fairness(), 4)});
    }
  }
  table.print();
  maybe_write_csv(args.csv_dir, "ablation_noise.csv",
                  {"sigma_db", "scheduler", "pe_mj", "pc_ms", "fairness"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_ablation_noise", argc, argv, run);
}
