// Figure 2: CDF of the per-slot Jain fairness index, RTMA vs the default
// strategy. Paper setting: 40 users, average required data amount 350 MB,
// RTMA energy budget Phi = E_default (alpha = 1).
//
// Expected shape: RTMA's fairness CDF sits far to the right of the default's
// — the paper reports RTMA > 0.7 in more than 90% of slots while the default
// stays below 0.2 for about half of them.
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig02_fairness_rtma",
                     "Fig. 2: per-slot fairness CDF, RTMA vs default");
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;
  // The reference run seeds the shared trace cache; both figure runs below
  // then replay the same precomputed channel through the campaign engine.
  const DefaultReference reference =
      run_default_reference(scenario, &global_trace_cache());

  const std::vector<ExperimentSpec> specs{
      {"default", "default", scenario, {}},
      {"rtma", "rtma", scenario, rtma_options_for_alpha(1.0, reference)}};
  const std::vector<RunMetrics> results = run_grid(args, specs, /*keep_series=*/true);
  const RunMetrics& default_metrics = results[0];
  const RunMetrics& rtma_metrics = results[1];

  print_cdf_table("Fig. 2 series: default fairness CDF", "fairness",
                  default_metrics.slot_fairness);
  print_cdf_table("Fig. 2 series: RTMA fairness CDF", "fairness",
                  rtma_metrics.slot_fairness);

  const double rtma_above_07 =
      1.0 - fraction_at_most(rtma_metrics.slot_fairness, 0.7);
  const double default_below_02 =
      fraction_at_most(default_metrics.slot_fairness, 0.2);
  Table summary("Fig. 2 summary (paper: RTMA > 0.7 for >90% of slots; "
                "default < 0.2 for ~50%)",
                {"metric", "measured"});
  summary.row({"slots with RTMA fairness > 0.7",
               format_double(100.0 * rtma_above_07, 1) + " %"});
  summary.row({"slots with default fairness < 0.2",
               format_double(100.0 * default_below_02, 1) + " %"});
  summary.row({"mean fairness default", format_double(default_metrics.mean_fairness(), 3)});
  summary.row({"mean fairness RTMA", format_double(rtma_metrics.mean_fairness(), 3)});
  summary.print();

  std::vector<std::vector<std::string>> rows;
  for (const auto& point : empirical_cdf(default_metrics.slot_fairness, 100)) {
    rows.push_back({"default", format_double(point.value, 5), format_double(point.fraction, 5)});
  }
  for (const auto& point : empirical_cdf(rtma_metrics.slot_fairness, 100)) {
    rows.push_back({"rtma", format_double(point.value, 5), format_double(point.fraction, 5)});
  }
  maybe_write_csv(args.csv_dir, "fig02_fairness.csv", {"series", "fairness", "cdf"}, rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig02_fairness_rtma", argc, argv, run);
}
