// Micro-benchmarks (google-benchmark): per-slot cost of every scheduler's
// allocate() on a synthetic snapshot, and of the two EMA slot solvers in
// isolation. Establishes that the gateway decision loop comfortably fits the
// paper's 1 s slot budget.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/factory.hpp"
#include "core/ema.hpp"
#include "core/ema_fast.hpp"
#include "common/rng.hpp"
#include "gateway/slot_context.hpp"
#include "radio/radio_profile.hpp"
#include "common/units.hpp"

namespace {

using namespace jstream;

/// Deterministic synthetic snapshot with `users` mid-session users.
SlotContext make_context(std::size_t users, const LinkModel& link,
                         const RadioProfile& radio) {
  Rng rng(7);
  SlotContext ctx;
  ctx.slot = 123;
  ctx.params = SlotParams{};
  ctx.capacity_units = ctx.params.capacity_units(20000.0);
  ctx.throughput = link.throughput.get();
  ctx.power = link.power.get();
  ctx.radio = &radio;
  for (std::size_t i = 0; i < users; ++i) {
    UserSlotInfo user;
    user.signal_dbm = rng.uniform(-110.0, -50.0);
    user.bitrate_kbps = rng.uniform(300.0, 600.0);
    user.remaining_kb = rng.uniform(1e4, 3e5);
    user.needs_data = true;
    user.link_units =
        ctx.params.link_units(link.throughput->throughput_kbps(user.signal_dbm));
    user.alloc_cap_units = user.link_units;
    user.buffer_s = rng.uniform(0.0, 30.0);
    user.total_play_s = 1000.0;
    user.elapsed_play_s = rng.uniform(0.0, 500.0);
    user.rrc_idle_s = rng.uniform(0.0, 10.0);
    user.rrc_promoted = true;
    ctx.users.push_back(user);
  }
  ctx.finalize();
  return ctx;
}

void bench_scheduler(benchmark::State& state, const std::string& name) {
  const LinkModel link = make_paper_link_model();
  const RadioProfile radio = paper_3g_profile();
  const auto users = checked_size(state.range(0));
  const SlotContext ctx = make_context(users, link, radio);
  auto scheduler = make_scheduler(name);
  scheduler->reset(users);
  for (auto _ : state) {
    Allocation alloc = scheduler->allocate(ctx);
    benchmark::DoNotOptimize(alloc.units.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          checked_index(users));
}

void bench_ema_solver(benchmark::State& state, bool exact) {
  const LinkModel link = make_paper_link_model();
  const RadioProfile radio = paper_3g_profile();
  const auto users = checked_size(state.range(0));
  const SlotContext ctx = make_context(users, link, radio);
  LyapunovQueues queues(users);
  Rng rng(11);
  for (std::size_t i = 0; i < users; ++i) {
    queues.update(i, 1.0, rng.uniform(0.0, 2.0));
  }
  const EmaSlotCosts costs = compute_ema_slot_costs(ctx, queues, 0.05);
  std::vector<std::int64_t> caps;
  for (const auto& user : ctx.users) caps.push_back(user.alloc_cap_units);
  for (auto _ : state) {
    Allocation alloc = exact ? solve_min_cost_dp(costs, caps, ctx.capacity_units)
                             : solve_min_cost_greedy(costs, caps, ctx.capacity_units);
    benchmark::DoNotOptimize(alloc.units.data());
  }
}

}  // namespace

BENCHMARK_CAPTURE(bench_scheduler, default_, "default")->Arg(20)->Arg(40)->Arg(80);
BENCHMARK_CAPTURE(bench_scheduler, throttling, "throttling")->Arg(40);
BENCHMARK_CAPTURE(bench_scheduler, onoff, "onoff")->Arg(40);
BENCHMARK_CAPTURE(bench_scheduler, salsa, "salsa")->Arg(40);
BENCHMARK_CAPTURE(bench_scheduler, estreamer, "estreamer")->Arg(40);
BENCHMARK_CAPTURE(bench_scheduler, rtma, "rtma")->Arg(20)->Arg(40)->Arg(80);
BENCHMARK_CAPTURE(bench_scheduler, ema, "ema")->Arg(20)->Arg(40)->Arg(80);
BENCHMARK_CAPTURE(bench_scheduler, ema_fast, "ema-fast")->Arg(20)->Arg(40)->Arg(80);
BENCHMARK_CAPTURE(bench_ema_solver, dp, true)->Arg(20)->Arg(40)->Arg(80);
BENCHMARK_CAPTURE(bench_ema_solver, greedy, false)->Arg(20)->Arg(40)->Arg(80);

BENCHMARK_MAIN();
