// Scaling study: wall-clock cost of a full simulation as the population
// grows well beyond the paper's 40 users. Establishes the simulator's and
// each scheduler's complexity envelope (the EMA DP is the only super-linear
// component: O(N * M * phi_max) per slot), and contrasts the per-run channel
// path against the campaign engine's cached-trace path — at N=1000 the
// per-slot signal/link evaluations are a visible share of the run.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/error.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_scaling_users", "simulation wall-clock vs population",
                     3000, 40);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("scaling: full-run wall clock (s), per-run vs cached trace",
              {"users", "scheduler", "uncached (s)", "cached (s)", "speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t users : {20UL, 40UL, 80UL, 160UL, 1000UL}) {
    ScenarioConfig scenario = paper_scenario(users, args.seed);
    scenario.max_slots = args.slots;
    // Scale the pipe with the population so sessions still complete.
    scenario.capacity_kbps = 500.0 * static_cast<double>(users);

    // Warm the cache outside the timed region: the cached column isolates
    // the slot-path win once the substrate is resident (a campaign pays the
    // generation once across all schedulers and replications).
    const std::shared_ptr<const SignalTraceSet> trace =
        global_trace_cache().get_or_generate(scenario);

    for (const char* name : {"default", "rtma", "ema-fast", "ema"}) {
      // The EMA DP at N=1000 is O(N*M) with M in the thousands — hours, not
      // seconds; the greedy solver covers that point.
      if (users >= 1000 && std::string(name) == "ema") continue;
      SchedulerOptions options;
      options.ema.v_weight = 0.05;
      const ExperimentSpec spec{name, name, scenario, options};

      auto start = std::chrono::steady_clock::now();
      const RunMetrics uncached = run_experiment(spec, false);
      const double wall_uncached = seconds_since(start);

      start = std::chrono::steady_clock::now();
      const RunMetrics cached = run_experiment(spec, false, trace);
      const double wall_cached = seconds_since(start);
      require(cached.slots_run == uncached.slots_run &&
                  cached.total_energy_mj() == uncached.total_energy_mj(),
              "cached trace run diverged from the per-run path");

      const double speedup = wall_cached > 0.0 ? wall_uncached / wall_cached : 0.0;
      table.row({std::to_string(users), name, format_double(wall_uncached, 3),
                 format_double(wall_cached, 3), format_double(speedup, 2) + "x"});
      csv_rows.push_back({std::to_string(users), name,
                          format_double(wall_uncached, 4),
                          format_double(wall_cached, 4),
                          format_double(cached.avg_energy_per_user_slot_mj(), 2)});
    }
  }
  table.print();
  maybe_write_csv(args.csv_dir, "scaling_users.csv",
                  {"users", "scheduler", "wall_uncached_s", "wall_cached_s", "pe_mj"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_scaling_users", argc, argv, run);
}
