// Scaling study: wall-clock cost of a full simulation as the population
// grows well beyond the paper's 40 users. Establishes the simulator's and
// each scheduler's complexity envelope (the EMA DP is the only super-linear
// component: O(N * M * phi_max) per slot).
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_scaling_users", "simulation wall-clock vs population",
                     3000, 40);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("scaling: full-run wall clock (s)",
              {"users", "default", "rtma", "ema-fast", "ema"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t users : {20UL, 40UL, 80UL, 160UL}) {
    ScenarioConfig scenario = paper_scenario(users, args.seed);
    scenario.max_slots = args.slots;
    // Scale the pipe with the population so sessions still complete.
    scenario.capacity_kbps = 500.0 * static_cast<double>(users);
    std::vector<std::string> row{std::to_string(users)};
    for (const char* name : {"default", "rtma", "ema-fast", "ema"}) {
      SchedulerOptions options;
      options.ema.v_weight = 0.05;
      const auto start = std::chrono::steady_clock::now();
      const RunMetrics m = run_experiment({name, name, scenario, options}, false);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      row.push_back(format_double(wall, 3));
      csv_rows.push_back({std::to_string(users), name, format_double(wall, 4),
                          format_double(m.avg_energy_per_user_slot_mj(), 2)});
    }
    table.row(row);
  }
  table.print();
  maybe_write_csv(args.csv_dir, "scaling_users.csv",
                  {"users", "scheduler", "wall_s", "pe_mj"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_scaling_users", argc, argv, run);
}
