// Scaling study: wall-clock cost of a full simulation as the population
// grows well beyond the paper's 40 users. Establishes the simulator's and
// each scheduler's complexity envelope and contrasts the per-run channel
// path against the campaign engine's cached-trace path — at N=1000 the
// per-slot signal/link evaluations are a visible share of the run.
//
// The exact EMA DP used to be the wall here (the pre-SoA solver was skipped
// at N=1000: O(N*M) with M in the thousands meant hours). The production
// solver's separable fast path and warm start keep the exact row tractable at
// every population, so it runs unskipped; the second table pins the
// before/after delta by timing the retired monotone-deque solver against the
// production solver on each population's steady-state slot. The ema-k8 rows
// run the certified capacity-coarsening mode (EmaConfig::coarsen_units = 8)
// and print the optimality-gap certificate harvested from RunMetrics.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "core/ema.hpp"
#include "gateway/framework.hpp"
#include "net/base_station.hpp"
#include "common/units.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Mean ns per call of `body` over `iters` calls.
template <typename Fn>
double time_ns_per_iter(std::int64_t iters, Fn&& body) {
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < iters; ++i) body();
  return 1e9 * seconds_since(start) / as_double(iters);
}

struct SolverDelta {
  std::size_t users = 0;
  std::int64_t m_units = 0;
  double before_us = 0.0;  ///< retired monotone-deque solver
  double after_us = 0.0;   ///< production solver (memo dropped per call)
  double speedup = 0.0;
};

/// Warms an exact-EMA framework into steady state on `scenario`, then times
/// the retired deque solver vs the production solver on the resulting slot
/// instance (the "before/after" column of this PR's solver rework).
SolverDelta bench_solver_delta(const ScenarioConfig& scenario) {
  auto ema = std::make_unique<EmaScheduler>(EmaConfig{0.05, 1});
  const EmaScheduler* ema_ptr = ema.get();
  std::vector<UserEndpoint> endpoints = build_endpoints(scenario);
  const BaseStation bs(capacity_profile(scenario));
  Framework framework(InfoCollector(scenario.slot, scenario.link, scenario.radio),
                      std::move(ema), SchedulingMode::kEnergyMinimization,
                      scenario.users);
  for (std::int64_t slot = 0; slot < 40; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }

  const SlotContext& ctx = framework.last_context();
  const std::size_t n = ctx.user_count();
  const EmaSlotCosts costs =
      compute_ema_slot_costs(ctx, ema_ptr->queues(), ema_ptr->config().v_weight);
  const std::span<const std::int64_t> caps{ctx.soa.alloc_cap_units.data(), n};

  SolverDelta delta;
  delta.users = scenario.users;
  delta.m_units = ctx.capacity_units;

  EmaDpWorkspace ws;
  Allocation before_out;
  Allocation after_out;
  solve_min_cost_dp_deque(costs, caps, ctx.capacity_units, ws, before_out);
  ws.invalidate();
  solve_min_cost_dp(costs, caps, ctx.capacity_units, ws, after_out);
  double before_cost = 0.0;
  double after_cost = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    before_cost += ema_cost(costs, i, before_out.units[i]);
    after_cost += ema_cost(costs, i, after_out.units[i]);
  }
  require(std::abs(before_cost - after_cost) < 1e-9,
          "deque and production solvers disagree on the steady-state slot");

  const std::int64_t before_iters = scenario.users >= 1000 ? 10 : 100;
  delta.before_us = 1e-3 * time_ns_per_iter(before_iters, [&] {
    solve_min_cost_dp_deque(costs, caps, ctx.capacity_units, ws, before_out);
  });
  // Drop the memo every call so the measurement is a solve (separable path or
  // DP), not an identical-instance replay.
  delta.after_us = 1e-3 * time_ns_per_iter(400, [&] {
    ws.invalidate();
    solve_min_cost_dp(costs, caps, ctx.capacity_units, ws, after_out);
  });
  delta.speedup = delta.after_us > 0.0 ? delta.before_us / delta.after_us : 0.0;
  return delta;
}

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_scaling_users", "simulation wall-clock vs population",
                     3000, 40);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("scaling: full-run wall clock (s), per-run vs cached trace",
              {"users", "scheduler", "uncached (s)", "cached (s)", "speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  std::vector<SolverDelta> deltas;
  struct CertLine {
    std::size_t users = 0;
    RunMetrics metrics;
  };
  std::vector<CertLine> cert_lines;
  for (std::size_t users : {20UL, 40UL, 80UL, 160UL, 1000UL}) {
    ScenarioConfig scenario = paper_scenario(users, args.seed);
    scenario.max_slots = args.slots;
    // Scale the pipe with the population so sessions still complete.
    scenario.capacity_kbps = 500.0 * as_double(users);

    // Warm the cache outside the timed region: the cached column isolates
    // the slot-path win once the substrate is resident (a campaign pays the
    // generation once across all schedulers and replications).
    const std::shared_ptr<const SignalTraceSet> trace =
        global_trace_cache().get_or_generate(scenario);

    // "ema" is the exact DP at every population — N = 1000 included, where
    // the separable fast path keeps the slot solve linear; "ema-k8" is the
    // certified coarsening mode.
    for (const char* name : {"default", "rtma", "ema-fast", "ema", "ema-k8"}) {
      const bool coarse = std::string(name) == "ema-k8";
      SchedulerOptions options;
      options.ema.v_weight = 0.05;
      options.ema.coarsen_units = coarse ? 8 : 1;
      const ExperimentSpec spec{name, coarse ? "ema" : name, scenario, options};

      auto start = std::chrono::steady_clock::now();
      const RunMetrics uncached = run_experiment(spec, false);
      const double wall_uncached = seconds_since(start);

      start = std::chrono::steady_clock::now();
      const RunMetrics cached = run_experiment(spec, false, trace);
      const double wall_cached = seconds_since(start);
      require(cached.slots_run == uncached.slots_run &&
                  cached.total_energy_mj() == uncached.total_energy_mj(),
              "cached trace run diverged from the per-run path");
      if (std::string(name) == "ema") {
        require(cached.has_certificate && cached.cert_gap_max == 0.0 &&
                    cached.cert_certified_slots == 0,
                "exact EMA must certify a zero gap on every slot");
      }
      if (coarse) cert_lines.push_back({users, cached});

      const double speedup = wall_cached > 0.0 ? wall_uncached / wall_cached : 0.0;
      table.row({std::to_string(users), name, format_double(wall_uncached, 3),
                 format_double(wall_cached, 3), format_double(speedup, 2) + "x"});
      csv_rows.push_back({std::to_string(users), name,
                          format_double(wall_uncached, 4),
                          format_double(wall_cached, 4),
                          format_double(cached.avg_energy_per_user_slot_mj(), 2)});
    }
    deltas.push_back(bench_solver_delta(scenario));
  }
  table.print();

  std::printf("\nema-k8 coarsening certificate (gap unit: slot objective)\n");
  for (const CertLine& line : cert_lines) {
    const RunMetrics& m = line.metrics;
    const double gap_mean = m.cert_certified_slots > 0
                                ? m.cert_gap_sum / as_double(m.cert_certified_slots)
                                : 0.0;
    std::printf(
        "  N=%-4zu gap max %.3e  mean %.3e  %lld exact / %lld certified slots\n",
        line.users, m.cert_gap_max, gap_mean,
        static_cast<long long>(m.cert_exact_slots),
        static_cast<long long>(m.cert_certified_slots));
    require(m.has_certificate && m.cert_gap_max >= 0.0,
            "coarsened EMA run must publish a non-negative certificate");
  }

  Table solver_table(
      "exact-EMA slot solver, before (deque DP) vs after (production solver)",
      {"users", "M units", "before (us)", "after (us)", "speedup"});
  std::vector<std::vector<std::string>> solver_rows;
  for (const SolverDelta& d : deltas) {
    solver_table.row({std::to_string(d.users), std::to_string(d.m_units),
                      format_double(d.before_us, 1), format_double(d.after_us, 1),
                      format_double(d.speedup, 1) + "x"});
    solver_rows.push_back({std::to_string(d.users), std::to_string(d.m_units),
                           format_double(d.before_us, 2),
                           format_double(d.after_us, 2),
                           format_double(d.speedup, 2)});
  }
  std::printf("\n");
  solver_table.print();

  maybe_write_csv(args.csv_dir, "scaling_users.csv",
                  {"users", "scheduler", "wall_uncached_s", "wall_cached_s", "pe_mj"},
                  csv_rows);
  maybe_write_csv(args.csv_dir, "scaling_ema_solver.csv",
                  {"users", "m_units", "before_us", "after_us", "speedup"},
                  solver_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_scaling_users", argc, argv, run);
}
