// Figure 3: CDF of the per-slot rebuffering time c_i(n), RTMA vs default
// (40 users, Phi = E_default). The paper reports ~90% of RTMA slots below
// 1.5 s while the default leaves a heavy tail of starved users, plus a
// per-user view: most default users barely stall but a starved minority
// accumulates tens of seconds.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig03_rebuffer_cdf",
                     "Fig. 3: per-slot rebuffering CDF, RTMA vs default");
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;
  const DefaultReference reference =
      run_default_reference(scenario, &global_trace_cache());

  const std::vector<ExperimentSpec> specs{
      {"default", "default", scenario, {}},
      {"rtma", "rtma", scenario, rtma_options_for_alpha(1.0, reference)}};
  const std::vector<RunMetrics> results = run_grid(args, specs, /*keep_series=*/true);
  const RunMetrics& default_metrics = results[0];
  const RunMetrics& rtma_metrics = results[1];

  print_cdf_table("Fig. 3 series: default per-slot rebuffering CDF", "rebuffer_s",
                  default_metrics.rebuffer_samples_s);
  print_cdf_table("Fig. 3 series: RTMA per-slot rebuffering CDF", "rebuffer_s",
                  rtma_metrics.rebuffer_samples_s);

  // Per-user cumulative rebuffering (the paper's bimodality observation).
  auto per_user = [](const RunMetrics& metrics) {
    std::vector<double> totals;
    totals.reserve(metrics.per_user.size());
    for (const auto& user : metrics.per_user) totals.push_back(user.rebuffer_s);
    return totals;
  };
  const std::vector<double> default_users = per_user(default_metrics);
  const std::vector<double> rtma_users = per_user(rtma_metrics);

  Table summary("Fig. 3 summary", {"metric", "default", "rtma"});
  summary.row({"slots with c <= 1.5 s",
               format_double(100.0 * fraction_at_most(default_metrics.rebuffer_samples_s, 1.5), 1) + " %",
               format_double(100.0 * fraction_at_most(rtma_metrics.rebuffer_samples_s, 1.5), 1) + " %"});
  summary.row({"users with < 1 s total stall",
               format_double(100.0 * fraction_at_most(default_users, 1.0), 1) + " %",
               format_double(100.0 * fraction_at_most(rtma_users, 1.0), 1) + " %"});
  summary.row({"users with > 11 s total stall",
               format_double(100.0 * (1.0 - fraction_at_most(default_users, 11.0)), 1) + " %",
               format_double(100.0 * (1.0 - fraction_at_most(rtma_users, 11.0)), 1) + " %"});
  summary.row({"PC (ms/user-slot)",
               format_double(1000.0 * default_metrics.avg_rebuffer_per_user_slot_s(), 1),
               format_double(1000.0 * rtma_metrics.avg_rebuffer_per_user_slot_s(), 1)});
  summary.print();

  std::vector<std::vector<std::string>> rows;
  for (const auto& point : empirical_cdf(default_metrics.rebuffer_samples_s, 100)) {
    rows.push_back({"default", format_double(point.value, 5), format_double(point.fraction, 5)});
  }
  for (const auto& point : empirical_cdf(rtma_metrics.rebuffer_samples_s, 100)) {
    rows.push_back({"rtma", format_double(point.value, 5), format_double(point.fraction, 5)});
  }
  maybe_write_csv(args.csv_dir, "fig03_rebuffer_cdf.csv",
                  {"series", "rebuffer_s", "cdf"}, rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig03_rebuffer_cdf", argc, argv, run);
}
