// Figure 6: CDF of the per-slot Jain fairness index, EMA vs the default
// strategy (40 users, average 350 MB). EMA's negative-queue mechanism keeps
// surplus users from being over-served, so its fairness CDF dominates the
// default's.
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig06_fairness_ema",
                     "Fig. 6: per-slot fairness CDF, EMA vs default");
  cli.add_flag("beta", "1.0", "rebuffering bound Omega = beta * R_default");
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;
  // Reference, calibration probes (a dozen sims), and both figure runs all
  // replay one cached channel trace.
  TraceCache& cache = global_trace_cache();
  const DefaultReference reference = run_default_reference(scenario, &cache);

  const double beta = cli.get_double("beta");
  SchedulerOptions ema_options;
  ema_options.ema.v_weight = calibrate_v_for_rebuffer(
      scenario, beta * reference.rebuffer_per_user_slot_s, 1e-4, 10.0, 10, &cache);
  std::printf("calibrated V = %.4f for Omega = %.1f ms/user-slot (beta = %.1f)\n\n",
              ema_options.ema.v_weight,
              1000.0 * beta * reference.rebuffer_per_user_slot_s, beta);

  const std::vector<ExperimentSpec> specs{
      {"default", "default", scenario, {}},
      {"ema", "ema", scenario, ema_options}};
  const std::vector<RunMetrics> results = run_grid(args, specs, /*keep_series=*/true);
  const RunMetrics& default_metrics = results[0];
  const RunMetrics& ema_metrics = results[1];

  print_cdf_table("Fig. 6 series: default fairness CDF", "fairness",
                  default_metrics.slot_fairness);
  print_cdf_table("Fig. 6 series: EMA fairness CDF", "fairness",
                  ema_metrics.slot_fairness);

  Table summary("Fig. 6 summary (paper: EMA fairer than default)",
                {"metric", "default", "ema"});
  summary.row({"mean fairness", format_double(default_metrics.mean_fairness(), 3),
               format_double(ema_metrics.mean_fairness(), 3)});
  summary.row({"median fairness",
               format_double(percentile(default_metrics.slot_fairness, 0.5), 3),
               format_double(percentile(ema_metrics.slot_fairness, 0.5), 3)});
  summary.print();

  std::vector<std::vector<std::string>> rows;
  for (const auto& point : empirical_cdf(default_metrics.slot_fairness, 100)) {
    rows.push_back({"default", format_double(point.value, 5), format_double(point.fraction, 5)});
  }
  for (const auto& point : empirical_cdf(ema_metrics.slot_fairness, 100)) {
    rows.push_back({"ema", format_double(point.value, 5), format_double(point.fraction, 5)});
  }
  maybe_write_csv(args.csv_dir, "fig06_fairness_ema.csv",
                  {"series", "fairness", "cdf"}, rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig06_fairness_ema", argc, argv, run);
}
