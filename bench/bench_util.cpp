#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>

#include "analysis/invariant_checker.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "telemetry/registry.hpp"
#include "common/units.hpp"

namespace jstream::bench {

namespace {

// Telemetry output destinations for the current process, captured by
// parse_common so guarded_main can finish the run without the body threading
// them through.
std::string g_telemetry_csv_dir;       // NOLINT(runtime/string)
bool g_print_telemetry = false;

}  // namespace

Cli make_cli(const std::string& program, const std::string& description,
             std::int64_t default_slots, std::size_t default_users) {
  Cli cli(program, description);
  cli.add_flag("users", std::to_string(default_users), "number of concurrent users");
  cli.add_flag("slots", std::to_string(default_slots),
               "simulation horizon in slots (REPRO_SLOTS env overrides)");
  cli.add_flag("seed", "42", "scenario RNG seed");
  cli.add_flag("csv", "", "directory for CSV export of the series (empty = off)");
  cli.add_flag("threads", "0", "sweep worker threads (0 = hardware concurrency)");
  cli.add_flag("telemetry", "false",
               "print the telemetry registry dump after the run");
  cli.add_flag("validate", "false",
               "check every slot against the paper invariants (Eq. 1/2/7/8/16, RRC); "
               "the run aborts on the first violation");
  return cli;
}

CommonArgs parse_common(Cli& cli, int argc, const char* const* argv) {
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.help().c_str(), stdout);
    std::exit(0);
  }
  CommonArgs args;
  args.users = checked_size(cli.get_int("users"));
  args.slots = cli.get_int("slots");
  if (!cli.provided("slots")) {
    args.slots = env_int("REPRO_SLOTS", args.slots);
  }
  args.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  args.csv_dir = cli.get_string("csv");
  args.threads = checked_size(cli.get_int("threads"));
  args.telemetry = cli.get_bool("telemetry");
  args.validate = cli.get_bool("validate");
  require(args.users > 0, "--users must be positive");
  require(args.slots > 0, "--slots must be positive");
  if (args.validate) analysis::set_validation_enabled(true);
  g_telemetry_csv_dir = args.csv_dir;
  g_print_telemetry = args.telemetry;
  return args;
}

std::vector<RunMetrics> run_grid(const CommonArgs& args,
                                 std::span<const ExperimentSpec> specs,
                                 bool keep_series) {
  CampaignOptions options;
  options.threads = args.threads;
  options.keep_series = keep_series;
  options.cache = &global_trace_cache();
  return run_campaign(specs, options);
}

void maybe_write_csv(const std::string& csv_dir, const std::string& file,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows) {
  if (csv_dir.empty()) return;
  std::filesystem::create_directories(csv_dir);
  CsvWriter writer(csv_dir + "/" + file, header);
  for (const auto& row : rows) writer.row(row);
  std::printf("[csv] wrote %s/%s (%zu rows)\n", csv_dir.c_str(), file.c_str(),
              rows.size());
}

void print_cdf_table(const std::string& title, const std::string& value_label,
                     const std::vector<double>& samples, std::size_t points) {
  Table table(title, {value_label, "cdf"});
  for (const CdfPoint& point : empirical_cdf(samples, points)) {
    table.row({format_double(point.value, 4), format_double(point.fraction, 4)});
  }
  table.print();
}

int guarded_main(const std::string& program, int argc, const char* const* argv,
                 int (*body)(int, const char* const*)) {
  try {
    const int status = body(argc, argv);
    if (status == 0) {
      if (!g_telemetry_csv_dir.empty()) {
        std::filesystem::create_directories(g_telemetry_csv_dir);
        const std::string path =
            g_telemetry_csv_dir + "/" + program + "_telemetry.json";
        telemetry::global_registry().write_json(path);
        std::printf("[telemetry] wrote %s\n", path.c_str());
      }
      if (g_print_telemetry) {
        std::printf("\n%s", telemetry::global_registry().render_text().c_str());
      }
    }
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", program.c_str(), e.what());
    return 1;
  }
}

}  // namespace jstream::bench
