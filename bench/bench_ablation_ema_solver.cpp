// Ablation: EMA's exact dynamic-programming slot solver (the paper's
// Algorithm 2) vs the slope-greedy EmaFast solver. Compares end-to-end
// metrics and wall-clock time. The greedy exploits the per-user linearity of
// f(i, phi) and should land within a small margin of the DP at a fraction of
// the cost.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_ablation_ema_solver", "EMA solver: exact DP vs greedy");
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;

  Table table("EMA solver ablation (V = 0.05)",
              {"solver", "PE (mJ/us)", "PC (ms/us)", "total E (kJ)", "wall (s)"});
  std::vector<std::vector<std::string>> csv_rows;
  double dp_energy = 0.0;
  for (const char* name : {"ema", "ema-fast"}) {
    SchedulerOptions options;
    options.ema.v_weight = 0.05;
    const auto start = std::chrono::steady_clock::now();
    const RunMetrics m = run_experiment({name, name, scenario, options}, false);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (std::string(name) == "ema") dp_energy = m.total_energy_mj();
    table.row(name,
              {m.avg_energy_per_user_slot_mj(),
               1000.0 * m.avg_rebuffer_per_user_slot_s(),
               m.total_energy_mj() / 1e6, wall},
              3);
    csv_rows.push_back({name, format_double(m.avg_energy_per_user_slot_mj(), 4),
                        format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                        format_double(wall, 4)});
    if (std::string(name) == "ema-fast" && dp_energy > 0.0) {
      std::printf("greedy total-energy gap vs DP: %+.2f %%\n",
                  100.0 * (m.total_energy_mj() - dp_energy) / dp_energy);
    }
  }
  table.print();
  maybe_write_csv(args.csv_dir, "ablation_ema_solver.csv",
                  {"solver", "pe_mj", "pc_ms", "wall_s"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_ablation_ema_solver", argc, argv, run);
}
