// Figure 9: EMA against the energy-efficient scheduling baselines across
// user counts.
//   (a) average energy per user-slot: EMA / EStreamer / SALSA / Default;
//   (b) average rebuffering per user-slot for the same four.
//
// Per the paper, EMA's rebuffering bound Omega is set to EStreamer's
// rebuffering time (measured on the mid-sweep scenario), then V is calibrated
// to that bound. Expected shape: EMA lowest energy — the paper claims >= 48%
// reduction vs SALSA and the default and >= 27% vs EStreamer.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

const char* kSchedulers[] = {"ema", "estreamer", "salsa", "default"};

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig09_ema_comparison",
                     "Fig. 9: EMA vs EStreamer/SALSA/Default");
  const CommonArgs args = parse_common(cli, argc, argv);

  const std::vector<std::size_t> user_counts{20, 25, 30, 35, 40};

  // Omega = EStreamer's rebuffering on the mid-sweep scenario.
  ScenarioConfig calibration = paper_scenario(user_counts[2], args.seed);
  calibration.max_slots = args.slots;
  TraceCache& cache = global_trace_cache();
  const RunMetrics estreamer_reference =
      run_experiment({"estreamer", "estreamer", calibration, {}}, false,
                     cache.get_or_generate(calibration));
  const double omega = estreamer_reference.avg_rebuffer_per_user_slot_s();
  SchedulerOptions ema_options;
  ema_options.ema.v_weight =
      calibrate_v_for_rebuffer(calibration, omega, 1e-4, 10.0, 10, &cache);
  std::printf("Omega = EStreamer rebuffering = %.1f ms/user-slot -> V = %.4f\n\n",
              1000.0 * omega, ema_options.ema.v_weight);

  std::vector<ExperimentSpec> specs;
  for (std::size_t users : user_counts) {
    ScenarioConfig scenario = paper_scenario(users, args.seed);
    scenario.max_slots = args.slots;
    for (const char* name : kSchedulers) {
      ExperimentSpec spec{name, name, scenario, {}};
      if (spec.scheduler == "ema") spec.options = ema_options;
      specs.push_back(std::move(spec));
    }
  }
  const std::vector<RunMetrics> results = run_grid(args, specs);
  const std::size_t stride = std::size(kSchedulers);

  Table energy("Fig. 9a: average energy (mJ per user-slot), tail in brackets",
               {"users", "ema", "estreamer", "salsa", "default"});
  Table rebuffer("Fig. 9b: average rebuffering time (ms per user-slot)",
                 {"users", "ema", "estreamer", "salsa", "default"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t p = 0; p < user_counts.size(); ++p) {
    std::vector<std::string> energy_row{std::to_string(user_counts[p])};
    std::vector<double> rebuf_row;
    for (std::size_t s = 0; s < stride; ++s) {
      const RunMetrics& m = results[p * stride + s];
      energy_row.push_back(format_double(m.avg_energy_per_user_slot_mj(), 1) + " [" +
                           format_double(m.avg_tail_per_user_slot_mj(), 1) + "]");
      rebuf_row.push_back(1000.0 * m.avg_rebuffer_per_user_slot_s());
      csv_rows.push_back({std::to_string(user_counts[p]), kSchedulers[s],
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(m.avg_tail_per_user_slot_mj(), 4),
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4)});
    }
    energy.row(energy_row);
    rebuffer.row(std::to_string(user_counts[p]), rebuf_row, 1);
  }
  energy.print();
  std::printf("\n");
  rebuffer.print();

  // Headline claim at the largest population.
  const std::size_t last = user_counts.size() - 1;
  const double ema_pe = results[last * stride].avg_energy_per_user_slot_mj();
  Table claim("Headline: EMA energy reduction at " +
                  std::to_string(user_counts[last]) +
                  " users (paper: >= 48% vs SALSA/default, >= 27% vs EStreamer)",
              {"baseline", "reduction"});
  for (std::size_t s = 1; s < stride; ++s) {
    const double base_pe = results[last * stride + s].avg_energy_per_user_slot_mj();
    const double reduction = base_pe > 0.0 ? 100.0 * (1.0 - ema_pe / base_pe) : 0.0;
    claim.row({kSchedulers[s], format_double(reduction, 1) + " %"});
  }
  claim.print();

  maybe_write_csv(args.csv_dir, "fig09_comparison.csv",
                  {"users", "scheduler", "energy_mj", "tail_mj", "rebuffer_ms"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig09_ema_comparison", argc, argv, run);
}
