// Figure 5: RTMA against the online scheduling baselines across user counts.
//   (a) average rebuffering time per user-slot: Throttling / ON-OFF / RTMA
//       (Phi = E_default) / Default;
//   (b) average energy per user-slot with the tail-energy component broken
//       out (the paper's black bars).
//
// Expected shape: RTMA's rebuffering stays low as competition grows while
// Throttling and the default degrade; RTMA's energy remains at or below the
// default's budget. The headline claim derived here: RTMA's rebuffering
// reduction vs each baseline at the largest population.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

const char* kSchedulers[] = {"throttling", "onoff", "rtma", "default"};

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig05_rtma_comparison",
                     "Fig. 5: RTMA vs Throttling/ON-OFF/Default");
  const CommonArgs args = parse_common(cli, argc, argv);

  const std::vector<std::size_t> user_counts{20, 25, 30, 35, 40};
  std::vector<ExperimentSpec> specs;
  for (std::size_t users : user_counts) {
    ScenarioConfig scenario = paper_scenario(users, args.seed);
    scenario.max_slots = args.slots;
    const DefaultReference reference =
        run_default_reference(scenario, &global_trace_cache());
    for (const char* name : kSchedulers) {
      ExperimentSpec spec{name, name, scenario, {}};
      if (spec.scheduler == "rtma") {
        spec.options = rtma_options_for_alpha(1.0, reference);
      }
      specs.push_back(std::move(spec));
    }
  }
  const std::vector<RunMetrics> results = run_grid(args, specs);
  const std::size_t stride = std::size(kSchedulers);

  Table rebuffer("Fig. 5a: average rebuffering time (ms per user-slot)",
                 {"users", "throttling", "onoff", "rtma", "default"});
  Table energy("Fig. 5b: average energy (mJ per user-slot), tail in brackets",
               {"users", "throttling", "onoff", "rtma", "default"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t p = 0; p < user_counts.size(); ++p) {
    std::vector<double> rebuf_row;
    std::vector<std::string> energy_row{std::to_string(user_counts[p])};
    for (std::size_t s = 0; s < stride; ++s) {
      const RunMetrics& m = results[p * stride + s];
      rebuf_row.push_back(1000.0 * m.avg_rebuffer_per_user_slot_s());
      energy_row.push_back(format_double(m.avg_energy_per_user_slot_mj(), 1) + " [" +
                           format_double(m.avg_tail_per_user_slot_mj(), 1) + "]");
      csv_rows.push_back({std::to_string(user_counts[p]), kSchedulers[s],
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(m.avg_tail_per_user_slot_mj(), 4)});
    }
    rebuffer.row(std::to_string(user_counts[p]), rebuf_row, 1);
    energy.row(energy_row);
  }
  rebuffer.print();
  std::printf("\n");
  energy.print();

  // Headline claim at the largest population (paper: >= 68% reduction).
  const std::size_t last = user_counts.size() - 1;
  const double rtma_pc =
      results[last * stride + 2].avg_rebuffer_per_user_slot_s();
  Table claim("Headline: RTMA rebuffering reduction at " +
                  std::to_string(user_counts[last]) + " users (paper: >= 68%)",
              {"baseline", "reduction"});
  for (std::size_t s = 0; s < stride; ++s) {
    if (std::string(kSchedulers[s]) == "rtma") continue;
    const double base_pc = results[last * stride + s].avg_rebuffer_per_user_slot_s();
    const double reduction = base_pc > 0.0 ? 100.0 * (1.0 - rtma_pc / base_pc) : 0.0;
    claim.row({kSchedulers[s], format_double(reduction, 1) + " %"});
  }
  claim.print();

  maybe_write_csv(args.csv_dir, "fig05_comparison.csv",
                  {"users", "scheduler", "rebuffer_ms", "energy_mj", "tail_mj"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig05_rtma_comparison", argc, argv, run);
}
