// Ablation: the data-unit (frame) size delta. The paper never publishes
// delta; this sweep shows how allocation granularity moves the metrics and
// how the EMA DP's cost scales (the DP is O(N * M * phi_max) with
// M, phi_max ~ 1/delta).
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_ablation_delta", "frame size delta sensitivity", 10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("delta ablation (rtma & ema, V = 0.05)",
              {"delta (KB)", "scheduler", "PE (mJ/us)", "PC (ms/us)", "wall (s)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (double delta : {50.0, 100.0, 200.0, 400.0}) {
    ScenarioConfig scenario = paper_scenario(args.users, args.seed);
    scenario.max_slots = args.slots;
    scenario.slot.delta_kb = delta;
    for (const char* name : {"rtma", "ema"}) {
      SchedulerOptions options;
      options.ema.v_weight = 0.05;
      const auto start = std::chrono::steady_clock::now();
      const RunMetrics m = run_experiment({name, name, scenario, options}, false);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      table.row({format_double(delta, 0), name,
                 format_double(m.avg_energy_per_user_slot_mj(), 1),
                 format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1),
                 format_double(wall, 3)});
      csv_rows.push_back({format_double(delta, 0), name,
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                          format_double(wall, 4)});
    }
  }
  table.print();
  maybe_write_csv(args.csv_dir, "ablation_delta.csv",
                  {"delta_kb", "scheduler", "pe_mj", "pc_ms", "wall_s"}, csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_ablation_delta", argc, argv, run);
}
