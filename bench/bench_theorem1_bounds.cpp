// Theorem 1: the Lyapunov drift-plus-penalty bounds
//
//   PE_inf <= E* + B/V          PC_inf <= (B + V*E*) / eps
//
// Sweeps V and reports measured PE / PC alongside the bound structure:
// PE should decrease toward a floor (E*) roughly like 1/V while PC grows
// roughly linearly in V. B is computed from the scenario (Eq. 18). A second
// sweep runs the certified coarsening mode (coarsen_units = 8) and compares
// every run's worst certified per-slot gap against the B slack that keeps
// Theorem 1 valid at PE <= E* + 2B/V.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/lyapunov.hpp"
#include "common/units.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_theorem1_bounds",
                     "Theorem 1: PE/PC vs Lyapunov weight V", 10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  ScenarioConfig scenario = paper_scenario(args.users, args.seed);
  scenario.max_slots = args.slots;

  // B = 1/2 sum (tau^2 + t_max^2): t_max_i is the largest playback time one
  // slot's shard can carry, bounded by the best-case link rate.
  const double v_max_kbps =
      scenario.link.throughput->throughput_kbps(scenario.signal.max_dbm);
  std::vector<double> t_max;
  for (const UserEndpoint& endpoint : build_endpoints(scenario)) {
    t_max.push_back(scenario.slot.tau_s * v_max_kbps /
                    endpoint.session.bitrate_kbps(0));
  }
  const double b_constant = lyapunov_drift_bound(scenario.slot.tau_s, t_max);
  std::printf("Lyapunov constant B = %.1f (tau = %.1f s, %zu users)\n\n", b_constant,
              scenario.slot.tau_s, scenario.users);

  const std::vector<double> v_values{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5};
  std::vector<ExperimentSpec> specs;
  std::vector<ExperimentSpec> coarse_specs;
  for (double v : v_values) {
    SchedulerOptions options;
    options.ema.v_weight = v;
    specs.push_back({"ema", "ema", scenario, options});
    // Certified coarsening at the same V: Theorem 1 degrades gracefully to
    // PE <= E* + 2B/V as long as every per-slot certified gap stays <= B
    // (the slack the invariant checker enforces under --validate).
    options.ema.coarsen_units = 8;
    coarse_specs.push_back({"ema-k8", "ema", scenario, options});
  }
  const std::vector<RunMetrics> results = run_grid(args, specs);
  const std::vector<RunMetrics> coarse_results = run_grid(args, coarse_specs);

  Table table("Theorem 1 sweep: PE falls ~1/V toward E*, PC grows ~V",
              {"V", "PE (mJ/user-slot)", "PC (ms/user-slot)", "B/V (mJ)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < v_values.size(); ++i) {
    const RunMetrics& m = results[i];
    table.row(format_double(v_values[i], 3),
              {m.avg_energy_per_user_slot_mj(),
               1000.0 * m.avg_rebuffer_per_user_slot_s(),
               b_constant / v_values[i] / as_double(scenario.users)},
              2);
    csv_rows.push_back({format_double(v_values[i], 5),
                        format_double(m.avg_energy_per_user_slot_mj(), 4),
                        format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4)});
  }
  table.print();

  // Coarsened solves against the Theorem 1 slack: the per-slot certified gap
  // (harvested from RunMetrics via Scheduler::solve_certificate) must stay
  // under B for the drift-plus-penalty chain to survive with 2B/V slack.
  Table coarse_table(
      "certified coarsening (k = 8) vs the Theorem 1 slack: gap_max <= B",
      {"V", "PE k8 (mJ/user-slot)", "gap max", "gap mean", "certified", "<= B"});
  std::vector<std::vector<std::string>> coarse_csv_rows;
  bool all_within_budget = true;
  for (std::size_t i = 0; i < v_values.size(); ++i) {
    const RunMetrics& m = coarse_results[i];
    require(m.has_certificate, "coarsened EMA run published no certificate");
    const double gap_mean =
        m.cert_certified_slots > 0
            ? m.cert_gap_sum / as_double(m.cert_certified_slots)
            : 0.0;
    const bool within = m.cert_gap_max <= b_constant;
    all_within_budget = all_within_budget && within;
    coarse_table.row({format_double(v_values[i], 3),
                      format_double(m.avg_energy_per_user_slot_mj(), 2),
                      format_double(m.cert_gap_max, 3), format_double(gap_mean, 3),
                      std::to_string(m.cert_certified_slots) + "/" +
                          std::to_string(m.cert_certified_slots + m.cert_exact_slots),
                      within ? "yes" : "NO"});
    coarse_csv_rows.push_back({format_double(v_values[i], 5),
                               format_double(m.avg_energy_per_user_slot_mj(), 4),
                               format_double(m.cert_gap_max, 6),
                               format_double(gap_mean, 6),
                               std::to_string(m.cert_certified_slots)});
  }
  std::printf("\n");
  coarse_table.print();
  std::printf("\nAll certified gaps within the B = %.1f slack: %s\n", b_constant,
              all_within_budget ? "yes" : "NO");

  const bool pe_monotone = results.front().avg_energy_per_user_slot_mj() >
                           results.back().avg_energy_per_user_slot_mj();
  const bool pc_monotone = results.front().avg_rebuffer_per_user_slot_s() <
                           results.back().avg_rebuffer_per_user_slot_s();
  std::printf("\nPE decreasing across the sweep: %s; PC increasing: %s\n",
              pe_monotone ? "yes" : "NO", pc_monotone ? "yes" : "NO");

  maybe_write_csv(args.csv_dir, "theorem1_bounds.csv", {"v", "pe_mj", "pc_ms"},
                  csv_rows);
  maybe_write_csv(args.csv_dir, "theorem1_coarse.csv",
                  {"v", "pe_mj", "gap_max", "gap_mean", "certified_slots"},
                  coarse_csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_theorem1_bounds", argc, argv, run);
}
