// Figure 10: the rebuffering-energy trade-off panel. For user counts 20..40,
// plot (total energy, total rebuffering) points for the default strategy,
// RTMA (alpha = 1) and EMA (beta = 1).
//
// Expected shape: relative to the default's curve, RTMA's points drift in the
// negative rebuffering direction at comparable energy, and EMA's points drift
// in the negative energy direction at comparable rebuffering.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig10_tradeoff",
                     "Fig. 10: rebuffering-energy panel, RTMA/EMA/default");
  const CommonArgs args = parse_common(cli, argc, argv);

  const std::vector<std::size_t> user_counts{20, 25, 30, 35, 40};

  // Anchor alpha/beta on the mid-sweep scenario.
  ScenarioConfig calibration = paper_scenario(user_counts[2], args.seed);
  calibration.max_slots = args.slots;
  TraceCache& cache = global_trace_cache();
  const DefaultReference calibration_ref = run_default_reference(calibration, &cache);
  SchedulerOptions ema_options;
  ema_options.ema.v_weight = calibrate_v_for_rebuffer(
      calibration, calibration_ref.rebuffer_per_user_slot_s, 1e-4, 10.0, 10, &cache);

  std::vector<ExperimentSpec> specs;
  for (std::size_t users : user_counts) {
    ScenarioConfig scenario = paper_scenario(users, args.seed);
    scenario.max_slots = args.slots;
    const DefaultReference reference = run_default_reference(scenario, &cache);
    specs.push_back({"default", "default", scenario, {}});
    specs.push_back({"rtma", "rtma", scenario, rtma_options_for_alpha(1.0, reference)});
    specs.push_back({"ema", "ema", scenario, ema_options});
  }
  const std::vector<RunMetrics> results = run_grid(args, specs);

  Table table("Fig. 10: (total energy, total rebuffering) per scheduler and user count",
              {"users", "scheduler", "total energy (kJ)", "total rebuffer (s)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t p = 0; p < user_counts.size(); ++p) {
    for (std::size_t s = 0; s < 3; ++s) {
      const RunMetrics& m = results[p * 3 + s];
      const std::string scheduler = specs[p * 3 + s].label;
      table.row({std::to_string(user_counts[p]), scheduler,
                 format_double(m.total_energy_mj() / 1e6, 2),
                 format_double(m.total_rebuffer_s(), 0)});
      csv_rows.push_back({std::to_string(user_counts[p]), scheduler,
                          format_double(m.total_energy_mj() / 1e6, 4),
                          format_double(m.total_rebuffer_s(), 2)});
    }
  }
  table.print();

  // Drift summary at the largest population.
  const std::size_t last = (user_counts.size() - 1) * 3;
  const RunMetrics& d = results[last];
  const RunMetrics& r = results[last + 1];
  const RunMetrics& e = results[last + 2];
  Table drift("Fig. 10 drift vs default at " + std::to_string(user_counts.back()) +
                  " users (paper: RTMA drifts -rebuffer, EMA drifts -energy)",
              {"scheduler", "delta energy", "delta rebuffer"});
  auto pct = [](double ours, double base) {
    return base > 0.0 ? format_double(100.0 * (ours - base) / base, 1) + " %" : "n/a";
  };
  drift.row({"rtma", pct(r.total_energy_mj(), d.total_energy_mj()),
             pct(r.total_rebuffer_s(), d.total_rebuffer_s())});
  drift.row({"ema", pct(e.total_energy_mj(), d.total_energy_mj()),
             pct(e.total_rebuffer_s(), d.total_rebuffer_s())});
  drift.print();

  maybe_write_csv(args.csv_dir, "fig10_tradeoff.csv",
                  {"users", "scheduler", "total_energy_kj", "total_rebuffer_s"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig10_tradeoff", argc, argv, run);
}
