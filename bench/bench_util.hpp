// Shared plumbing for the experiment binaries: common flags (--users,
// --slots, --seed, --csv, --threads, --telemetry, --validate), the
// REPRO_SLOTS environment override, CSV export of figure series, and the
// telemetry artifact every figure bench drops next to its CSV results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace jstream::bench {

/// Flags every experiment binary accepts.
struct CommonArgs {
  std::size_t users = 40;
  std::int64_t slots = 10000;
  std::uint64_t seed = 42;
  std::string csv_dir;     ///< empty = no CSV export
  std::size_t threads = 0; ///< sweep parallelism; 0 = hardware concurrency
  bool telemetry = false;  ///< print the registry dump when the bench exits
  bool validate = false;   ///< run every slot through the paper-invariant validator
};

/// Builds a Cli pre-populated with the common flags.
[[nodiscard]] Cli make_cli(const std::string& program, const std::string& description,
                           std::int64_t default_slots = 10000,
                           std::size_t default_users = 40);

/// Parses argv; prints help and exits(0) on --help; applies REPRO_SLOTS.
[[nodiscard]] CommonArgs parse_common(Cli& cli, int argc, const char* const* argv);

/// Runs a spec grid through the campaign engine: sharded over --threads
/// workers with every cell reading its channel from the process-wide trace
/// cache (one generation per scenario/seed instead of one per cell). Results
/// are order-preserving, bit-identical to run_sweep.
[[nodiscard]] std::vector<RunMetrics> run_grid(const CommonArgs& args,
                                               std::span<const ExperimentSpec> specs,
                                               bool keep_series = false);

/// Writes `rows` to `<csv_dir>/<file>` when csv_dir is non-empty.
void maybe_write_csv(const std::string& csv_dir, const std::string& file,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows);

/// Prints an empirical CDF as a two-column series table.
void print_cdf_table(const std::string& title, const std::string& value_label,
                     const std::vector<double>& samples, std::size_t points = 20);

/// Standard entry-point wrapper: runs `body`, reporting jstream::Error
/// cleanly instead of crashing. On success it finishes the telemetry side of
/// the run: with a CSV directory configured (parse_common saw --csv) it
/// writes `<csv_dir>/<program>_telemetry.json` next to the figure's results,
/// and with --telemetry it prints the registry dump.
int guarded_main(const std::string& program, int argc, const char* const* argv,
                 int (*body)(int, const char* const*));

}  // namespace jstream::bench
