// Figure 8: efficacy of EMA under different rebuffering bounds.
//   (a) total energy (kJ) vs user number for the default strategy and EMA
//       with beta in {0.8, 1.0, 1.2} (Omega = beta * R_default);
//   (b) the same series vs average data amount at fixed users.
//
// The Lyapunov weight V realizing each beta is calibrated once per panel on
// the mid-sweep scenario with the fast solver, then reused across the sweep —
// the per-series knob the paper describes as "beta can be tuned".
//
// Expected shape: EMA stays well below the default everywhere; looser bounds
// (larger beta) buy more energy savings.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

constexpr double kBetas[] = {0.8, 1.0, 1.2};

void run_panel(const std::string& title, const std::string& x_label,
               const std::vector<std::pair<std::string, ScenarioConfig>>& points,
               const ScenarioConfig& calibration_scenario, const CommonArgs& args,
               const std::string& csv_name) {
  // Calibrate V once per beta on the calibration scenario; the reference run
  // and all three bisections replay one cached trace.
  TraceCache& cache = global_trace_cache();
  const DefaultReference calibration_ref =
      run_default_reference(calibration_scenario, &cache);
  std::vector<double> v_for_beta;
  for (double beta : kBetas) {
    v_for_beta.push_back(calibrate_v_for_rebuffer(
        calibration_scenario, beta * calibration_ref.rebuffer_per_user_slot_s, 1e-4,
        10.0, 10, &cache));
  }
  std::printf("calibrated V: ");
  for (std::size_t b = 0; b < std::size(kBetas); ++b) {
    std::printf("beta=%.1f -> V=%.4f  ", kBetas[b], v_for_beta[b]);
  }
  std::printf("\n");

  std::vector<ExperimentSpec> specs;
  for (const auto& [x, scenario] : points) {
    specs.push_back({"default@" + x, "default", scenario, {}});
    for (std::size_t b = 0; b < std::size(kBetas); ++b) {
      SchedulerOptions options;
      options.ema.v_weight = v_for_beta[b];
      specs.push_back({"ema@" + x, "ema", scenario, options});
    }
  }
  const std::vector<RunMetrics> results = run_grid(args, specs);

  std::vector<std::string> header{x_label, "default (kJ)"};
  for (double beta : kBetas) header.push_back("ema b=" + format_double(beta, 1) + " (kJ)");
  Table table(title, header);
  std::vector<std::vector<std::string>> csv_rows;
  const std::size_t stride = 1 + std::size(kBetas);
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::vector<double> row;
    for (std::size_t s = 0; s < stride; ++s) {
      row.push_back(results[p * stride + s].total_energy_mj() / 1e6);
    }
    table.row(points[p].first, row, 2);
    for (std::size_t s = 0; s < stride; ++s) {
      csv_rows.push_back({points[p].first, header[s + 1], format_double(row[s], 4)});
    }
  }
  table.print();
  maybe_write_csv(args.csv_dir, csv_name, {x_label, "series", "total_energy_kj"},
                  csv_rows);
}

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fig08_ema_efficacy",
                     "Fig. 8: EMA total energy vs users / data amount");
  const CommonArgs args = parse_common(cli, argc, argv);

  std::vector<std::pair<std::string, ScenarioConfig>> user_points;
  for (std::size_t users : {20UL, 25UL, 30UL, 35UL, 40UL}) {
    ScenarioConfig scenario = paper_scenario(users, args.seed);
    scenario.max_slots = args.slots;
    user_points.emplace_back(std::to_string(users), scenario);
  }
  run_panel("Fig. 8a: total energy vs user number", "users", user_points,
            user_points[2].second, args, "fig08a_users.csv");
  std::printf("\n");

  std::vector<std::pair<std::string, ScenarioConfig>> data_points;
  for (double avg_mb : {150.0, 250.0, 350.0, 450.0, 550.0}) {
    ScenarioConfig scenario =
        paper_scenario_with_data_amount(args.users, avg_mb, args.seed);
    scenario.max_slots = args.slots;
    data_points.emplace_back(format_double(avg_mb, 0), scenario);
  }
  run_panel("Fig. 8b: total energy vs data amount (MB), " +
                std::to_string(args.users) + " users",
            "avg_data_mb", data_points, data_points[2].second, args,
            "fig08b_data.csv");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fig08_ema_efficacy", argc, argv, run);
}
