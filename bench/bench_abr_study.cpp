// ABR extension study: quality / rebuffering / switching / energy for every
// (scheduler, quality policy) pair across capacity levels. Not a paper
// figure — it demonstrates the framework generalizing to segmented
// adaptive-bitrate traffic, the direction modern deployments took after the
// paper's CBR setting.
#include <cstdio>

#include "abr/abr_simulator.hpp"
#include "bench_util.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_abr_study", "ABR quality/energy study", 10000, 30);
  const CommonArgs args = parse_common(cli, argc, argv);

  Table table("ABR study",
              {"capacity (MB/s)", "scheduler", "policy", "quality (KB/s)",
               "rebuf (s)", "switches", "QoE", "energy (kJ)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (double capacity_mbps : {8.0, 14.0, 20.0}) {
    for (const char* selector : {"fixed", "buffer-based", "rate-based"}) {
      for (const char* scheduler : {"default", "rtma", "ema-fast"}) {
        AbrScenarioConfig config;
        config.base = paper_scenario(args.users, args.seed);
        config.base.max_slots = args.slots;
        config.base.capacity_kbps = capacity_mbps * 1000.0;
        config.selector = selector;
        SchedulerOptions options;
        options.ema.v_weight = 0.05;
        const AbrRunMetrics m =
            simulate_abr(config, make_scheduler(scheduler, options));
        table.row({format_double(capacity_mbps, 0), scheduler, selector,
                   format_double(m.mean_quality_kbps(), 0),
                   format_double(m.mean_rebuffer_s(), 1),
                   format_double(m.mean_switches(), 1),
                   format_double(m.mean_qoe_score(), 0),
                   format_double(m.total_energy_mj() / 1e6, 2)});
        csv_rows.push_back({format_double(capacity_mbps, 1), scheduler, selector,
                            format_double(m.mean_quality_kbps(), 2),
                            format_double(m.mean_rebuffer_s(), 3),
                            format_double(m.mean_switches(), 2),
                            format_double(m.mean_qoe_score(), 2),
                            format_double(m.total_energy_mj() / 1e6, 4)});
      }
    }
  }
  table.print();
  std::printf("\nExpected: buffer-based adaptation converts spare capacity into\n"
              "quality; under scarcity it sheds quality instead of stalling, while\n"
              "fixed-rate clients stall. Scheduler choice shifts the energy column\n"
              "just as in the CBR experiments.\n");
  maybe_write_csv(args.csv_dir, "abr_study.csv",
                  {"capacity_mbps", "scheduler", "policy", "quality_kbps",
                   "rebuffer_s", "switches", "qoe", "energy_kj"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_abr_study", argc, argv, run);
}
