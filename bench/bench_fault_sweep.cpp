// Robustness sweep: PC/PE versus fault intensity for every factory policy.
//
// Runs all seven factory schedulers over the paper scenario at four degraded-
// cell intensity levels (benign / low / medium / high — deep-fade outages,
// capacity dips, mid-stream departures, stale feedback; see sim/fault.hpp and
// docs/ROBUSTNESS.md) and tabulates average energy (PE analogue), average
// rebuffering (PC analogue), completion rate, and Jain fairness per level.
// The grid runs through the campaign engine, so each level shares one cached
// channel substrate across the schedulers (fault intensities are part of the
// trace key). With --validate every slot of every cell passes the paper-
// invariant checker under faults — the acceptance gate for the fault layer.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/fault.hpp"

using namespace jstream;
using namespace jstream::bench;

namespace {

const char* kSchedulers[] = {"default", "throttling", "onoff",
                             "salsa",   "estreamer",  "rtma", "ema"};

struct FaultLevel {
  const char* name;
  FaultConfig faults;
};

std::vector<FaultLevel> make_levels() {
  std::vector<FaultLevel> levels;
  levels.push_back({"none", {}});

  FaultConfig low;
  low.outage_rate_per_kslot = 2.0;
  low.outage_min_slots = 5;
  low.outage_max_slots = 20;
  low.staleness_rate_per_kslot = 4.0;
  low.departure_fraction = 0.10;
  low.capacity_rate_per_kslot = 1.0;
  low.capacity_scale = 0.8;
  levels.push_back({"low", low});

  FaultConfig medium;
  medium.outage_rate_per_kslot = 5.0;
  medium.outage_min_slots = 5;
  medium.outage_max_slots = 30;
  medium.staleness_rate_per_kslot = 10.0;
  medium.staleness_max_slots = 30;
  medium.departure_fraction = 0.25;
  medium.capacity_rate_per_kslot = 2.0;
  medium.capacity_scale = 0.5;
  levels.push_back({"medium", medium});

  FaultConfig high;
  high.outage_rate_per_kslot = 12.0;
  high.outage_min_slots = 10;
  high.outage_max_slots = 40;
  high.staleness_rate_per_kslot = 25.0;
  high.staleness_min_slots = 5;
  high.staleness_max_slots = 40;
  high.departure_fraction = 0.5;
  high.capacity_rate_per_kslot = 4.0;
  high.capacity_scale = 0.3;
  levels.push_back({"high", high});
  return levels;
}

int run(int argc, const char* const* argv) {
  Cli cli = make_cli("bench_fault_sweep",
                     "Robustness: PC/PE vs degraded-cell fault intensity");
  const CommonArgs args = parse_common(cli, argc, argv);
  const std::vector<FaultLevel> levels = make_levels();

  // RTMA's Eq. 12 budget comes from the benign default-strategy reference,
  // as in the paper; the same options then face every fault level.
  ScenarioConfig base = paper_scenario(args.users, args.seed);
  base.max_slots = args.slots;
  TraceCache& cache = global_trace_cache();
  SchedulerOptions rtma_options =
      rtma_options_for_alpha(1.0, run_default_reference(base, &cache));

  std::vector<ExperimentSpec> specs;
  Table injected("Injected faults per level (" + std::to_string(args.users) +
                     " users, " + std::to_string(base.max_slots) + " slots)",
                 {"level", "outage slots", "stale slots", "departures",
                  "capacity windows"});
  for (const FaultLevel& level : levels) {
    ScenarioConfig scenario = base;
    scenario.faults = level.faults;
    const FaultSchedule schedule = make_fault_schedule(scenario);
    injected.row({level.name, std::to_string(schedule.total_outage_slots()),
                  std::to_string(schedule.total_stale_slots()),
                  std::to_string(schedule.departures()),
                  std::to_string(schedule.capacity_windows().size())});
    for (const char* name : kSchedulers) {
      ExperimentSpec spec{std::string(level.name) + "/" + name, name, scenario, {}};
      if (spec.scheduler == "rtma") spec.options = rtma_options;
      specs.push_back(std::move(spec));
    }
  }
  injected.print();
  std::printf("\n");

  // keep_series: mean_fairness needs the per-slot Jain samples.
  const std::vector<RunMetrics> results = run_grid(args, specs, true);
  const std::size_t stride = std::size(kSchedulers);

  std::vector<std::string> header{"scheduler"};
  for (const FaultLevel& level : levels) header.emplace_back(level.name);
  Table energy("PE: average energy (mJ per user-slot) vs fault intensity", header);
  Table rebuffer("PC: average rebuffering (ms per user-slot) vs fault intensity",
                 header);
  Table completion("Session completion rate vs fault intensity", header);
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t s = 0; s < stride; ++s) {
    std::vector<double> pe_row;
    std::vector<double> pc_row;
    std::vector<double> done_row;
    for (std::size_t level = 0; level < levels.size(); ++level) {
      const RunMetrics& m = results[level * stride + s];
      pe_row.push_back(m.avg_energy_per_user_slot_mj());
      pc_row.push_back(1000.0 * m.avg_rebuffer_per_user_slot_s());
      done_row.push_back(m.completion_rate());
      csv_rows.push_back({levels[level].name, kSchedulers[s],
                          format_double(m.avg_energy_per_user_slot_mj(), 4),
                          format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 4),
                          format_double(m.mean_fairness(), 4),
                          format_double(m.completion_rate(), 4)});
    }
    energy.row(kSchedulers[s], pe_row, 1);
    rebuffer.row(kSchedulers[s], pc_row, 1);
    completion.row(kSchedulers[s], done_row, 3);
  }
  energy.print();
  std::printf("\n");
  rebuffer.print();
  std::printf("\n");
  completion.print();

  maybe_write_csv(args.csv_dir, "fault_sweep.csv",
                  {"level", "scheduler", "energy_mj", "rebuffer_ms", "fairness",
                   "completion"},
                  csv_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return guarded_main("bench_fault_sweep", argc, argv, run);
}
