#!/usr/bin/env bash
# clang-tidy wall over src/: fails (exit 1) on ANY warning in first-party
# sources. Uses the curated .clang-tidy at the repo root (WarningsAsErrors is
# '*' there, so every emitted diagnostic is fatal).
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
#   TIDY_TESTS=1 scripts/run_clang_tidy.sh   additionally reports (but never
#   fails on) diagnostics in tests/ and bench/ — a periodic hygiene sweep,
#   not a gate: test code trades some strictness for brevity on purpose.
#
# The build dir must have been configured already (any cmake invocation works:
# CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally in the top-level
# CMakeLists). The script copies build/compile_commands.json to the repo root
# so editors and standalone clang-tidy invocations resolve includes the same
# way the gate does.
#
# When clang-tidy is not installed (this container ships only gcc), the gate
# is SKIPPED with exit 0 — the repo policy is "stub or gate missing deps",
# and the tidy wall re-arms automatically on any machine that has the tool.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found — configure first:" >&2
  echo "  cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 2
fi

# Keep the repo-root copy fresh for editors / bare clang-tidy runs — but only
# when the build tree's is actually newer, so repeated gate runs don't churn
# the root file's mtime (editors watch it and re-index on every touch).
if [[ ! -f "${repo_root}/compile_commands.json" ]] ||
   [[ "${build_dir}/compile_commands.json" -nt "${repo_root}/compile_commands.json" ]]; then
  cp "${build_dir}/compile_commands.json" "${repo_root}/compile_commands.json"
  echo "[clang-tidy] refreshed ${repo_root}/compile_commands.json"
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" > /dev/null 2>&1; then
  echo "[clang-tidy] SKIPPED: '${tidy_bin}' not installed on this machine."
  echo "[clang-tidy] compile_commands.json exported to repo root; install"
  echo "[clang-tidy] clang-tidy (or set CLANG_TIDY=<path>) to arm the gate."
  exit 0
fi

# First-party translation units only: src/**/*.cpp. Headers are pulled in via
# HeaderFilterRegex in .clang-tidy.
mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
echo "[clang-tidy] checking ${#sources[@]} translation units under src/ ..."

status=0
for source in "${sources[@]}"; do
  # WarningsAsErrors='*' in .clang-tidy makes any diagnostic a nonzero exit.
  if ! "${tidy_bin}" --quiet -p "${build_dir}" "${source}"; then
    status=1
    echo "[clang-tidy] FAILED: ${source}" >&2
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "[clang-tidy] wall failed — fix the diagnostics above (the checks and" >&2
  echo "[clang-tidy] the rationale for each disabled one live in .clang-tidy)." >&2
  exit 1
fi
echo "[clang-tidy] clean."

# Opt-in, report-only sweep over tests/ and bench/. Never fails the gate:
# the src/ wall above is the contract; this surfaces drift in test code so
# it can be cleaned up deliberately rather than blocking every commit.
if [[ "${TIDY_TESTS:-0}" == "1" ]]; then
  mapfile -t extra < <(find "${repo_root}/tests" "${repo_root}/bench" \
    -name '*.cpp' ! -path '*/tests/lint/fixtures/*' | sort)
  echo "[clang-tidy] TIDY_TESTS=1: reporting on ${#extra[@]} TUs under tests/ + bench/ (non-fatal) ..."
  reported=0
  for source in "${extra[@]}"; do
    if ! "${tidy_bin}" --quiet -p "${build_dir}" "${source}" 2> /dev/null; then
      reported=$((reported + 1))
      echo "[clang-tidy] (report-only) diagnostics in: ${source}"
    fi
  done
  echo "[clang-tidy] test/bench sweep done: ${reported} file(s) with findings (not gating)."
fi
