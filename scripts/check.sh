#!/usr/bin/env bash
# Full local correctness gauntlet — the seven gates a PR must pass. Stops at
# the first failing stage with a nonzero exit. Each stage can be skipped via
# its environment variable (set to 1), e.g. a machine without the disk for
# three build trees can run just the plain stage:
#
#   SKIP_ASAN=1 SKIP_TSAN=1 scripts/check.sh
#
# Stages:
#   1. plain build + full ctest            (SKIP_PLAIN)
#   2. clang-tidy wall over src/           (SKIP_TIDY; auto-skips if absent)
#   3. ASan/UBSan build + full ctest       (SKIP_ASAN)
#   4. TSan build + `ctest -L concurrency` (SKIP_TSAN)
#   5. smoke benches under --validate      (SKIP_SMOKE)
#   6. perf gate: bench_perf_gate          (SKIP_PERF)
#   7. jstream_lint project rules, src/    (SKIP_LINT)
#
# Build trees: build/ (plain), build-asan/, build-tsan/. JOBS controls -j
# (default: nproc).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
cd "${repo_root}"

stage() { printf '\n=== %s ===\n' "$1"; }

if [[ "${SKIP_PLAIN:-0}" != 1 ]]; then
  stage "1/7 plain build + ctest"
  cmake -B build -S . > /dev/null
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}" -LE smoke
else
  stage "1/7 plain build + ctest — SKIPPED (SKIP_PLAIN=1)"
fi

if [[ "${SKIP_TIDY:-0}" != 1 ]]; then
  stage "2/7 clang-tidy wall"
  scripts/run_clang_tidy.sh build
else
  stage "2/7 clang-tidy wall — SKIPPED (SKIP_TIDY=1)"
fi

if [[ "${SKIP_ASAN:-0}" != 1 ]]; then
  stage "3/7 ASan/UBSan build + ctest"
  cmake -B build-asan -S . -DJSTREAM_SANITIZE="address;undefined" > /dev/null
  cmake --build build-asan -j "${jobs}"
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" -LE smoke
else
  stage "3/7 ASan/UBSan — SKIPPED (SKIP_ASAN=1)"
fi

if [[ "${SKIP_TSAN:-0}" != 1 ]]; then
  stage "4/7 TSan build + concurrency suites"
  cmake -B build-tsan -S . -DJSTREAM_SANITIZE="thread" > /dev/null
  cmake --build build-tsan -j "${jobs}"
  ctest --test-dir build-tsan --output-on-failure -L concurrency
else
  stage "4/7 TSan — SKIPPED (SKIP_TSAN=1)"
fi

if [[ "${SKIP_SMOKE:-0}" != 1 ]]; then
  stage "5/7 smoke benches (--validate, REPRO_SLOTS=50)"
  ctest --test-dir build --output-on-failure -L smoke
  # One figure explicitly through the campaign engine: run_grid -> run_campaign
  # shards the scheduler x population grid over the thread pool with the shared
  # trace cache, and --validate keeps the paper-invariant checks on every cell.
  REPRO_SLOTS=50 build/bench/bench_fig09_ema_comparison --validate > /dev/null
  # Fault layer gate: every factory scheduler x fault intensity level under
  # the paper-invariant validator, then the golden-run digests (which include
  # a faulted case). See docs/ROBUSTNESS.md.
  REPRO_SLOTS=50 build/bench/bench_fault_sweep --validate > /dev/null
  # Service-mode gate: every factory scheduler over the Poisson steady-state
  # grid, the admission overload comparison, and the zero-arrival batch
  # equivalence, all under the validator; then the session suites and the
  # golden digests (batch + service). See docs/SERVICE.md.
  REPRO_SLOTS=50 build/bench/bench_service_steady --validate > /dev/null
  # Distributed engine gate: a 2-process sharded campaign (batch + service)
  # must merge bit-identically to the serial engine, with the paper-invariant
  # validator active inside every forked worker. See docs/PERFORMANCE.md.
  REPRO_SLOTS=50 build/bench/bench_distrib_smoke --validate > /dev/null
  # Prediction gate: the horizon x error-sigma sweep of the prediction-
  # assisted EMA (benign + faulted + stale-feedback variants) under the
  # validator. The >= 50% oracle-headroom recovery acceptance bound only
  # arms at full scale (REPRO_SLOTS unset); at 50 slots the run still
  # exercises the forecast plumbing end to end. See docs/PREDICTION.md.
  REPRO_SLOTS=50 build/bench/bench_prediction --validate > /dev/null
  ctest --test-dir build --output-on-failure -L session -LE smoke
  ctest --test-dir build --output-on-failure -L golden
else
  stage "5/7 smoke benches — SKIPPED (SKIP_SMOKE=1)"
fi

if [[ "${SKIP_PERF:-0}" != 1 ]]; then
  stage "6/7 perf gate (bench_perf_gate -> BENCH_PR9.json)"
  # Enforces the pinned regression gates: the exact-EMA solver >= 5x over the
  # paper-literal DP, exact EMA < 1 ms/slot end-to-end at N = 1000, the
  # campaign cache >= 3x on the full grid, the 4-shard multi-process merge
  # bit-identical to serial, the disk-warm trace-store rerun (zero
  # regenerations always; >= 3x at full scale), and the 110k-session
  # service-scale bounds. With REPRO_SLOTS set the timing/scale gates turn
  # informational (the binary still verifies solver agreement, certificate
  # sanity, and both bit-identity gates); unset it for the real gate.
  build/bench/bench_perf_gate --out build/BENCH_PR9.json
else
  stage "6/7 perf gate — SKIPPED (SKIP_PERF=1)"
fi

if [[ "${SKIP_LINT:-0}" != 1 ]]; then
  stage "7/7 jstream_lint project rules over src/"
  # The project-rule analyzer (tools/lint): hot-path allocations, Rng
  # discipline, digest determinism, checked narrowing, finalize guards.
  # Pure lexical C++, gcc-only friendly — this gate never self-skips.
  # Rules, suppression syntax, and rationale: docs/STATIC_ANALYSIS.md.
  build/tools/lint/jstream_lint --root "${repo_root}" --list-suppressions src
else
  stage "7/7 jstream_lint — SKIPPED (SKIP_LINT=1)"
fi

printf '\nAll requested stages passed.\n'
