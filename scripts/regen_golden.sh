#!/usr/bin/env bash
# Regenerates tests/integration/golden_runs.csv and
# tests/integration/service_golden_runs.csv from the current build.
#
# Run this ONLY when a numerical change is intentional (new scheduler logic,
# a deliberate formula fix); then review the CSV diff like code — every
# changed cell is a behavioural change some figure or claim may depend on.
#
#   scripts/regen_golden.sh            # configure + build + regenerate
#   BUILD_DIR=build-asan scripts/regen_golden.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-build}"
jobs="${JOBS:-$(nproc)}"
cd "${repo_root}"

cmake -B "${build_dir}" -S . > /dev/null
cmake --build "${build_dir}" -j "${jobs}" --target test_golden_runs test_service_golden

GOLDEN_REGEN=1 "${build_dir}/tests/test_golden_runs" \
  --gtest_filter='GoldenRuns.EveryFactorySchedulerMatchesTheCheckedInDigests'
GOLDEN_REGEN=1 "${build_dir}/tests/test_service_golden" \
  --gtest_filter='ServiceGoldenRuns.EveryFactorySchedulerMatchesTheCheckedInDigests'

git -C "${repo_root}" --no-pager diff --stat -- \
  tests/integration/golden_runs.csv tests/integration/service_golden_runs.csv || true
printf '\nRegenerated golden CSVs — review the diff before committing.\n'
