
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gateway/test_arrivals.cpp" "tests/CMakeFiles/test_gateway.dir/gateway/test_arrivals.cpp.o" "gcc" "tests/CMakeFiles/test_gateway.dir/gateway/test_arrivals.cpp.o.d"
  "/root/repo/tests/gateway/test_data_receiver.cpp" "tests/CMakeFiles/test_gateway.dir/gateway/test_data_receiver.cpp.o" "gcc" "tests/CMakeFiles/test_gateway.dir/gateway/test_data_receiver.cpp.o.d"
  "/root/repo/tests/gateway/test_data_transmitter.cpp" "tests/CMakeFiles/test_gateway.dir/gateway/test_data_transmitter.cpp.o" "gcc" "tests/CMakeFiles/test_gateway.dir/gateway/test_data_transmitter.cpp.o.d"
  "/root/repo/tests/gateway/test_framework.cpp" "tests/CMakeFiles/test_gateway.dir/gateway/test_framework.cpp.o" "gcc" "tests/CMakeFiles/test_gateway.dir/gateway/test_framework.cpp.o.d"
  "/root/repo/tests/gateway/test_info_collector.cpp" "tests/CMakeFiles/test_gateway.dir/gateway/test_info_collector.cpp.o" "gcc" "tests/CMakeFiles/test_gateway.dir/gateway/test_info_collector.cpp.o.d"
  "/root/repo/tests/gateway/test_user_endpoint.cpp" "tests/CMakeFiles/test_gateway.dir/gateway/test_user_endpoint.cpp.o" "gcc" "tests/CMakeFiles/test_gateway.dir/gateway/test_user_endpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abr/CMakeFiles/jstream_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jstream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jstream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/jstream_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/jstream_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/jstream_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/jstream_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
