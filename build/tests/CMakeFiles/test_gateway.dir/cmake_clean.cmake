file(REMOVE_RECURSE
  "CMakeFiles/test_gateway.dir/gateway/test_arrivals.cpp.o"
  "CMakeFiles/test_gateway.dir/gateway/test_arrivals.cpp.o.d"
  "CMakeFiles/test_gateway.dir/gateway/test_data_receiver.cpp.o"
  "CMakeFiles/test_gateway.dir/gateway/test_data_receiver.cpp.o.d"
  "CMakeFiles/test_gateway.dir/gateway/test_data_transmitter.cpp.o"
  "CMakeFiles/test_gateway.dir/gateway/test_data_transmitter.cpp.o.d"
  "CMakeFiles/test_gateway.dir/gateway/test_framework.cpp.o"
  "CMakeFiles/test_gateway.dir/gateway/test_framework.cpp.o.d"
  "CMakeFiles/test_gateway.dir/gateway/test_info_collector.cpp.o"
  "CMakeFiles/test_gateway.dir/gateway/test_info_collector.cpp.o.d"
  "CMakeFiles/test_gateway.dir/gateway/test_user_endpoint.cpp.o"
  "CMakeFiles/test_gateway.dir/gateway/test_user_endpoint.cpp.o.d"
  "test_gateway"
  "test_gateway.pdb"
  "test_gateway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
