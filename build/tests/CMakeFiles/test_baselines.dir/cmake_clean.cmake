file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/test_default.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_default.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_estreamer.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_estreamer.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_factory.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_factory.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_onoff.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_onoff.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_salsa.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_salsa.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_throttling.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_throttling.cpp.o.d"
  "test_baselines"
  "test_baselines.pdb"
  "test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
