
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/test_default.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/test_default.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/test_default.cpp.o.d"
  "/root/repo/tests/baselines/test_estreamer.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/test_estreamer.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/test_estreamer.cpp.o.d"
  "/root/repo/tests/baselines/test_factory.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/test_factory.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/test_factory.cpp.o.d"
  "/root/repo/tests/baselines/test_onoff.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/test_onoff.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/test_onoff.cpp.o.d"
  "/root/repo/tests/baselines/test_salsa.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/test_salsa.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/test_salsa.cpp.o.d"
  "/root/repo/tests/baselines/test_throttling.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/test_throttling.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/test_throttling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abr/CMakeFiles/jstream_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jstream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jstream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/jstream_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/jstream_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/jstream_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/jstream_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
