file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/test_conservation.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_conservation.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_determinism.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_determinism.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_ema_solver_realistic.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_ema_solver_realistic.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_lyapunov_algebra.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_lyapunov_algebra.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_metrics_invariants.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_metrics_invariants.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_scheduler_feasibility.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_scheduler_feasibility.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_theorem1.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_theorem1.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
