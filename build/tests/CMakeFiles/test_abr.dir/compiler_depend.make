# Empty compiler generated dependencies file for test_abr.
# This may be replaced when dependencies are built.
