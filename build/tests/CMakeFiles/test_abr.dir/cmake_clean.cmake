file(REMOVE_RECURSE
  "CMakeFiles/test_abr.dir/abr/test_abr_simulator.cpp.o"
  "CMakeFiles/test_abr.dir/abr/test_abr_simulator.cpp.o.d"
  "CMakeFiles/test_abr.dir/abr/test_client.cpp.o"
  "CMakeFiles/test_abr.dir/abr/test_client.cpp.o.d"
  "CMakeFiles/test_abr.dir/abr/test_ladder.cpp.o"
  "CMakeFiles/test_abr.dir/abr/test_ladder.cpp.o.d"
  "CMakeFiles/test_abr.dir/abr/test_policies.cpp.o"
  "CMakeFiles/test_abr.dir/abr/test_policies.cpp.o.d"
  "test_abr"
  "test_abr.pdb"
  "test_abr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
