
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_catalog.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_catalog.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_catalog.cpp.o.d"
  "/root/repo/tests/sim/test_experiment.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o.d"
  "/root/repo/tests/sim/test_metrics.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_metrics.cpp.o.d"
  "/root/repo/tests/sim/test_multicell.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_multicell.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_multicell.cpp.o.d"
  "/root/repo/tests/sim/test_oracle.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_oracle.cpp.o.d"
  "/root/repo/tests/sim/test_replication.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_replication.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_replication.cpp.o.d"
  "/root/repo/tests/sim/test_report.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_report.cpp.o.d"
  "/root/repo/tests/sim/test_scenario.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_scenario.cpp.o.d"
  "/root/repo/tests/sim/test_scenario_extensions.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_scenario_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_scenario_extensions.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_sweep.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abr/CMakeFiles/jstream_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jstream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jstream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/jstream_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/jstream_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/jstream_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/jstream_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
