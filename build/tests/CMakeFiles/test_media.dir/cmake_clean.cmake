file(REMOVE_RECURSE
  "CMakeFiles/test_media.dir/media/test_bitrate_profile.cpp.o"
  "CMakeFiles/test_media.dir/media/test_bitrate_profile.cpp.o.d"
  "CMakeFiles/test_media.dir/media/test_playback_buffer.cpp.o"
  "CMakeFiles/test_media.dir/media/test_playback_buffer.cpp.o.d"
  "CMakeFiles/test_media.dir/media/test_video_session.cpp.o"
  "CMakeFiles/test_media.dir/media/test_video_session.cpp.o.d"
  "test_media"
  "test_media.pdb"
  "test_media[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
