file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_adaptive_rtma.cpp.o"
  "CMakeFiles/test_core.dir/core/test_adaptive_rtma.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ema.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ema.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ema_fast.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ema_fast.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_energy_threshold.cpp.o"
  "CMakeFiles/test_core.dir/core/test_energy_threshold.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lookahead.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lookahead.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lyapunov.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lyapunov.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_rtma.cpp.o"
  "CMakeFiles/test_core.dir/core/test_rtma.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
