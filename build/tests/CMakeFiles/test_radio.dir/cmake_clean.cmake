file(REMOVE_RECURSE
  "CMakeFiles/test_radio.dir/radio/test_link_model.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_link_model.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_radio_profile.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_radio_profile.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_rrc.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_rrc.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_signal_model.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_signal_model.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_signal_trace_io.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_signal_trace_io.cpp.o.d"
  "test_radio"
  "test_radio.pdb"
  "test_radio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
