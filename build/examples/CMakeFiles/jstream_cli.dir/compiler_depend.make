# Empty compiler generated dependencies file for jstream_cli.
# This may be replaced when dependencies are built.
