file(REMOVE_RECURSE
  "CMakeFiles/jstream_cli.dir/jstream_cli.cpp.o"
  "CMakeFiles/jstream_cli.dir/jstream_cli.cpp.o.d"
  "jstream_cli"
  "jstream_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
