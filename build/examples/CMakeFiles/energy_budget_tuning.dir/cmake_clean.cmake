file(REMOVE_RECURSE
  "CMakeFiles/energy_budget_tuning.dir/energy_budget_tuning.cpp.o"
  "CMakeFiles/energy_budget_tuning.dir/energy_budget_tuning.cpp.o.d"
  "energy_budget_tuning"
  "energy_budget_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_budget_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
