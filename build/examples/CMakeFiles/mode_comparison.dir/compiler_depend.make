# Empty compiler generated dependencies file for mode_comparison.
# This may be replaced when dependencies are built.
