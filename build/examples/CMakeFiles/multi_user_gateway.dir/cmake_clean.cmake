file(REMOVE_RECURSE
  "CMakeFiles/multi_user_gateway.dir/multi_user_gateway.cpp.o"
  "CMakeFiles/multi_user_gateway.dir/multi_user_gateway.cpp.o.d"
  "multi_user_gateway"
  "multi_user_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_user_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
