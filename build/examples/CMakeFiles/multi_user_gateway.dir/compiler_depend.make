# Empty compiler generated dependencies file for multi_user_gateway.
# This may be replaced when dependencies are built.
