file(REMOVE_RECURSE
  "CMakeFiles/multicell_deployment.dir/multicell_deployment.cpp.o"
  "CMakeFiles/multicell_deployment.dir/multicell_deployment.cpp.o.d"
  "multicell_deployment"
  "multicell_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicell_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
