# Empty dependencies file for multicell_deployment.
# This may be replaced when dependencies are built.
