file(REMOVE_RECURSE
  "CMakeFiles/jstream_common.dir/cli.cpp.o"
  "CMakeFiles/jstream_common.dir/cli.cpp.o.d"
  "CMakeFiles/jstream_common.dir/csv.cpp.o"
  "CMakeFiles/jstream_common.dir/csv.cpp.o.d"
  "CMakeFiles/jstream_common.dir/log.cpp.o"
  "CMakeFiles/jstream_common.dir/log.cpp.o.d"
  "CMakeFiles/jstream_common.dir/rng.cpp.o"
  "CMakeFiles/jstream_common.dir/rng.cpp.o.d"
  "CMakeFiles/jstream_common.dir/stats.cpp.o"
  "CMakeFiles/jstream_common.dir/stats.cpp.o.d"
  "CMakeFiles/jstream_common.dir/table.cpp.o"
  "CMakeFiles/jstream_common.dir/table.cpp.o.d"
  "CMakeFiles/jstream_common.dir/thread_pool.cpp.o"
  "CMakeFiles/jstream_common.dir/thread_pool.cpp.o.d"
  "libjstream_common.a"
  "libjstream_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
