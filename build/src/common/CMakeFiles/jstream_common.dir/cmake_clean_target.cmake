file(REMOVE_RECURSE
  "libjstream_common.a"
)
