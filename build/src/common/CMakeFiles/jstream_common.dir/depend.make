# Empty dependencies file for jstream_common.
# This may be replaced when dependencies are built.
