file(REMOVE_RECURSE
  "libjstream_radio.a"
)
