file(REMOVE_RECURSE
  "CMakeFiles/jstream_radio.dir/link_model.cpp.o"
  "CMakeFiles/jstream_radio.dir/link_model.cpp.o.d"
  "CMakeFiles/jstream_radio.dir/radio_profile.cpp.o"
  "CMakeFiles/jstream_radio.dir/radio_profile.cpp.o.d"
  "CMakeFiles/jstream_radio.dir/rrc.cpp.o"
  "CMakeFiles/jstream_radio.dir/rrc.cpp.o.d"
  "CMakeFiles/jstream_radio.dir/signal_model.cpp.o"
  "CMakeFiles/jstream_radio.dir/signal_model.cpp.o.d"
  "CMakeFiles/jstream_radio.dir/signal_trace_io.cpp.o"
  "CMakeFiles/jstream_radio.dir/signal_trace_io.cpp.o.d"
  "libjstream_radio.a"
  "libjstream_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
