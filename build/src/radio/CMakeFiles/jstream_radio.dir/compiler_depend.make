# Empty compiler generated dependencies file for jstream_radio.
# This may be replaced when dependencies are built.
