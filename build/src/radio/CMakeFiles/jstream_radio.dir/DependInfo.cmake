
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/link_model.cpp" "src/radio/CMakeFiles/jstream_radio.dir/link_model.cpp.o" "gcc" "src/radio/CMakeFiles/jstream_radio.dir/link_model.cpp.o.d"
  "/root/repo/src/radio/radio_profile.cpp" "src/radio/CMakeFiles/jstream_radio.dir/radio_profile.cpp.o" "gcc" "src/radio/CMakeFiles/jstream_radio.dir/radio_profile.cpp.o.d"
  "/root/repo/src/radio/rrc.cpp" "src/radio/CMakeFiles/jstream_radio.dir/rrc.cpp.o" "gcc" "src/radio/CMakeFiles/jstream_radio.dir/rrc.cpp.o.d"
  "/root/repo/src/radio/signal_model.cpp" "src/radio/CMakeFiles/jstream_radio.dir/signal_model.cpp.o" "gcc" "src/radio/CMakeFiles/jstream_radio.dir/signal_model.cpp.o.d"
  "/root/repo/src/radio/signal_trace_io.cpp" "src/radio/CMakeFiles/jstream_radio.dir/signal_trace_io.cpp.o" "gcc" "src/radio/CMakeFiles/jstream_radio.dir/signal_trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
