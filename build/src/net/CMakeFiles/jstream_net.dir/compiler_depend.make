# Empty compiler generated dependencies file for jstream_net.
# This may be replaced when dependencies are built.
