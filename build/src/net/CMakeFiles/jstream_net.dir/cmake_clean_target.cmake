file(REMOVE_RECURSE
  "libjstream_net.a"
)
