file(REMOVE_RECURSE
  "CMakeFiles/jstream_net.dir/allocation.cpp.o"
  "CMakeFiles/jstream_net.dir/allocation.cpp.o.d"
  "CMakeFiles/jstream_net.dir/base_station.cpp.o"
  "CMakeFiles/jstream_net.dir/base_station.cpp.o.d"
  "libjstream_net.a"
  "libjstream_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
