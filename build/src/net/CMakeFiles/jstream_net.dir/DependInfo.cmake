
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/allocation.cpp" "src/net/CMakeFiles/jstream_net.dir/allocation.cpp.o" "gcc" "src/net/CMakeFiles/jstream_net.dir/allocation.cpp.o.d"
  "/root/repo/src/net/base_station.cpp" "src/net/CMakeFiles/jstream_net.dir/base_station.cpp.o" "gcc" "src/net/CMakeFiles/jstream_net.dir/base_station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/jstream_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
