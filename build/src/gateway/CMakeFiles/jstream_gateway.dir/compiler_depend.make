# Empty compiler generated dependencies file for jstream_gateway.
# This may be replaced when dependencies are built.
