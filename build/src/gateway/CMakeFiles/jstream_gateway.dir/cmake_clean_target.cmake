file(REMOVE_RECURSE
  "libjstream_gateway.a"
)
