
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gateway/data_receiver.cpp" "src/gateway/CMakeFiles/jstream_gateway.dir/data_receiver.cpp.o" "gcc" "src/gateway/CMakeFiles/jstream_gateway.dir/data_receiver.cpp.o.d"
  "/root/repo/src/gateway/data_transmitter.cpp" "src/gateway/CMakeFiles/jstream_gateway.dir/data_transmitter.cpp.o" "gcc" "src/gateway/CMakeFiles/jstream_gateway.dir/data_transmitter.cpp.o.d"
  "/root/repo/src/gateway/framework.cpp" "src/gateway/CMakeFiles/jstream_gateway.dir/framework.cpp.o" "gcc" "src/gateway/CMakeFiles/jstream_gateway.dir/framework.cpp.o.d"
  "/root/repo/src/gateway/info_collector.cpp" "src/gateway/CMakeFiles/jstream_gateway.dir/info_collector.cpp.o" "gcc" "src/gateway/CMakeFiles/jstream_gateway.dir/info_collector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/jstream_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/jstream_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
