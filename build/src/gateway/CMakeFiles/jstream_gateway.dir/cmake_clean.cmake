file(REMOVE_RECURSE
  "CMakeFiles/jstream_gateway.dir/data_receiver.cpp.o"
  "CMakeFiles/jstream_gateway.dir/data_receiver.cpp.o.d"
  "CMakeFiles/jstream_gateway.dir/data_transmitter.cpp.o"
  "CMakeFiles/jstream_gateway.dir/data_transmitter.cpp.o.d"
  "CMakeFiles/jstream_gateway.dir/framework.cpp.o"
  "CMakeFiles/jstream_gateway.dir/framework.cpp.o.d"
  "CMakeFiles/jstream_gateway.dir/info_collector.cpp.o"
  "CMakeFiles/jstream_gateway.dir/info_collector.cpp.o.d"
  "libjstream_gateway.a"
  "libjstream_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
