file(REMOVE_RECURSE
  "libjstream_core.a"
)
