file(REMOVE_RECURSE
  "CMakeFiles/jstream_core.dir/adaptive_rtma.cpp.o"
  "CMakeFiles/jstream_core.dir/adaptive_rtma.cpp.o.d"
  "CMakeFiles/jstream_core.dir/ema.cpp.o"
  "CMakeFiles/jstream_core.dir/ema.cpp.o.d"
  "CMakeFiles/jstream_core.dir/ema_fast.cpp.o"
  "CMakeFiles/jstream_core.dir/ema_fast.cpp.o.d"
  "CMakeFiles/jstream_core.dir/energy_threshold.cpp.o"
  "CMakeFiles/jstream_core.dir/energy_threshold.cpp.o.d"
  "CMakeFiles/jstream_core.dir/lookahead.cpp.o"
  "CMakeFiles/jstream_core.dir/lookahead.cpp.o.d"
  "CMakeFiles/jstream_core.dir/lyapunov.cpp.o"
  "CMakeFiles/jstream_core.dir/lyapunov.cpp.o.d"
  "CMakeFiles/jstream_core.dir/rtma.cpp.o"
  "CMakeFiles/jstream_core.dir/rtma.cpp.o.d"
  "libjstream_core.a"
  "libjstream_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
