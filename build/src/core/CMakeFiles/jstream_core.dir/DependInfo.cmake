
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_rtma.cpp" "src/core/CMakeFiles/jstream_core.dir/adaptive_rtma.cpp.o" "gcc" "src/core/CMakeFiles/jstream_core.dir/adaptive_rtma.cpp.o.d"
  "/root/repo/src/core/ema.cpp" "src/core/CMakeFiles/jstream_core.dir/ema.cpp.o" "gcc" "src/core/CMakeFiles/jstream_core.dir/ema.cpp.o.d"
  "/root/repo/src/core/ema_fast.cpp" "src/core/CMakeFiles/jstream_core.dir/ema_fast.cpp.o" "gcc" "src/core/CMakeFiles/jstream_core.dir/ema_fast.cpp.o.d"
  "/root/repo/src/core/energy_threshold.cpp" "src/core/CMakeFiles/jstream_core.dir/energy_threshold.cpp.o" "gcc" "src/core/CMakeFiles/jstream_core.dir/energy_threshold.cpp.o.d"
  "/root/repo/src/core/lookahead.cpp" "src/core/CMakeFiles/jstream_core.dir/lookahead.cpp.o" "gcc" "src/core/CMakeFiles/jstream_core.dir/lookahead.cpp.o.d"
  "/root/repo/src/core/lyapunov.cpp" "src/core/CMakeFiles/jstream_core.dir/lyapunov.cpp.o" "gcc" "src/core/CMakeFiles/jstream_core.dir/lyapunov.cpp.o.d"
  "/root/repo/src/core/rtma.cpp" "src/core/CMakeFiles/jstream_core.dir/rtma.cpp.o" "gcc" "src/core/CMakeFiles/jstream_core.dir/rtma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/jstream_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/jstream_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/jstream_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
