# Empty dependencies file for jstream_core.
# This may be replaced when dependencies are built.
