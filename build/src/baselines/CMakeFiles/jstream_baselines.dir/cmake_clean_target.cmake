file(REMOVE_RECURSE
  "libjstream_baselines.a"
)
