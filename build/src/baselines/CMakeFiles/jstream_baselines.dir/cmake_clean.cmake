file(REMOVE_RECURSE
  "CMakeFiles/jstream_baselines.dir/default_scheduler.cpp.o"
  "CMakeFiles/jstream_baselines.dir/default_scheduler.cpp.o.d"
  "CMakeFiles/jstream_baselines.dir/estreamer.cpp.o"
  "CMakeFiles/jstream_baselines.dir/estreamer.cpp.o.d"
  "CMakeFiles/jstream_baselines.dir/factory.cpp.o"
  "CMakeFiles/jstream_baselines.dir/factory.cpp.o.d"
  "CMakeFiles/jstream_baselines.dir/onoff.cpp.o"
  "CMakeFiles/jstream_baselines.dir/onoff.cpp.o.d"
  "CMakeFiles/jstream_baselines.dir/salsa.cpp.o"
  "CMakeFiles/jstream_baselines.dir/salsa.cpp.o.d"
  "CMakeFiles/jstream_baselines.dir/throttling.cpp.o"
  "CMakeFiles/jstream_baselines.dir/throttling.cpp.o.d"
  "libjstream_baselines.a"
  "libjstream_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
