
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/default_scheduler.cpp" "src/baselines/CMakeFiles/jstream_baselines.dir/default_scheduler.cpp.o" "gcc" "src/baselines/CMakeFiles/jstream_baselines.dir/default_scheduler.cpp.o.d"
  "/root/repo/src/baselines/estreamer.cpp" "src/baselines/CMakeFiles/jstream_baselines.dir/estreamer.cpp.o" "gcc" "src/baselines/CMakeFiles/jstream_baselines.dir/estreamer.cpp.o.d"
  "/root/repo/src/baselines/factory.cpp" "src/baselines/CMakeFiles/jstream_baselines.dir/factory.cpp.o" "gcc" "src/baselines/CMakeFiles/jstream_baselines.dir/factory.cpp.o.d"
  "/root/repo/src/baselines/onoff.cpp" "src/baselines/CMakeFiles/jstream_baselines.dir/onoff.cpp.o" "gcc" "src/baselines/CMakeFiles/jstream_baselines.dir/onoff.cpp.o.d"
  "/root/repo/src/baselines/salsa.cpp" "src/baselines/CMakeFiles/jstream_baselines.dir/salsa.cpp.o" "gcc" "src/baselines/CMakeFiles/jstream_baselines.dir/salsa.cpp.o.d"
  "/root/repo/src/baselines/throttling.cpp" "src/baselines/CMakeFiles/jstream_baselines.dir/throttling.cpp.o" "gcc" "src/baselines/CMakeFiles/jstream_baselines.dir/throttling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/jstream_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jstream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/jstream_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/jstream_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
