# Empty dependencies file for jstream_baselines.
# This may be replaced when dependencies are built.
