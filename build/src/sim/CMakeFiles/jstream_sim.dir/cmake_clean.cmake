file(REMOVE_RECURSE
  "CMakeFiles/jstream_sim.dir/catalog.cpp.o"
  "CMakeFiles/jstream_sim.dir/catalog.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/experiment.cpp.o"
  "CMakeFiles/jstream_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/forecast.cpp.o"
  "CMakeFiles/jstream_sim.dir/forecast.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/metrics.cpp.o"
  "CMakeFiles/jstream_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/multicell.cpp.o"
  "CMakeFiles/jstream_sim.dir/multicell.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/oracle.cpp.o"
  "CMakeFiles/jstream_sim.dir/oracle.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/replication.cpp.o"
  "CMakeFiles/jstream_sim.dir/replication.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/report.cpp.o"
  "CMakeFiles/jstream_sim.dir/report.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/scenario.cpp.o"
  "CMakeFiles/jstream_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/simulator.cpp.o"
  "CMakeFiles/jstream_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/jstream_sim.dir/sweep.cpp.o"
  "CMakeFiles/jstream_sim.dir/sweep.cpp.o.d"
  "libjstream_sim.a"
  "libjstream_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
