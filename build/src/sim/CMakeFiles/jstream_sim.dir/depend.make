# Empty dependencies file for jstream_sim.
# This may be replaced when dependencies are built.
