file(REMOVE_RECURSE
  "libjstream_sim.a"
)
