
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/catalog.cpp" "src/sim/CMakeFiles/jstream_sim.dir/catalog.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/catalog.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/jstream_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/forecast.cpp" "src/sim/CMakeFiles/jstream_sim.dir/forecast.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/forecast.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/jstream_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/multicell.cpp" "src/sim/CMakeFiles/jstream_sim.dir/multicell.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/multicell.cpp.o.d"
  "/root/repo/src/sim/oracle.cpp" "src/sim/CMakeFiles/jstream_sim.dir/oracle.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/oracle.cpp.o.d"
  "/root/repo/src/sim/replication.cpp" "src/sim/CMakeFiles/jstream_sim.dir/replication.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/replication.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/jstream_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/jstream_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/jstream_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/sim/CMakeFiles/jstream_sim.dir/sweep.cpp.o" "gcc" "src/sim/CMakeFiles/jstream_sim.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/jstream_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/jstream_media.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/jstream_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jstream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/jstream_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
