file(REMOVE_RECURSE
  "libjstream_media.a"
)
