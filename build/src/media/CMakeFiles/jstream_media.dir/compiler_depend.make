# Empty compiler generated dependencies file for jstream_media.
# This may be replaced when dependencies are built.
