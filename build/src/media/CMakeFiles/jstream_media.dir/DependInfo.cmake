
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/bitrate_profile.cpp" "src/media/CMakeFiles/jstream_media.dir/bitrate_profile.cpp.o" "gcc" "src/media/CMakeFiles/jstream_media.dir/bitrate_profile.cpp.o.d"
  "/root/repo/src/media/playback_buffer.cpp" "src/media/CMakeFiles/jstream_media.dir/playback_buffer.cpp.o" "gcc" "src/media/CMakeFiles/jstream_media.dir/playback_buffer.cpp.o.d"
  "/root/repo/src/media/video_session.cpp" "src/media/CMakeFiles/jstream_media.dir/video_session.cpp.o" "gcc" "src/media/CMakeFiles/jstream_media.dir/video_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
