file(REMOVE_RECURSE
  "CMakeFiles/jstream_media.dir/bitrate_profile.cpp.o"
  "CMakeFiles/jstream_media.dir/bitrate_profile.cpp.o.d"
  "CMakeFiles/jstream_media.dir/playback_buffer.cpp.o"
  "CMakeFiles/jstream_media.dir/playback_buffer.cpp.o.d"
  "CMakeFiles/jstream_media.dir/video_session.cpp.o"
  "CMakeFiles/jstream_media.dir/video_session.cpp.o.d"
  "libjstream_media.a"
  "libjstream_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
