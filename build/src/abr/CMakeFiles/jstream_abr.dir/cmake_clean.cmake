file(REMOVE_RECURSE
  "CMakeFiles/jstream_abr.dir/abr_simulator.cpp.o"
  "CMakeFiles/jstream_abr.dir/abr_simulator.cpp.o.d"
  "CMakeFiles/jstream_abr.dir/client.cpp.o"
  "CMakeFiles/jstream_abr.dir/client.cpp.o.d"
  "CMakeFiles/jstream_abr.dir/ladder.cpp.o"
  "CMakeFiles/jstream_abr.dir/ladder.cpp.o.d"
  "CMakeFiles/jstream_abr.dir/policies.cpp.o"
  "CMakeFiles/jstream_abr.dir/policies.cpp.o.d"
  "libjstream_abr.a"
  "libjstream_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
