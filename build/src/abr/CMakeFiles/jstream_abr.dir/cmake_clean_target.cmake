file(REMOVE_RECURSE
  "libjstream_abr.a"
)
