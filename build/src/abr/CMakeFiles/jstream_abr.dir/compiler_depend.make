# Empty compiler generated dependencies file for jstream_abr.
# This may be replaced when dependencies are built.
