file(REMOVE_RECURSE
  "../bench/bench_fig02_fairness_rtma"
  "../bench/bench_fig02_fairness_rtma.pdb"
  "CMakeFiles/bench_fig02_fairness_rtma.dir/bench_fig02_fairness_rtma.cpp.o"
  "CMakeFiles/bench_fig02_fairness_rtma.dir/bench_fig02_fairness_rtma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_fairness_rtma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
