# Empty dependencies file for bench_fig02_fairness_rtma.
# This may be replaced when dependencies are built.
