# Empty dependencies file for bench_fig06_fairness_ema.
# This may be replaced when dependencies are built.
