file(REMOVE_RECURSE
  "../bench/bench_fig06_fairness_ema"
  "../bench/bench_fig06_fairness_ema.pdb"
  "CMakeFiles/bench_fig06_fairness_ema.dir/bench_fig06_fairness_ema.cpp.o"
  "CMakeFiles/bench_fig06_fairness_ema.dir/bench_fig06_fairness_ema.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_fairness_ema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
