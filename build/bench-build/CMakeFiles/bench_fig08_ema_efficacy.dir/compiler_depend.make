# Empty compiler generated dependencies file for bench_fig08_ema_efficacy.
# This may be replaced when dependencies are built.
