# Empty dependencies file for bench_ablation_arrivals.
# This may be replaced when dependencies are built.
