file(REMOVE_RECURSE
  "../bench/bench_ablation_delta"
  "../bench/bench_ablation_delta.pdb"
  "CMakeFiles/bench_ablation_delta.dir/bench_ablation_delta.cpp.o"
  "CMakeFiles/bench_ablation_delta.dir/bench_ablation_delta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
