file(REMOVE_RECURSE
  "CMakeFiles/jstream_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/jstream_bench_util.dir/bench_util.cpp.o.d"
  "libjstream_bench_util.a"
  "libjstream_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstream_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
