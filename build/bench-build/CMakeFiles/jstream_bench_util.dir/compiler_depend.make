# Empty compiler generated dependencies file for jstream_bench_util.
# This may be replaced when dependencies are built.
