file(REMOVE_RECURSE
  "libjstream_bench_util.a"
)
