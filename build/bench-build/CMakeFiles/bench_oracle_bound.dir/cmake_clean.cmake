file(REMOVE_RECURSE
  "../bench/bench_oracle_bound"
  "../bench/bench_oracle_bound.pdb"
  "CMakeFiles/bench_oracle_bound.dir/bench_oracle_bound.cpp.o"
  "CMakeFiles/bench_oracle_bound.dir/bench_oracle_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
