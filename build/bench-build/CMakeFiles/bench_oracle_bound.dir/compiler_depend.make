# Empty compiler generated dependencies file for bench_oracle_bound.
# This may be replaced when dependencies are built.
