# Empty compiler generated dependencies file for bench_ablation_rrc.
# This may be replaced when dependencies are built.
