file(REMOVE_RECURSE
  "../bench/bench_ablation_rrc"
  "../bench/bench_ablation_rrc.pdb"
  "CMakeFiles/bench_ablation_rrc.dir/bench_ablation_rrc.cpp.o"
  "CMakeFiles/bench_ablation_rrc.dir/bench_ablation_rrc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
