file(REMOVE_RECURSE
  "../bench/bench_fig04_rtma_efficacy"
  "../bench/bench_fig04_rtma_efficacy.pdb"
  "CMakeFiles/bench_fig04_rtma_efficacy.dir/bench_fig04_rtma_efficacy.cpp.o"
  "CMakeFiles/bench_fig04_rtma_efficacy.dir/bench_fig04_rtma_efficacy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_rtma_efficacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
