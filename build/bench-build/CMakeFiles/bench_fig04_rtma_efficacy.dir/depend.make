# Empty dependencies file for bench_fig04_rtma_efficacy.
# This may be replaced when dependencies are built.
