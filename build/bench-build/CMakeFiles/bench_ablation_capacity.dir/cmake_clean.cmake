file(REMOVE_RECURSE
  "../bench/bench_ablation_capacity"
  "../bench/bench_ablation_capacity.pdb"
  "CMakeFiles/bench_ablation_capacity.dir/bench_ablation_capacity.cpp.o"
  "CMakeFiles/bench_ablation_capacity.dir/bench_ablation_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
