# Empty dependencies file for bench_abr_study.
# This may be replaced when dependencies are built.
