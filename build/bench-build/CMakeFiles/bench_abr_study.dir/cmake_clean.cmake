file(REMOVE_RECURSE
  "../bench/bench_abr_study"
  "../bench/bench_abr_study.pdb"
  "CMakeFiles/bench_abr_study.dir/bench_abr_study.cpp.o"
  "CMakeFiles/bench_abr_study.dir/bench_abr_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abr_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
