# Empty dependencies file for bench_micro_schedulers.
# This may be replaced when dependencies are built.
