file(REMOVE_RECURSE
  "../bench/bench_micro_schedulers"
  "../bench/bench_micro_schedulers.pdb"
  "CMakeFiles/bench_micro_schedulers.dir/bench_micro_schedulers.cpp.o"
  "CMakeFiles/bench_micro_schedulers.dir/bench_micro_schedulers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
