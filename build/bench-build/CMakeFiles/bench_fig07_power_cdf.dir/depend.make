# Empty dependencies file for bench_fig07_power_cdf.
# This may be replaced when dependencies are built.
