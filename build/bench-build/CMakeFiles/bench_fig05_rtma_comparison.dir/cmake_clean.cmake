file(REMOVE_RECURSE
  "../bench/bench_fig05_rtma_comparison"
  "../bench/bench_fig05_rtma_comparison.pdb"
  "CMakeFiles/bench_fig05_rtma_comparison.dir/bench_fig05_rtma_comparison.cpp.o"
  "CMakeFiles/bench_fig05_rtma_comparison.dir/bench_fig05_rtma_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_rtma_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
