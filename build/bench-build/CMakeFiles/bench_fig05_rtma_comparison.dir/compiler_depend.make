# Empty compiler generated dependencies file for bench_fig05_rtma_comparison.
# This may be replaced when dependencies are built.
