file(REMOVE_RECURSE
  "../bench/bench_scaling_users"
  "../bench/bench_scaling_users.pdb"
  "CMakeFiles/bench_scaling_users.dir/bench_scaling_users.cpp.o"
  "CMakeFiles/bench_scaling_users.dir/bench_scaling_users.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
