# Empty dependencies file for bench_scaling_users.
# This may be replaced when dependencies are built.
