#include "analyzer.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace jstream::lint {
namespace {

/// Keywords that can precede `(` without introducing a function declarator.
const std::unordered_set<std::string>& non_function_keywords() {
  static const std::unordered_set<std::string> kSet = {
      "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
      "alignas", "decltype", "static_assert", "assert", "throw", "new",
      "delete", "co_await", "co_return", "co_yield", "typeid", "noexcept",
      "int", "double", "float", "char", "bool", "void", "long", "short",
      "unsigned", "signed", "auto", "requires", "defined",
  };
  return kSet;
}

[[nodiscard]] bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

/// Skips a balanced (), {}, or <> group starting at `i` (which must sit on
/// the opener). Returns the index one past the closer, or tokens.size().
[[nodiscard]] std::size_t skip_balanced(const std::vector<Token>& tokens,
                                        std::size_t i, char open, char close) {
  int depth = 0;
  const std::string open_s(1, open);
  const std::string close_s(1, close);
  for (; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], open_s)) ++depth;
    if (is_punct(tokens[i], close_s)) {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (tokens[i].kind == TokKind::kEnd) break;
  }
  return tokens.size();
}

/// Consumes a constructor initializer list starting at the `:` token and
/// returns the index of the body `{`, or npos if this is not one. Handles
/// both paren and brace member initializers (`root_(x)`, `flags_{y}`).
[[nodiscard]] std::size_t scan_ctor_init_list(const std::vector<Token>& tokens,
                                              std::size_t i) {
  ++i;  // past ':'
  while (i < tokens.size()) {
    // Member name (possibly qualified / templated base class).
    bool saw_name = false;
    while (i < tokens.size() &&
           (tokens[i].kind == TokKind::kIdentifier || is_punct(tokens[i], "::"))) {
      saw_name = true;
      ++i;
      if (i < tokens.size() && is_punct(tokens[i], "<")) {
        i = skip_balanced(tokens, i, '<', '>');
      }
    }
    if (!saw_name || i >= tokens.size()) return FileModel::npos;
    if (is_punct(tokens[i], "(")) {
      i = skip_balanced(tokens, i, '(', ')');
    } else if (is_punct(tokens[i], "{")) {
      i = skip_balanced(tokens, i, '{', '}');
    } else {
      return FileModel::npos;
    }
    if (i < tokens.size() && is_punct(tokens[i], ",")) {
      ++i;
      continue;
    }
    if (i < tokens.size() && is_punct(tokens[i], "{")) return i;
    return FileModel::npos;
  }
  return FileModel::npos;
}

/// From the token after a declarator's closing `)`, finds the body `{`.
/// Returns npos when the construct is not a function definition (`;`, `=`,
/// a call expression, ...).
[[nodiscard]] std::size_t scan_declarator_trailer(const std::vector<Token>& tokens,
                                                  std::size_t i) {
  while (i < tokens.size()) {
    const Token& tok = tokens[i];
    if (tok.kind == TokKind::kEnd) return FileModel::npos;
    if (is_punct(tok, "{")) return i;
    if (is_punct(tok, ";") || is_punct(tok, "=") || is_punct(tok, ",") ||
        is_punct(tok, ")") || is_punct(tok, "}")) {
      return FileModel::npos;
    }
    if (is_punct(tok, ":")) return scan_ctor_init_list(tokens, i);
    if (is_punct(tok, "(")) {  // noexcept(...), attributes
      i = skip_balanced(tokens, i, '(', ')');
      continue;
    }
    if (is_punct(tok, "[")) {  // [[attributes]]
      i = skip_balanced(tokens, i, '[', ']');
      continue;
    }
    if (is_punct(tok, "<")) {  // trailing return template args
      i = skip_balanced(tokens, i, '<', '>');
      continue;
    }
    if (tok.kind == TokKind::kIdentifier || tok.kind == TokKind::kNumber ||
        is_punct(tok, "->") || is_punct(tok, "::") || is_punct(tok, "&") ||
        is_punct(tok, "*") || is_punct(tok, "&&")) {
      ++i;
      continue;
    }
    return FileModel::npos;
  }
  return FileModel::npos;
}

void extract_functions(FileModel& model) {
  const std::vector<Token>& tokens = model.lex.tokens;
  std::size_t i = 0;
  while (i + 1 < tokens.size()) {
    const Token& tok = tokens[i];
    if (tok.kind != TokKind::kIdentifier || !is_punct(tokens[i + 1], "(") ||
        non_function_keywords().contains(tok.text)) {
      ++i;
      continue;
    }
    // A member access (`x.f(...)`) is a call, never a definition.
    if (i > 0 && (is_punct(tokens[i - 1], ".") || is_punct(tokens[i - 1], "->"))) {
      ++i;
      continue;
    }
    const std::size_t after_params = skip_balanced(tokens, i + 1, '(', ')');
    if (after_params >= tokens.size()) {
      ++i;
      continue;
    }
    const std::size_t body = scan_declarator_trailer(tokens, after_params);
    if (body == FileModel::npos) {
      ++i;
      continue;
    }
    FunctionInfo fn;
    fn.name = tok.text;
    fn.line = tok.line;
    if (i >= 2 && is_punct(tokens[i - 1], "::") &&
        tokens[i - 2].kind == TokKind::kIdentifier) {
      fn.qualifier = tokens[i - 2].text;
    }
    fn.body_begin = body;
    fn.body_end = skip_balanced(tokens, body, '{', '}') - 1;
    model.functions.push_back(std::move(fn));
    // Skip the whole body: C++ has no nested named functions, and lambda
    // bodies belong to their enclosing function for every project rule.
    i = model.functions.back().body_end + 1;
  }
}

void attach_annotations(FileModel& model) {
  for (FunctionInfo& fn : model.functions) {
    for (const Comment& comment : model.lex.comments) {
      if (comment.text.find("jstream: hot-path") == std::string::npos) continue;
      // Annotation sits on the signature line or up to 4 lines above it
      // (attributes / template intro lines in between are fine).
      if (comment.line <= fn.line && comment.line >= fn.line - 4) {
        fn.hot_annotated = true;
        fn.hot = true;
        break;
      }
    }
  }
}

void propagate_hot(FileModel& model) {
  const std::vector<Token>& tokens = model.lex.tokens;
  std::unordered_map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    by_name[model.functions[f].name].push_back(f);
  }
  // Fixed-point: a name called from a hot body makes every same-file
  // function of that name hot (over-approximation by design).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionInfo& fn : model.functions) {
      if (!fn.hot) continue;
      for (std::size_t i = fn.body_begin; i < fn.body_end && i + 1 < tokens.size();
           ++i) {
        if (tokens[i].kind != TokKind::kIdentifier || !is_punct(tokens[i + 1], "(")) {
          continue;
        }
        const auto it = by_name.find(tokens[i].text);
        if (it == by_name.end()) continue;
        for (const std::size_t callee : it->second) {
          FunctionInfo& target = model.functions[callee];
          if (!target.hot) {
            target.hot = true;
            changed = true;
          }
        }
      }
    }
  }
}

void collect_suppressions(FileModel& model) {
  for (const Comment& comment : model.lex.comments) {
    const std::size_t marker = comment.text.find("jstream-lint:");
    if (marker == std::string::npos) continue;
    SuppressionInfo sup;
    sup.line = comment.line;
    sup.own_line = comment.own_line;
    const std::size_t open = comment.text.find("allow(", marker);
    const std::size_t close =
        open == std::string::npos ? std::string::npos : comment.text.find(')', open);
    if (open != std::string::npos && close != std::string::npos) {
      std::string rule;
      for (std::size_t i = open + 6; i < close; ++i) {
        const char c = comment.text[i];
        if (c == ',') {
          if (!rule.empty()) sup.rules.push_back(rule);
          rule.clear();
        } else if (c != ' ' && c != '\t') {
          rule.push_back(c);
        }
      }
      if (!rule.empty()) sup.rules.push_back(rule);
    }
    const std::size_t dashes = comment.text.find("--", marker);
    if (dashes != std::string::npos) {
      std::string reason = comment.text.substr(dashes + 2);
      const std::size_t first = reason.find_first_not_of(" \t");
      const std::size_t last = reason.find_last_not_of(" \t\r");
      if (first != std::string::npos) {
        reason = reason.substr(first, last - first + 1);
      } else {
        reason.clear();
      }
      sup.reason = std::move(reason);
    }
    // An own-line waiver covers the first code line after it; the comment may
    // wrap across several whole-line comment lines before that code.
    sup.cover_line = sup.line;
    if (sup.own_line) {
      bool extended = true;
      while (extended) {
        extended = false;
        for (const Comment& next : model.lex.comments) {
          if (next.own_line && next.line == sup.cover_line + 1) {
            sup.cover_line = next.line;
            // Continuation lines are part of the waiver's reason text.
            if (!sup.reason.empty()) {
              const std::size_t first = next.text.find_first_not_of(" \t");
              const std::size_t last = next.text.find_last_not_of(" \t\r");
              if (first != std::string::npos) {
                sup.reason += ' ';
                sup.reason += next.text.substr(first, last - first + 1);
              }
            }
            extended = true;
            break;
          }
        }
      }
      ++sup.cover_line;
    }
    model.suppressions.push_back(std::move(sup));
  }
}

}  // namespace

std::size_t FileModel::enclosing_function(std::size_t tok_index) const {
  for (std::size_t f = 0; f < functions.size(); ++f) {
    if (tok_index >= functions[f].body_begin && tok_index <= functions[f].body_end) {
      return f;
    }
  }
  return npos;
}

FileModel build_model(std::string path, std::string_view source) {
  FileModel model;
  model.path = std::move(path);
  model.lex = lex(source);
  extract_functions(model);
  attach_annotations(model);
  propagate_hot(model);
  collect_suppressions(model);
  return model;
}

}  // namespace jstream::lint
