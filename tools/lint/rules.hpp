// The five project rules jstream_lint enforces over src/, plus suppression
// accounting. Rule ids are stable strings (they appear in diagnostics, in
// `allow(...)` waivers, and in the docs table):
//
//   hot-path-alloc      (R1) no heap growth in `// jstream: hot-path`
//                       functions or anything they reach in the same TU
//   rng-discipline      (R2) every Rng derives via .split(); std randomness
//                       sources are banned in src/
//   digest-determinism  (R3) no unordered-container iteration or `float` in
//                       TUs that feed RunMetrics/digests/telemetry
//   checked-narrowing   (R4) size/index/count/double casts go through
//                       common/units.hpp helpers, not raw static_cast
//   require-finalize    (R5) SoA lane reads need a finalize()/soa.size()
//                       guard in the same function
//   suppression         malformed `jstream-lint:` waiver comments
#pragma once

#include <string>
#include <vector>

#include "analyzer.hpp"

namespace jstream::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     ///< stable rule id (see header comment)
  std::string message;  ///< what fired, with the project rationale
  std::string fixit;    ///< non-empty when a mechanical rewrite exists
};

/// A waiver that actually matched a diagnostic, for the audit report.
struct HonoredSuppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;
};

struct FileReport {
  std::vector<Diagnostic> diagnostics;           ///< survived suppression
  std::vector<HonoredSuppression> suppressed;    ///< waived, with reasons
};

/// Runs every rule over one file model. Suppressions are applied here so the
/// caller only sees surviving diagnostics plus the waiver audit trail.
[[nodiscard]] FileReport run_rules(const FileModel& model);

/// All stable rule ids (for --rules validation and the docs table).
[[nodiscard]] const std::vector<std::string>& all_rule_ids();

}  // namespace jstream::lint
