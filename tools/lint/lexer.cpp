#include "lexer.hpp"

#include <array>
#include <cctype>

namespace jstream::lint {
namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// Two-character operators emitted as single tokens. `::` matters most (the
/// rules match qualified names); the rest keep the stream unambiguous so a
/// matcher never mistakes `->foo` for `>` `-` `foo`.
constexpr std::array<std::string_view, 20> kTwoCharOps = {
    "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        line_start_ = pos_ + 1;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && at_line_start()) {
        skip_preprocessor_line();
        continue;
      }
      if (c == '"') {
        lex_string();
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (is_ident_start(c)) {
        lex_identifier_or_raw_string();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    result_.tokens.push_back(Token{TokKind::kEnd, "", line_});
    return std::move(result_);
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  [[nodiscard]] bool at_line_start() const {
    for (std::size_t i = line_start_; i < pos_; ++i) {
      const char c = src_[i];
      if (c != ' ' && c != '\t') return false;
    }
    return true;
  }

  void emit(TokKind kind, std::string text, int line) {
    result_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void lex_line_comment() {
    const int start_line = line_;
    const bool own = at_line_start();
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    result_.comments.push_back(
        Comment{std::string(src_.substr(begin, pos_ - begin)), start_line, own});
  }

  void lex_block_comment() {
    const int start_line = line_;
    const bool own = at_line_start();
    pos_ += 2;
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') {
        ++line_;
        line_start_ = pos_ + 1;
      }
      ++pos_;
    }
    result_.comments.push_back(
        Comment{std::string(src_.substr(begin, end - begin)), start_line, own});
  }

  /// Preprocessor lines carry include paths and macro bodies the rules must
  /// not match (`#include <unordered_map>` is not an unordered_map use).
  /// Honors backslash continuations; comments on the line are still captured.
  void skip_preprocessor_line() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        return;  // a line comment ends the directive
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        line_start_ = pos_;
        continue;
      }
      if (c == '\n') return;  // newline handled by the main loop
      ++pos_;
    }
  }

  void lex_string() {
    const int start_line = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        break;
      }
      if (c == '\n') {  // unterminated; recover at the newline
        break;
      }
      ++pos_;
    }
    emit(TokKind::kString, "", start_line);
  }

  void lex_char() {
    const int start_line = line_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        break;
      }
      if (c == '\n') break;
      ++pos_;
    }
    emit(TokKind::kChar, "", start_line);
  }

  void lex_raw_string() {
    const int start_line = line_;
    ++pos_;  // opening quote after R
    std::string delim = ")";
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim.push_back(src_[pos_]);
      ++pos_;
    }
    delim.push_back('"');
    ++pos_;  // opening paren
    const std::size_t close = src_.find(delim, pos_);
    const std::size_t end = close == std::string_view::npos ? src_.size()
                                                            : close + delim.size();
    for (std::size_t i = pos_; i < end && i < src_.size(); ++i) {
      if (src_[i] == '\n') {
        ++line_;
        line_start_ = i + 1;
      }
    }
    pos_ = end;
    emit(TokKind::kString, "", start_line);
  }

  void lex_identifier_or_raw_string() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    std::string text(src_.substr(begin, pos_ - begin));
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "R" || text == "LR" || text == "uR" || text == "UR" ||
         text == "u8R")) {
      lex_raw_string();
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "L" || text == "u" || text == "U" || text == "u8")) {
      lex_char();
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "L" || text == "u" || text == "U" || text == "u8")) {
      lex_string();
      return;
    }
    emit(TokKind::kIdentifier, std::move(text), line_);
  }

  void lex_number() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e+9, 0x1.8p-3
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(TokKind::kNumber, std::string(src_.substr(begin, pos_ - begin)), line_);
  }

  void lex_punct() {
    if (pos_ + 1 < src_.size()) {
      const std::string_view two = src_.substr(pos_, 2);
      for (const std::string_view op : kTwoCharOps) {
        if (two == op) {
          emit(TokKind::kPunct, std::string(op), line_);
          pos_ += 2;
          return;
        }
      }
    }
    emit(TokKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
  int line_ = 1;
  LexResult result_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace jstream::lint
