// File model for jstream_lint: function extents, the same-TU call graph,
// hot-path annotation propagation, and suppression comments.
//
// Function extraction is lexical (identifier + balanced parens + `{`), which
// is exactly as much structure as the project rules need: R1 walks hot
// function bodies, R5 pairs lane reads with guards per function, and the
// call graph only ever propagates within one file. No templates are
// instantiated, no overloads resolved — a name match is an edge, which
// over-approximates reachability and therefore never under-enforces R1.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace jstream::lint {

/// One function definition found in the file.
struct FunctionInfo {
  std::string name;        ///< last identifier of the declarator (no qualifiers)
  std::string qualifier;   ///< `Class` for `Class::name`, empty otherwise
  int line = 0;            ///< line of the name token
  std::size_t body_begin = 0;  ///< token index of the opening `{`
  std::size_t body_end = 0;    ///< token index of the matching `}` (inclusive)
  bool hot_annotated = false;  ///< carries a `// jstream: hot-path` comment
  bool hot = false;            ///< annotated or reachable from an annotated fn
};

/// One `// jstream-lint: allow(<rules>) -- <reason>` waiver.
struct SuppressionInfo {
  int line = 0;                    ///< line the comment sits on
  int cover_line = 0;              ///< code line the waiver targets (own-line
                                   ///< comments may wrap over several comment
                                   ///< lines before the code they cover)
  bool own_line = false;           ///< whole-line comment: also covers cover_line
  std::vector<std::string> rules;  ///< rule ids listed in allow(...)
  std::string reason;              ///< text after `--`; empty = malformed
  bool used = false;               ///< a diagnostic actually matched it
};

struct FileModel {
  std::string path;
  LexResult lex;
  std::vector<FunctionInfo> functions;
  std::vector<SuppressionInfo> suppressions;

  /// Index of the innermost function whose body covers token `tok_index`,
  /// or npos. Functions never nest in the extracted model (lambda bodies are
  /// merged into their enclosing function), so "innermost" is "the one".
  [[nodiscard]] std::size_t enclosing_function(std::size_t tok_index) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Lexes `source` and extracts functions, hot-path annotations (propagated
/// through the same-file call graph), and suppression comments.
[[nodiscard]] FileModel build_model(std::string path, std::string_view source);

}  // namespace jstream::lint
