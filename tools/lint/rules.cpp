#include "rules.hpp"

#include <algorithm>
#include <unordered_set>

namespace jstream::lint {
namespace {

[[nodiscard]] bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

[[nodiscard]] bool is_ident(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

[[nodiscard]] bool path_ends_with(const std::string& path, std::string_view tail) {
  return path.size() >= tail.size() &&
         path.compare(path.size() - tail.size(), tail.size(), tail) == 0;
}

[[nodiscard]] bool path_contains(const std::string& path, std::string_view part) {
  return path.find(part) != std::string::npos;
}

/// Skips template argument tokens after the `<` at index `i`; returns the
/// index one past the closing `>`. Treats a `>>` token as two closers.
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& tokens,
                                             std::size_t i) {
  int depth = 0;
  for (; i < tokens.size() && tokens[i].kind != TokKind::kEnd; ++i) {
    if (is_punct(tokens[i], "<")) ++depth;
    if (is_punct(tokens[i], ">")) {
      if (--depth == 0) return i + 1;
    }
    if (is_punct(tokens[i], ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
  }
  return tokens.size();
}

// ---------------------------------------------------------------------------
// R1: hot-path-alloc

const std::unordered_set<std::string>& soa_lanes() {
  static const std::unordered_set<std::string> kLanes = {
      "signal_dbm", "bitrate_kbps", "throughput_kbps", "energy_per_kb",
      "remaining_kb", "buffer_s", "rrc_idle_s", "link_units",
      "alloc_cap_units", "flags", "needs_data", "rrc_promoted", "departed",
  };
  return kLanes;
}

void check_hot_path_alloc(const FileModel& model, std::vector<Diagnostic>& out) {
  const std::vector<Token>& tokens = model.lex.tokens;
  for (const FunctionInfo& fn : model.functions) {
    if (!fn.hot) continue;
    for (std::size_t i = fn.body_begin; i <= fn.body_end && i < tokens.size(); ++i) {
      const Token& tok = tokens[i];
      if (tok.kind != TokKind::kIdentifier) continue;
      const auto diag = [&](std::string message, std::string fixit = "") {
        out.push_back(Diagnostic{model.path, tok.line, "hot-path-alloc",
                                 std::move(message), std::move(fixit)});
      };
      if (tok.text == "new") {
        diag("operator new in hot-path function '" + fn.name +
             "' (reachable from a `// jstream: hot-path` seed); the "
             "steady-state slot path must not touch the heap — reuse a "
             "caller-owned workspace");
      } else if (tok.text == "make_unique" || tok.text == "make_shared") {
        diag("std::" + tok.text + " in hot-path function '" + fn.name +
             "'; heap construction is banned on the slot path");
      } else if (tok.text == "function" && i >= 2 && is_punct(tokens[i - 1], "::") &&
                 is_ident(tokens[i - 2], "std")) {
        diag("std::function in hot-path function '" + fn.name +
             "'; type-erased callables allocate — take a template parameter "
             "or a function pointer instead");
      } else if (tok.text == "string" && i >= 2 && is_punct(tokens[i - 1], "::") &&
                 is_ident(tokens[i - 2], "std") && i + 1 < tokens.size() &&
                 (tokens[i + 1].kind == TokKind::kIdentifier ||
                  is_punct(tokens[i + 1], "(") || is_punct(tokens[i + 1], "{"))) {
        diag("std::string construction in hot-path function '" + fn.name +
             "'; use const char* / string_view (see the require() overloads "
             "in common/error.hpp)");
      } else if ((tok.text == "push_back" || tok.text == "emplace_back") &&
                 i >= 2 &&
                 (is_punct(tokens[i - 1], ".") || is_punct(tokens[i - 1], "->")) &&
                 tokens[i - 2].kind == TokKind::kIdentifier) {
        const std::string& receiver = tokens[i - 2].text;
        bool reserved = false;
        for (std::size_t j = fn.body_begin; j + 2 <= fn.body_end; ++j) {
          if (is_ident(tokens[j], receiver) &&
              (is_punct(tokens[j + 1], ".") || is_punct(tokens[j + 1], "->")) &&
              is_ident(tokens[j + 2], "reserve")) {
            reserved = true;
            break;
          }
        }
        if (!reserved) {
          diag("un-reserved " + tok.text + " on '" + receiver +
                   "' in hot-path function '" + fn.name +
                   "'; growth must be pre-reserved so the steady state never "
                   "reallocates",
               "call " + receiver + ".reserve(n) in this function before the loop");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R2: rng-discipline

void check_rng_discipline(const FileModel& model, std::vector<Diagnostic>& out) {
  const std::vector<Token>& tokens = model.lex.tokens;
  // The Rng class itself may construct freely.
  const bool rng_impl = path_ends_with(model.path, "common/rng.hpp") ||
                        path_ends_with(model.path, "common/rng.cpp");
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != TokKind::kIdentifier) continue;
    const auto diag = [&](std::string message) {
      out.push_back(Diagnostic{model.path, tok.line, "rng-discipline",
                               std::move(message), ""});
    };
    if ((tok.text == "rand" || tok.text == "srand") && i + 1 < tokens.size() &&
        is_punct(tokens[i + 1], "(") &&
        (i == 0 || (!is_punct(tokens[i - 1], ".") && !is_punct(tokens[i - 1], "->")))) {
      diag(tok.text + "() is banned in src/: global libc state breaks "
           "seed-purity and thread reproducibility — derive an Rng via split()");
      continue;
    }
    if (tok.text == "random_device") {
      diag("std::random_device is banned in src/: non-deterministic entropy "
           "breaks the bit-identicality contract behind golden digests and "
           "the fault layer");
      continue;
    }
    if (tok.text == "time" && i + 2 < tokens.size() && is_punct(tokens[i + 1], "(") &&
        (is_ident(tokens[i + 2], "nullptr") || is_ident(tokens[i + 2], "NULL") ||
         (tokens[i + 2].kind == TokKind::kNumber && tokens[i + 2].text == "0")) &&
        i + 3 < tokens.size() && is_punct(tokens[i + 3], ")")) {
      diag("time(nullptr) seeding is banned in src/: wall-clock seeds are "
           "unreproducible — seeds come from ScenarioConfig");
      continue;
    }
    if (tok.text == "mt19937" || tok.text == "mt19937_64") {
      std::size_t j = i + 1;
      if (j < tokens.size() && tokens[j].kind == TokKind::kIdentifier) ++j;
      const bool argless =
          j < tokens.size() &&
          (is_punct(tokens[j], ";") ||
           (is_punct(tokens[j], "(") && j + 1 < tokens.size() &&
            is_punct(tokens[j + 1], ")")) ||
           (is_punct(tokens[j], "{") && j + 1 < tokens.size() &&
            is_punct(tokens[j + 1], "}")));
      if (argless) {
        diag("argless std::" + tok.text +
             " uses the fixed default seed; std engines are banned in src/ — "
             "use Rng and derive streams via split()");
      }
      continue;
    }
    if (tok.text == "Rng" && !rng_impl) {
      // Type mentions (params, references, template args, Rng::statics) are
      // not originations.
      if (i + 1 >= tokens.size()) continue;
      const Token& next = tokens[i + 1];
      if (is_punct(next, "::") || is_punct(next, "&") || is_punct(next, "*") ||
          is_punct(next, ">") || is_punct(next, ">>") || is_punct(next, ")") ||
          is_punct(next, ",") || is_punct(next, ";")) {
        continue;
      }
      if (i > 0 && (is_ident(tokens[i - 1], "class") ||
                    is_ident(tokens[i - 1], "struct") ||
                    is_ident(tokens[i - 1], "typename") ||
                    is_punct(tokens[i - 1], "~"))) {
        continue;
      }
      bool constructs = false;
      if (next.kind == TokKind::kIdentifier && i + 2 < tokens.size()) {
        const Token& after_name = tokens[i + 2];
        if (is_punct(after_name, "(") || is_punct(after_name, "{") ||
            is_punct(after_name, "=")) {
          constructs = true;  // `Rng name(...)` / `Rng name = ...`
        } else if (is_punct(after_name, ";")) {
          // Bare `Rng r;` default-seeds inside a function; at class scope it
          // is a member the constructor must initialize (checked there).
          constructs = model.enclosing_function(i) != FileModel::npos;
        }
      } else if (is_punct(next, "(") || is_punct(next, "{")) {
        constructs = true;  // temporary `Rng(seed)`
      }
      if (!constructs) continue;
      // The statement is clean if the stream derives via .split(...).
      bool splits = false;
      for (std::size_t j = i + 1; j < tokens.size() && j < i + 150; ++j) {
        if (is_punct(tokens[j], ";")) break;
        if (is_ident(tokens[j], "split")) {
          splits = true;
          break;
        }
      }
      if (!splits) {
        diag("Rng constructed without .split(): every stream must derive "
             "from a parent generator (seed-purity contract behind the fault "
             "layer and golden digests); a true root stream needs an explicit "
             "allow(rng-discipline) waiver naming why it is a root");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3: digest-determinism

[[nodiscard]] bool is_determinism_sensitive(const FileModel& model) {
  if (path_contains(model.path, "/telemetry/")) return true;
  for (const Token& tok : model.lex.tokens) {
    if (tok.kind != TokKind::kIdentifier) continue;
    if (tok.text == "RunMetrics" || tok.text == "ServiceMetrics") return true;
    if (tok.text.find("digest") != std::string::npos ||
        tok.text.find("Digest") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void check_digest_determinism(const FileModel& model, std::vector<Diagnostic>& out) {
  const bool sensitive = is_determinism_sensitive(model);
  const bool solver = path_contains(model.path, "/core/");
  if (!sensitive && !solver) return;
  const std::vector<Token>& tokens = model.lex.tokens;

  // Names declared (directly or through one alias level) with an unordered
  // container type.
  std::unordered_set<std::string> unordered_types = {"unordered_map",
                                                     "unordered_set"};
  std::unordered_set<std::string> unordered_names;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != TokKind::kIdentifier ||
          !unordered_types.contains(tokens[i].text)) {
        continue;
      }
      std::size_t j = i + 1;
      if (is_punct(tokens[j], "<")) j = skip_template_args(tokens, j);
      if (j < tokens.size() && tokens[j].kind == TokKind::kIdentifier &&
          !(j + 1 < tokens.size() && is_punct(tokens[j + 1], "("))) {
        unordered_names.insert(tokens[j].text);
      }
      // `using Alias = std::unordered_map<...>;` names a type, not a value.
      if (i >= 4 && is_ident(tokens[i - 4], "using") &&
          tokens[i - 3].kind == TokKind::kIdentifier &&
          is_punct(tokens[i - 2], "=")) {
        unordered_types.insert(tokens[i - 3].text);
      }
      if (i >= 5 && is_ident(tokens[i - 5], "using") &&
          tokens[i - 4].kind == TokKind::kIdentifier &&
          is_punct(tokens[i - 3], "=") && is_ident(tokens[i - 2], "std") &&
          is_punct(tokens[i - 1], "::")) {
        unordered_types.insert(tokens[i - 4].text);
      }
    }
  }

  if (sensitive && !unordered_names.empty()) {
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (!is_ident(tokens[i], "for") || !is_punct(tokens[i + 1], "(")) continue;
      // Find the range-for `:` inside this for-header, then match the range
      // expression's identifiers against known unordered names.
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (is_punct(tokens[j], "(")) ++depth;
        if (is_punct(tokens[j], ")")) {
          if (--depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && is_punct(tokens[j], ":")) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (tokens[j].kind == TokKind::kIdentifier &&
            unordered_names.contains(tokens[j].text)) {
          out.push_back(Diagnostic{
              model.path, tokens[j].line, "digest-determinism",
              "range-for over unordered container '" + tokens[j].text +
                  "' in a determinism-sensitive TU (feeds RunMetrics/digests/"
                  "telemetry); hash iteration order is not stable across "
                  "libstdc++ versions — iterate a sorted view or an ordered "
                  "container",
              ""});
          break;
        }
      }
    }
  }

  if (sensitive || solver) {
    for (const Token& tok : tokens) {
      if (is_ident(tok, "float")) {
        out.push_back(Diagnostic{
            model.path, tok.line, "digest-determinism",
            std::string("'float' in ") + (solver ? "solver" : "metrics") +
                " code; all paper quantities are double — single precision "
                "perturbs the 1e-12 golden-digest tolerance",
            ""});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R4: checked-narrowing

void check_narrowing(const FileModel& model, std::vector<Diagnostic>& out) {
  // units.hpp is the one audited home of the raw casts the helpers wrap.
  if (path_ends_with(model.path, "common/units.hpp")) return;
  const std::vector<Token>& tokens = model.lex.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!is_ident(tokens[i], "static_cast") || !is_punct(tokens[i + 1], "<")) {
      continue;
    }
    const std::size_t end = skip_template_args(tokens, i + 1);
    std::string type;
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      if (tokens[j].kind == TokKind::kIdentifier && tokens[j].text == "const") {
        continue;
      }
      type += tokens[j].text;
    }
    std::string base = type;
    if (base.rfind("std::", 0) == 0) base = base.substr(5);
    std::string helper;
    if (base == "size_t") {
      helper = "checked_size(expr) (or floor_to_size(expr) from a double)";
    } else if (base == "int64_t") {
      helper =
          "checked_index(expr) (or floor_to_count/ceil_to_count from a double)";
    } else if (base == "int32_t") {
      helper = "checked_i32(expr)";
    } else if (base == "double") {
      helper = "as_double(expr)";
    } else {
      continue;
    }
    out.push_back(Diagnostic{
        model.path, tokens[i].line, "checked-narrowing",
        "raw static_cast<" + type +
            "> crosses the size/index/count/double families; conversions go "
            "through the typed helpers in common/units.hpp so sign/width "
            "assumptions stay asserted and grep-able",
        "replace static_cast<" + type + ">(expr) with " + helper});
  }
}

// ---------------------------------------------------------------------------
// R5: require-finalize

void check_require_finalize(const FileModel& model, std::vector<Diagnostic>& out) {
  const std::vector<Token>& tokens = model.lex.tokens;
  for (const FunctionInfo& fn : model.functions) {
    bool guarded = false;
    for (std::size_t i = fn.body_begin; i + 2 <= fn.body_end && i < tokens.size();
         ++i) {
      if (is_ident(tokens[i], "finalize") && is_punct(tokens[i + 1], "(")) {
        guarded = true;
        continue;
      }
      if (is_ident(tokens[i], "soa") && is_punct(tokens[i + 1], ".") &&
          tokens[i + 2].kind == TokKind::kIdentifier) {
        const std::string& member = tokens[i + 2].text;
        if (member == "size" || member == "rebuild") {
          guarded = true;  // the PR 7 require(soa.size() == n, ...) pattern
          continue;
        }
        if (!guarded && soa_lanes().contains(member)) {
          out.push_back(Diagnostic{
              model.path, tokens[i].line, "require-finalize",
              "SoA lane read '.soa." + member + "' in '" + fn.name +
                  "' before any finalize()/soa.size() guard in this "
                  "function; a producer that skips SlotContext::finalize() "
                  "would silently serve stale lanes — add "
                  "require(ctx.soa.size() == n, ...) first",
              ""});
          break;  // one diagnostic per function is enough to fix it
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions

void apply_suppressions(const FileModel& model, std::vector<Diagnostic>& raw,
                        FileReport& report) {
  std::vector<SuppressionInfo> sups = model.suppressions;
  for (Diagnostic& diag : raw) {
    bool waived = false;
    for (SuppressionInfo& sup : sups) {
      const bool covers_line =
          sup.line == diag.line || (sup.own_line && sup.cover_line == diag.line);
      if (!covers_line || sup.reason.empty()) continue;
      if (std::find(sup.rules.begin(), sup.rules.end(), diag.rule) ==
          sup.rules.end()) {
        continue;
      }
      sup.used = true;
      waived = true;
      report.suppressed.push_back(
          HonoredSuppression{model.path, diag.line, diag.rule, sup.reason});
      break;
    }
    if (!waived) report.diagnostics.push_back(std::move(diag));
  }
  // Malformed waivers are themselves diagnostics: a suppression without a
  // rule list or without a reason is an unauditable hole in the gate.
  for (const SuppressionInfo& sup : sups) {
    if (sup.rules.empty()) {
      report.diagnostics.push_back(Diagnostic{
          model.path, sup.line, "suppression",
          "malformed jstream-lint comment: missing allow(<rule>); syntax is "
          "`// jstream-lint: allow(<rule>[, <rule>]) -- <reason>`",
          ""});
    } else if (sup.reason.empty()) {
      report.diagnostics.push_back(Diagnostic{
          model.path, sup.line, "suppression",
          "jstream-lint waiver without a reason; every suppression must "
          "carry `-- <why this site is exempt>` so waivers stay auditable",
          ""});
    }
  }
}

}  // namespace

FileReport run_rules(const FileModel& model) {
  std::vector<Diagnostic> raw;
  check_hot_path_alloc(model, raw);
  check_rng_discipline(model, raw);
  check_digest_determinism(model, raw);
  check_narrowing(model, raw);
  check_require_finalize(model, raw);
  std::stable_sort(raw.begin(), raw.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  FileReport report;
  apply_suppressions(model, raw, report);
  return report;
}

const std::vector<std::string>& all_rule_ids() {
  static const std::vector<std::string> kIds = {
      "hot-path-alloc", "rng-discipline", "digest-determinism",
      "checked-narrowing", "require-finalize", "suppression",
  };
  return kIds;
}

}  // namespace jstream::lint
