// jstream_lint — the project-rule static analyzer (see docs/STATIC_ANALYSIS.md).
//
// Walks C++ sources (default: src/ under --root) and enforces the five
// hand-maintained disciplines generic tooling cannot express: hot-path
// allocation freedom, Rng split() stream purity, digest determinism,
// units.hpp checked narrowing, and the SoA finalize() contract. Built with
// no dependency beyond the standard library so it gates in the gcc-only CI
// container where the clang-tidy wall self-skips.
//
// Usage:
//   jstream_lint [--root DIR] [--fixits] [--rules id[,id...]]
//                [--list-suppressions] [paths...]
//
// Exit codes: 0 clean, 1 diagnostics emitted, 2 usage/IO error.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;
using jstream::lint::Diagnostic;
using jstream::lint::FileReport;
using jstream::lint::HonoredSuppression;

namespace {

struct Options {
  fs::path root = ".";
  std::vector<std::string> paths;       // relative to root; default {"src"}
  std::vector<std::string> only_rules;  // empty = all
  bool fixits = false;
  bool list_suppressions = false;
};

[[nodiscard]] bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

[[nodiscard]] std::vector<fs::path> collect_files(const Options& opt,
                                                  std::string& error) {
  std::vector<fs::path> files;
  for (const std::string& rel : opt.paths) {
    const fs::path base = opt.root / rel;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base, ec)) {
      error = "path not found: " + base.string();
      return {};
    }
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

[[nodiscard]] bool parse_args(int argc, char** argv, Options& opt,
                              std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        error = "--root needs a directory";
        return false;
      }
      opt.root = argv[i];
    } else if (arg == "--fixits") {
      opt.fixits = true;
    } else if (arg == "--list-suppressions") {
      opt.list_suppressions = true;
    } else if (arg == "--rules") {
      if (++i >= argc) {
        error = "--rules needs a comma-separated id list";
        return false;
      }
      std::stringstream ss(argv[i]);
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (id.empty()) continue;
        const auto& known = jstream::lint::all_rule_ids();
        if (std::find(known.begin(), known.end(), id) == known.end()) {
          error = "unknown rule id '" + id + "'";
          return false;
        }
        opt.only_rules.push_back(id);
      }
    } else if (arg == "--help" || arg == "-h") {
      error.clear();
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      error = "unknown option " + arg;
      return false;
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.paths.empty()) opt.paths.emplace_back("src");
  return true;
}

void print_usage() {
  std::cout
      << "usage: jstream_lint [--root DIR] [--fixits] [--rules id[,id...]]\n"
         "                    [--list-suppressions] [paths...]\n\n"
         "Enforces the project disciplines over C++ sources (default: src/\n"
         "under --root). Rules:\n";
  for (const std::string& id : jstream::lint::all_rule_ids()) {
    std::cout << "  " << id << "\n";
  }
  std::cout << "\nSuppress a finding with an auditable waiver:\n"
               "  // jstream-lint: allow(<rule>[, <rule>]) -- <reason>\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string error;
  if (!parse_args(argc, argv, opt, error)) {
    if (!error.empty()) {
      std::cerr << "jstream_lint: " << error << "\n";
      return 2;
    }
    print_usage();
    return 0;
  }

  const std::vector<fs::path> files = collect_files(opt, error);
  if (!error.empty()) {
    std::cerr << "jstream_lint: " << error << "\n";
    return 2;
  }

  std::size_t diagnostics = 0;
  std::vector<HonoredSuppression> waivers;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "jstream_lint: cannot read " << file.string() << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    // Report paths relative to the root so output is stable across checkouts.
    const std::string shown = fs::relative(file, opt.root).generic_string();
    const jstream::lint::FileModel model =
        jstream::lint::build_model(shown, buffer.str());
    FileReport report = jstream::lint::run_rules(model);
    for (const Diagnostic& diag : report.diagnostics) {
      if (!opt.only_rules.empty() &&
          std::find(opt.only_rules.begin(), opt.only_rules.end(), diag.rule) ==
              opt.only_rules.end()) {
        continue;
      }
      ++diagnostics;
      std::cout << diag.file << ":" << diag.line << ": [" << diag.rule << "] "
                << diag.message << "\n";
      if (opt.fixits && !diag.fixit.empty()) {
        std::cout << "    fixit: " << diag.fixit << "\n";
      }
    }
    waivers.insert(waivers.end(), report.suppressed.begin(),
                   report.suppressed.end());
  }

  if (opt.list_suppressions) {
    for (const HonoredSuppression& sup : waivers) {
      std::cout << sup.file << ":" << sup.line << ": suppressed [" << sup.rule
                << "] -- " << sup.reason << "\n";
    }
  }
  std::cout << "jstream_lint: " << files.size() << " files, " << diagnostics
            << " diagnostic" << (diagnostics == 1 ? "" : "s") << ", "
            << waivers.size() << " suppression"
            << (waivers.size() == 1 ? "" : "s") << " honored\n";
  return diagnostics == 0 ? 0 : 1;
}
