// Minimal C++ token lexer for jstream_lint.
//
// The project linter needs exactly three things from a translation unit:
// the identifier/punctuation stream with line numbers (comments, string
// literals, and preprocessor directives stripped so rule matchers never
// fire on prose or include paths), the comments themselves (annotations
// like `// jstream: hot-path` and suppressions live there), and nothing
// else — no types, no semantics, no clang. That keeps the analyzer
// dependency-free so it gates in the gcc-only CI container where the
// clang-tidy wall self-skips (see docs/STATIC_ANALYSIS.md).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jstream::lint {

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords (the matchers distinguish)
  kNumber,
  kString,      ///< string literal (text dropped; contents never matched)
  kChar,        ///< character literal
  kPunct,       ///< operators/punctuation; `::` `->` and friends are one token
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;  ///< identifier spelling or punctuation characters
  int line = 0;      ///< 1-based source line
};

struct Comment {
  std::string text;      ///< body without the `//` / `/* */` markers
  int line = 0;          ///< 1-based line the comment starts on
  bool own_line = false; ///< only whitespace precedes it on its line
};

struct LexResult {
  std::vector<Token> tokens;    ///< terminated by a kEnd token
  std::vector<Comment> comments;
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// punctuation tokens so a rule can still anchor a diagnostic to a line.
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace jstream::lint
