#include "gateway/data_transmitter.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace jstream {

SlotOutcome DataTransmitter::apply(const SlotContext& ctx, const Allocation& allocation,
                                   std::span<UserEndpoint> endpoints,
                                   DataReceiver& receiver) const {
  require(endpoints.size() == ctx.users.size(), "endpoint/context size mismatch");
  std::vector<std::int64_t> caps;
  caps.reserve(ctx.users.size());
  for (const auto& u : ctx.users) caps.push_back(u.alloc_cap_units);
  require_feasible(allocation, caps, ctx.capacity_units);

  const std::size_t n = endpoints.size();
  SlotOutcome outcome;
  outcome.units.assign(n, 0);
  outcome.kb.assign(n, 0.0);
  outcome.trans_mj.assign(n, 0.0);
  outcome.tail_mj.assign(n, 0.0);
  outcome.rebuffer_s.assign(n, 0.0);
  outcome.need_kb.assign(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    UserEndpoint& endpoint = endpoints[i];
    const UserSlotInfo& info = ctx.users[i];
    const std::int64_t phi = allocation.units[i];

    // Rebuffering (Eq. 8) depends only on the occupancy at slot start; the
    // shard delivered this slot becomes usable next slot. Sessions that have
    // not arrived yet neither stall nor demand data.
    outcome.rebuffer_s[i] = info.arrived ? endpoint.buffer.rebuffer_s() : 0.0;
    outcome.need_kb[i] =
        info.arrived ? std::min(ctx.params.tau_s * info.bitrate_kbps, info.remaining_kb)
                     : 0.0;

    double kb = 0.0;
    double active_s = 0.0;
    if (phi > 0) {
      // The final shard of a session may be partial; it still occupies a full
      // data unit on the air interface (constraint accounting), but only the
      // real bytes cost energy and reach the client.
      kb = std::min(ctx.params.units_to_kb(phi), info.remaining_kb);
      const double fetched = receiver.fetch_from_origin(i, kb);
      receiver.drain(i, fetched);
      kb = fetched;
      outcome.trans_mj[i] = ctx.power->energy_per_kb(info.signal_dbm) * kb;
      endpoint.delivered_kb += kb;
      // Convert bytes to playback time on the content timeline so that
      // delivering the whole file yields exactly M_i even for VBR sessions.
      const double playback_s = endpoint.session.advance_playback(
          endpoint.content_time_s, kb);
      endpoint.content_time_s += playback_s;
      endpoint.buffer.deliver(playback_s);
      // The transfer occupies d/v seconds of the slot at link rate; the
      // remainder is tail residue charged by the RRC machine.
      active_s = std::min(
          kb / ctx.throughput->throughput_kbps(info.signal_dbm), ctx.params.tau_s);
    }
    outcome.units[i] = phi;
    outcome.kb[i] = kb;
    outcome.tail_mj[i] = endpoint.rrc.advance_slot(active_s, ctx.params.tau_s);
  }
  return outcome;
}

}  // namespace jstream
