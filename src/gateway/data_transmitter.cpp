#include "gateway/data_transmitter.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace jstream {

namespace {

/// Constraint (1)/(2) validation against the snapshot's per-user caps.
/// Mirrors require_feasible but reads the caps straight from the context, so
/// the per-slot path needs no temporary caps vector; messages are built only
/// on the failure branch.
void require_feasible_ctx(const Allocation& allocation, const SlotContext& ctx) {
  require(allocation.units.size() == ctx.users.size(),
          "infeasible allocation: allocation size does not match user count");
  std::int64_t total = 0;
  for (std::size_t i = 0; i < allocation.units.size(); ++i) {
    const std::int64_t phi = allocation.units[i];
    if (phi < 0) {
      require(false, "infeasible allocation: negative allocation for user " +
                         std::to_string(i));
    }
    if (phi > ctx.users[i].alloc_cap_units) {
      require(false, "infeasible allocation: constraint (1) violated for user " +
                         std::to_string(i) + ": " + std::to_string(phi) + " > " +
                         std::to_string(ctx.users[i].alloc_cap_units));
    }
    total += phi;
  }
  if (total > ctx.capacity_units) {
    require(false, "infeasible allocation: constraint (2) violated: " +
                       std::to_string(total) + " > " +
                       std::to_string(ctx.capacity_units));
  }
}

}  // namespace

SlotOutcome DataTransmitter::apply(const SlotContext& ctx, const Allocation& allocation,
                                   std::span<UserEndpoint> endpoints,
                                   DataReceiver& receiver) const {
  SlotOutcome outcome;
  apply_into(ctx, allocation, endpoints, receiver, outcome);
  return outcome;
}

// jstream: hot-path — per-slot transmission accounting; reuses out buffers.
void DataTransmitter::apply_into(const SlotContext& ctx, const Allocation& allocation,
                                 std::span<UserEndpoint> endpoints,
                                 DataReceiver& receiver, SlotOutcome& out) const {
  require(endpoints.size() == ctx.users.size(), "endpoint/context size mismatch");
  require_feasible_ctx(allocation, ctx);

  const std::size_t n = endpoints.size();
  out.units.assign(n, 0);
  out.kb.assign(n, 0.0);
  out.trans_mj.assign(n, 0.0);
  out.tail_mj.assign(n, 0.0);
  out.rebuffer_s.assign(n, 0.0);
  out.need_kb.assign(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    UserEndpoint& endpoint = endpoints[i];
    const UserSlotInfo& info = ctx.users[i];
    const std::int64_t phi = allocation.units[i];

    // An aborted session has left the cell: no demand, no stall, and its
    // radio — RRC tail included — is no longer this base station's to charge.
    // The fault hook zeroes its allocation cap, so phi is already 0 here.
    if (info.departed) continue;

    // Rebuffering (Eq. 8) depends only on the occupancy at slot start; the
    // shard delivered this slot becomes usable next slot. Sessions that have
    // not arrived yet neither stall nor demand data.
    out.rebuffer_s[i] = info.arrived ? endpoint.buffer.rebuffer_s() : 0.0;
    out.need_kb[i] =
        info.arrived ? std::min(ctx.params.tau_s * info.bitrate_kbps, info.remaining_kb)
                     : 0.0;

    double kb = 0.0;
    double active_s = 0.0;
    if (phi > 0) {
      // The final shard of a session may be partial; it still occupies a full
      // data unit on the air interface (constraint accounting), but only the
      // real bytes cost energy and reach the client.
      kb = std::min(ctx.params.units_to_kb(phi), info.remaining_kb);
      const double fetched = receiver.fetch_from_origin(i, kb);
      receiver.drain(i, fetched);
      kb = fetched;
      out.trans_mj[i] = info.energy_per_kb * kb;
      endpoint.delivered_kb += kb;
      // Convert bytes to playback time on the content timeline so that
      // delivering the whole file yields exactly M_i even for VBR sessions.
      const double playback_s = endpoint.session.advance_playback(
          endpoint.content_time_s, kb);
      endpoint.content_time_s += playback_s;
      endpoint.buffer.deliver(playback_s);
      // The transfer occupies d/v seconds of the slot at link rate; the
      // remainder is tail residue charged by the RRC machine.
      active_s = std::min(kb / info.throughput_kbps, ctx.params.tau_s);
    }
    out.units[i] = phi;
    out.kb[i] = kb;
    out.tail_mj[i] = endpoint.rrc.advance_slot(active_s, ctx.params.tau_s);
  }
}

}  // namespace jstream
