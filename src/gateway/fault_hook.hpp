// Degraded-cell hook: the seam through which a fault layer perturbs the
// per-slot pipeline without the gateway depending on any fault machinery.
//
// Framework::run_slot drives an attached hook at two points:
//
//   degrade_context       after the Information Collector snapshots the slot
//                         and before the Scheduler decides — this is where
//                         outages override the channel, capacity degradation
//                         scales the Eq. 2 bound, departures zero a user's
//                         demand, and stale feedback substitutes the last
//                         fresh report;
//   reconcile_allocation  after the decision (and its Eq. 1/2/16 validation)
//                         and before the Data Transmitter executes — ground
//                         truth is restored for users the scheduler saw
//                         through stale reports, and their grants are clipped
//                         to what the true link can actually carry.
//
// The scheduler is validated against the context it saw; the transmitter and
// the outcome checks run against the truth. With no hook attached the slot
// path is byte-for-byte the unfaulted pipeline.
#pragma once

#include "gateway/slot_context.hpp"
#include "net/allocation.hpp"

namespace jstream {

/// Interface implemented by the fault layer (see sim/fault.hpp). Implementors
/// must not allocate in steady state — the slot path is pinned to zero heap
/// allocations by tests/perf/test_zero_alloc_slot.cpp.
class SlotFaultHook {
 public:
  virtual ~SlotFaultHook() = default;

  /// Mutates the freshly collected snapshot before the scheduler sees it.
  virtual void degrade_context(SlotContext& ctx) = 0;

  /// Restores ground truth into `ctx` and clips `alloc` to the true per-user
  /// caps for users that were served a stale view. Must only ever reduce
  /// grants, so a feasible decision stays feasible.
  virtual void reconcile_allocation(SlotContext& ctx, Allocation& alloc) = 0;
};

}  // namespace jstream
