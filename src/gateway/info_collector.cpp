#include "gateway/info_collector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

InfoCollector::InfoCollector(SlotParams params, LinkModel link, RadioProfile radio)
    : params_(params), link_(std::move(link)), radio_(radio) {
  require(params_.tau_s > 0.0, "slot length must be positive");
  require(params_.delta_kb > 0.0, "frame size must be positive");
  require(link_.throughput != nullptr && link_.power != nullptr,
          "link model must be complete");
  validate(radio_);
}

SlotContext InfoCollector::collect(std::int64_t slot, std::span<UserEndpoint> endpoints,
                                   const BaseStation& bs) const {
  SlotContext ctx;
  collect_into(slot, endpoints, bs, ctx);
  return ctx;
}

// jstream: hot-path — per-slot snapshot build; reuses ctx storage.
void InfoCollector::collect_into(std::int64_t slot, std::span<UserEndpoint> endpoints,
                                 const BaseStation& bs, SlotContext& ctx) const {
  require(slot >= 0, "slot must be non-negative");
  ctx.slot = slot;
  ctx.params = params_;
  ctx.capacity_units = bs.capacity_units(slot, params_);
  ctx.throughput = link_.throughput.get();
  ctx.power = link_.power.get();
  ctx.radio = &radio_;
  ctx.users.resize(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    UserEndpoint& endpoint = endpoints[i];
    UserSlotInfo& info = ctx.users[i];
    info.arrived = endpoint.arrived(slot);
    info.departed = endpoint.departed(slot);
    info.session_epoch = endpoint.session_epoch;
    if (endpoint.trace != nullptr) {
      // Campaign path: the channel and both Definition 3/4 fits were batch-
      // precomputed into the shared SoA trace — three array loads replace
      // the virtual signal call and the two model evaluations.
      require(slot < endpoint.trace->slots(), "slot beyond precomputed trace");
      const std::size_t cell = endpoint.trace->index(endpoint.trace_user, slot);
      info.signal_dbm = endpoint.trace->signal_data()[cell];
      info.throughput_kbps = endpoint.trace->throughput_data()[cell];
      info.energy_per_kb = endpoint.trace->energy_data()[cell];
    } else {
      info.signal_dbm = endpoint.signal->signal_dbm(slot);
      // Evaluate the Definition 3/4 fits once here; every downstream consumer
      // (cost loops, transmitter) reads the cached values.
      info.throughput_kbps = link_.throughput->throughput_kbps(info.signal_dbm);
      info.energy_per_kb = link_.power->energy_per_kb(info.signal_dbm);
    }
    // The rate the scheduler must sustain is that of the content at the
    // delivery frontier (identical to the wall-clock rate for CBR sessions).
    info.bitrate_kbps = endpoint.session.bitrate_at_time(endpoint.content_time_s);
    info.remaining_kb = endpoint.remaining_kb();
    info.needs_data = info.arrived && !info.departed && info.remaining_kb > 0.0;
    info.link_units = params_.link_units(info.throughput_kbps);
    const std::int64_t remaining_units =
        ceil_to_count(info.remaining_kb / params_.delta_kb);
    info.alloc_cap_units =
        (info.arrived && !info.departed)
            ? std::max<std::int64_t>(0, std::min(info.link_units, remaining_units))
            : 0;
    info.buffer_s = endpoint.buffer.occupancy_s();
    info.elapsed_play_s = endpoint.buffer.elapsed_s();
    info.total_play_s = endpoint.buffer.total_s();
    info.rrc_idle_s = endpoint.rrc.idle_time_s();
    info.rrc_promoted = !endpoint.rrc.never_transmitted();
    info.playback_done = endpoint.buffer.playback_finished();
  }
  // Publish the SoA mirror the scheduler hot loops stream over.
  ctx.finalize();
}

}  // namespace jstream
