// Data Receiver component (Section III-A).
//
// Buffers downlink streaming data fetched from origin servers before the
// Scheduler releases it toward users, and applies resource slicing: only
// video flows enter scheduled queues, other traffic is passed through and
// merely counted. A finite backhaul rate can be configured to model a
// constrained gateway-to-origin path (infinite by default, matching the
// paper's evaluation where the radio link is the bottleneck).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace jstream {

/// Per-flow downlink staging queue at the gateway.
class DataReceiver {
 public:
  /// `users` video flows; `backhaul_kbps` caps the total origin fetch rate
  /// per second of simulated time (infinity by default).
  explicit DataReceiver(std::size_t users,
                        double backhaul_kbps = std::numeric_limits<double>::infinity());

  /// Fetches up to `kb` of user `user`'s content from the origin into the
  /// staging queue, subject to this slot's remaining backhaul budget.
  /// Returns the amount actually fetched.
  double fetch_from_origin(std::size_t user, double kb);

  /// Removes `kb` from user `user`'s queue for transmission. Throws when the
  /// queue holds less than `kb`.
  void drain(std::size_t user, double kb);

  /// Buffered KB for a flow.
  [[nodiscard]] double buffered_kb(std::size_t user) const;

  /// Resets the per-slot backhaul budget; call once per slot.
  void begin_slot(double tau_s);

  /// Records non-video downlink traffic bypassing the scheduler (resource
  /// slicing); only accounted, never queued.
  void pass_through_other_traffic(double kb) noexcept;

  /// Total non-video KB passed through so far.
  [[nodiscard]] double other_traffic_kb() const noexcept { return other_traffic_kb_; }

  [[nodiscard]] std::size_t user_count() const noexcept { return queues_kb_.size(); }

 private:
  std::vector<double> queues_kb_;
  double backhaul_kbps_;
  double slot_budget_kb_;
  double other_traffic_kb_ = 0.0;
};

}  // namespace jstream
