#include "gateway/data_receiver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace jstream {

DataReceiver::DataReceiver(std::size_t users, double backhaul_kbps)
    : queues_kb_(users, 0.0),
      backhaul_kbps_(backhaul_kbps),
      slot_budget_kb_(std::numeric_limits<double>::infinity()) {
  require(users > 0, "receiver needs at least one flow");
  require(backhaul_kbps_ > 0.0, "backhaul rate must be positive");
}

void DataReceiver::begin_slot(double tau_s) {
  require(tau_s > 0.0, "slot length must be positive");
  slot_budget_kb_ = std::isinf(backhaul_kbps_)
                        ? std::numeric_limits<double>::infinity()
                        : backhaul_kbps_ * tau_s;
}

double DataReceiver::fetch_from_origin(std::size_t user, double kb) {
  require(user < queues_kb_.size(), "unknown flow");
  require(kb >= 0.0, "fetch size must be non-negative");
  const double granted = std::min(kb, slot_budget_kb_);
  if (!std::isinf(slot_budget_kb_)) slot_budget_kb_ -= granted;
  queues_kb_[user] += granted;
  return granted;
}

void DataReceiver::drain(std::size_t user, double kb) {
  require(user < queues_kb_.size(), "unknown flow");
  require(kb >= 0.0, "drain size must be non-negative");
  // Tolerate floating-point rounding at the tail of a session.
  require(queues_kb_[user] >= kb - 1e-9, "draining more than buffered");
  queues_kb_[user] = std::max(queues_kb_[user] - kb, 0.0);
}

double DataReceiver::buffered_kb(std::size_t user) const {
  require(user < queues_kb_.size(), "unknown flow");
  return queues_kb_[user];
}

void DataReceiver::pass_through_other_traffic(double kb) noexcept {
  other_traffic_kb_ += kb;
}

}  // namespace jstream
