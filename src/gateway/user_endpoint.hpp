// Per-user simulation state bundled for the gateway framework: the radio
// channel, the streaming session, the client playback buffer, and the RRC
// machine that accounts tail energy.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "media/playback_buffer.hpp"
#include "media/video_session.hpp"
#include "radio/rrc.hpp"
#include "radio/signal_model.hpp"
#include "radio/signal_trace.hpp"

namespace jstream {

/// One mobile user as seen by the gateway.
struct UserEndpoint {
  /// departure_slot value meaning "streams to the end of the run".
  static constexpr std::int64_t kNeverSlot = std::numeric_limits<std::int64_t>::max();

  std::unique_ptr<SignalModel> signal;
  VideoSession session;
  PlaybackBuffer buffer;
  RrcStateMachine rrc;
  double delivered_kb = 0.0;   ///< content pushed over the air so far
  double content_time_s = 0.0; ///< playback position of the delivered prefix
  std::int64_t start_slot = 0; ///< first slot this session exists (arrivals)
  /// First slot this session no longer exists. This is the single source of
  /// truth for every departure path — fault-injected mid-stream aborts (the
  /// Simulator stamps the FaultSchedule's drawn slots here) and session-layer
  /// departures alike; the InfoCollector derives UserSlotInfo::departed from
  /// it. kNeverSlot = streams to the end.
  std::int64_t departure_slot = kNeverSlot;
  /// Bumped by the session layer each time this population slot is bound to a
  /// new session, so per-user consumers (the paper-invariant validator's
  /// shadow state) can detect mid-run rebinds. 0 for static populations.
  std::int32_t session_epoch = 0;

  /// Precomputed channel substrate (campaign engine). When attached, the
  /// InfoCollector reads sig/v(sig)/P(sig) from the trace matrices instead
  /// of driving `signal` — array loads replace the per-slot virtual call and
  /// the two link-fit evaluations. Non-owning: the Simulator (or whoever
  /// attaches it) keeps the shared_ptr alive for the run.
  const SignalTraceSet* trace = nullptr;
  std::size_t trace_user = 0;  ///< this endpoint's row in `trace`

  void attach_trace(const SignalTraceSet* trace_set, std::size_t user) noexcept {
    trace = trace_set;
    trace_user = user;
  }

  UserEndpoint(std::unique_ptr<SignalModel> signal_model, VideoSession video,
               RadioProfile radio, double tau_s, std::int64_t session_start_slot = 0)
      : signal(std::move(signal_model)),
        session(std::move(video)),
        buffer(session.total_playback_s(), tau_s),
        rrc(radio),
        start_slot(session_start_slot) {}

  /// True once the session has started by `slot`.
  [[nodiscard]] bool arrived(std::int64_t slot) const noexcept {
    return slot >= start_slot;
  }

  /// True once the session has ended (fault abort or session-layer departure).
  [[nodiscard]] bool departed(std::int64_t slot) const noexcept {
    return slot >= departure_slot;
  }

  /// Stamp the departure slot (kNeverSlot clears it).
  void depart_at(std::int64_t slot) noexcept { departure_slot = slot; }

  /// Content still to be delivered, KB.
  [[nodiscard]] double remaining_kb() const noexcept {
    return session.size_kb() - delivered_kb;
  }

  /// True while the user still needs scheduling: content left to deliver or
  /// playback still running.
  [[nodiscard]] bool active() const noexcept {
    return remaining_kb() > 0.0 || !buffer.playback_finished();
  }
};

}  // namespace jstream
