// Information Collector component (Section III-A).
//
// Extracts per-user signal strength and required data rate each slot and
// assembles the cross-layer SlotContext handed to the Scheduler. In a real
// deployment RSSI arrives in user requests and bitrates from DPI middleboxes;
// here both are read from the simulated endpoints (see DESIGN.md
// substitutions).
#pragma once

#include <span>

#include "gateway/slot_context.hpp"
#include "gateway/user_endpoint.hpp"
#include "net/base_station.hpp"

namespace jstream {

/// Builds per-slot scheduler snapshots from endpoint state.
class InfoCollector {
 public:
  /// `link` supplies Definition 3/4 fits; `radio` the RRC parameter set.
  InfoCollector(SlotParams params, LinkModel link, RadioProfile radio);

  /// Assembles the SlotContext for `slot`. `endpoints` supplies signal,
  /// session, buffer, and RRC state; `bs` supplies S(n).
  [[nodiscard]] SlotContext collect(std::int64_t slot,
                                    std::span<UserEndpoint> endpoints,
                                    const BaseStation& bs) const;

  /// Buffer-reusing variant of collect: overwrites `ctx` in place, reusing
  /// its `users` storage so a steady-state caller (Framework::run_slot)
  /// performs no heap allocation per slot.
  void collect_into(std::int64_t slot, std::span<UserEndpoint> endpoints,
                    const BaseStation& bs, SlotContext& ctx) const;

  [[nodiscard]] const SlotParams& params() const noexcept { return params_; }
  [[nodiscard]] const LinkModel& link() const noexcept { return link_; }
  [[nodiscard]] const RadioProfile& radio() const noexcept { return radio_; }

 private:
  SlotParams params_;
  LinkModel link_;
  RadioProfile radio_;
};

}  // namespace jstream
