// Data Transmitter component (Section III-A).
//
// Applies the Scheduler's allocation: validates it against constraints (1)
// and (2), stages the bytes through the Data Receiver, charges transmission
// energy (Eq. 3) or tail energy (Eq. 4) per user, and hands the shard's
// playback time to the client buffer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gateway/data_receiver.hpp"
#include "gateway/slot_context.hpp"
#include "gateway/user_endpoint.hpp"
#include "net/allocation.hpp"

namespace jstream {

/// Per-user results of executing one slot.
struct SlotOutcome {
  std::vector<std::int64_t> units;    ///< phi_i(n) actually transmitted
  std::vector<double> kb;             ///< d_i(n) in KB (last shard may be partial)
  std::vector<double> trans_mj;       ///< Eq. 3 transmission energy
  std::vector<double> tail_mj;        ///< Eq. 4 per-slot tail energy
  std::vector<double> rebuffer_s;     ///< Eq. 8 rebuffering time c_i(n)
  std::vector<double> need_kb;        ///< d_need(i): tau * p_i, capped by remaining

  /// Total energy of user i in this slot (Eq. 5): transmission when phi != 0,
  /// tail otherwise. (At most one of the two is non-zero per user.)
  [[nodiscard]] double energy_mj(std::size_t user) const {
    return trans_mj[user] + tail_mj[user];
  }
};

/// Executes allocations against endpoint state.
class DataTransmitter {
 public:
  /// Applies `allocation` for the slot described by `ctx`. Endpoints must
  /// have begin_slot() already applied to their buffers (the Framework
  /// enforces this ordering); end_slot() remains the caller's duty.
  /// Throws when the allocation violates constraint (1) or (2).
  [[nodiscard]] SlotOutcome apply(const SlotContext& ctx, const Allocation& allocation,
                                  std::span<UserEndpoint> endpoints,
                                  DataReceiver& receiver) const;

  /// Buffer-reusing variant of apply: overwrites `out` in place, recycling
  /// its vectors, and validates constraints without materializing a caps
  /// vector — the steady-state slot path performs no heap allocation.
  void apply_into(const SlotContext& ctx, const Allocation& allocation,
                  std::span<UserEndpoint> endpoints, DataReceiver& receiver,
                  SlotOutcome& out) const;
};

}  // namespace jstream
