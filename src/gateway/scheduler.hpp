// The Scheduler component interface (Section III-A).
//
// A scheduler decides, once per slot, how many data units each user receives.
// Implementations may keep state across slots (virtual queues, burst phases)
// but must produce allocations satisfying constraints (1) and (2); the
// DataTransmitter validates every allocation before applying it.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "gateway/slot_context.hpp"
#include "net/allocation.hpp"

namespace jstream {

/// Optimality certificate for schedulers that solve the per-slot problem
/// approximately but can bound the error. `last_gap` is a per-slot upper
/// bound, in the slot objective's units, on cost(decision) - cost(optimum):
/// 0 when the solve was exact, a certified Lagrangian duality gap when the
/// EMA coarsening mode is active (see docs/PERFORMANCE.md, "EMA at scale").
/// The invariant checker compares `last_gap` against the Theorem 1 drift
/// bound B under --validate; the aggregate fields feed RunMetrics.
struct SolveCertificate {
  double last_gap = 0.0;          ///< certified gap of the most recent slot
  double gap_sum = 0.0;           ///< sum of certified gaps since reset
  double gap_max = 0.0;           ///< worst per-slot certified gap since reset
  std::int64_t certified_slots = 0;  ///< slots solved with a nonzero-gap certificate
  std::int64_t exact_slots = 0;      ///< slots solved exactly (gap == 0)
};

/// Per-slot data allocation policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Stable identifier used in reports and the factory ("rtma", "ema", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Clears internal state for a fresh run over `users` users.
  virtual void reset(std::size_t users) = 0;

  /// Clears any per-user state for population slot `user` only, leaving the
  /// rest of the run untouched. The session layer calls this when a departed
  /// slot is rebound to a freshly arrived session, so stale virtual queues or
  /// rotation state never leak across sessions. Stateless schedulers need not
  /// override the no-op default.
  virtual void reset_user(std::size_t user) { (void)user; }

  /// Computes phi_i(n) for every user. Must satisfy:
  ///   0 <= phi_i <= ctx.users[i].alloc_cap_units      (constraint (1))
  ///   sum phi_i <= ctx.capacity_units                 (constraint (2))
  [[nodiscard]] virtual Allocation allocate(const SlotContext& ctx) = 0;

  /// Buffer-reusing variant: writes the decision into `out`, recycling its
  /// storage across slots. The framework drives this entry point so that
  /// schedulers with internal workspaces (EMA) can run allocation-free in
  /// steady state; the default simply forwards to allocate().
  virtual void allocate_into(const SlotContext& ctx, Allocation& out) {
    out = allocate(ctx);
  }

  /// Lyapunov virtual-queue levels PC_i (Eq. 16) *after* the current slot's
  /// decision, for schedulers that maintain them (EMA family); empty
  /// otherwise. The paper-invariant validator cross-checks these against the
  /// Eq. 16 shadow recursion (see src/analysis/invariant_checker.hpp).
  [[nodiscard]] virtual std::span<const double> virtual_queues() const { return {}; }

  /// Optimality certificate of the per-slot solves, for schedulers that can
  /// bound their approximation error (the EMA family). Null for schedulers
  /// without one; exact solvers report gap 0.
  [[nodiscard]] virtual const SolveCertificate* solve_certificate() const {
    return nullptr;
  }
};

}  // namespace jstream
