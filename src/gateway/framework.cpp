#include "gateway/framework.hpp"

#include "common/error.hpp"

namespace jstream {

Framework::Framework(InfoCollector collector, std::unique_ptr<Scheduler> scheduler,
                     SchedulingMode mode, std::size_t users, double backhaul_kbps)
    : collector_(std::move(collector)),
      scheduler_(std::move(scheduler)),
      mode_(mode),
      receiver_(users, backhaul_kbps) {
  require(scheduler_ != nullptr, "framework needs a scheduler");
  scheduler_->reset(users);
}

SlotOutcome Framework::run_slot(std::int64_t slot, std::span<UserEndpoint> endpoints,
                                const BaseStation& bs) {
  require(endpoints.size() == receiver_.user_count(),
          "endpoint count differs from receiver flows");
  receiver_.begin_slot(collector_.params().tau_s);
  for (auto& endpoint : endpoints) endpoint.buffer.begin_slot();

  last_ctx_ = collector_.collect(slot, endpoints, bs);
  last_alloc_ = scheduler_->allocate(last_ctx_);
  SlotOutcome outcome = transmitter_.apply(last_ctx_, last_alloc_, endpoints, receiver_);

  for (auto& endpoint : endpoints) endpoint.buffer.end_slot();
  return outcome;
}

}  // namespace jstream
