#include "gateway/framework.hpp"

#include <vector>

#include "common/error.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scoped_timer.hpp"
#include "common/units.hpp"

namespace jstream {

namespace {

// Resolved once; references stay valid for the process lifetime, so the
// per-slot path never touches the registry lock.
struct FrameworkTelemetry {
  telemetry::Counter& slots;
  telemetry::Counter& eq1_link_clips;
  telemetry::Counter& eq2_capacity_clips;
  telemetry::Histogram& decision_latency_us;
  telemetry::SlotTracer& tracer;

  static FrameworkTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static FrameworkTelemetry probes{
        registry.counter("gateway.slots"),
        registry.counter("constraint.eq1.link_cap_clips"),
        registry.counter("constraint.eq2.capacity_clips"),
        registry.histogram("scheduler.decision_latency_us"),
        registry.tracer()};
    return probes;
  }
};

}  // namespace

Framework::Framework(InfoCollector collector, std::unique_ptr<Scheduler> scheduler,
                     SchedulingMode mode, std::size_t users, double backhaul_kbps)
    : collector_(std::move(collector)),
      scheduler_(std::move(scheduler)),
      mode_(mode),
      receiver_(users, backhaul_kbps) {
  require(scheduler_ != nullptr, "framework needs a scheduler");
  scheduler_->reset(users);
  validator_.reset(scheduler_->name(), users);
}

// jstream: hot-path — steady-state slot entry; everything reachable from
// here in this TU must stay allocation-free (tests/perf/test_zero_alloc_slot).
const SlotOutcome& Framework::run_slot(std::int64_t slot,
                                       std::span<UserEndpoint> endpoints,
                                       const BaseStation& bs) {
  require(endpoints.size() == receiver_.user_count(),
          "endpoint count differs from receiver flows");
  auto& probes = FrameworkTelemetry::instance();
  probes.slots.add();

  receiver_.begin_slot(collector_.params().tau_s);
  for (auto& endpoint : endpoints) endpoint.buffer.begin_slot();

  collector_.collect_into(slot, endpoints, bs, last_ctx_);
  // Degraded-cell seam: the scheduler decides — and is validated — against
  // the perturbed view; truth is restored (and stale-view grants clipped)
  // before the transmitter executes and the outcome is checked.
  if (fault_hook_ != nullptr) {
    fault_hook_->degrade_context(last_ctx_);
    // The hook mutates the AoS records in place; refresh the SoA mirror so
    // schedulers stream the degraded view, not the truthful one.
    last_ctx_.finalize();
  }
  {
    telemetry::ScopedTimer timer(probes.decision_latency_us);
    scheduler_->allocate_into(last_ctx_, last_alloc_);
  }

  // Latched once per slot: the validator sees either both hooks or neither,
  // so its shadow state never observes half a slot.
  const bool validate = analysis::validation_enabled();
  if (validate) {
    validator_.check_allocation(last_ctx_, last_alloc_, scheduler_->virtual_queues());
    // Approximate solvers must also stay inside their certified error budget
    // (Theorem 1 slack; see docs/PERFORMANCE.md "EMA at scale").
    if (const SolveCertificate* cert = scheduler_->solve_certificate()) {
      validator_.check_certificate(last_ctx_.slot, cert->last_gap);
    }
  }

  if (fault_hook_ != nullptr) fault_hook_->reconcile_allocation(last_ctx_, last_alloc_);

  // Observation-only accounting of which constraint bound each grant:
  // constraint (1) when a user's grant saturated its per-user cap while the
  // session still wanted more, constraint (2) when the slot's total grant
  // exhausted the base-station capacity.
  if (telemetry::enabled()) {
    std::int64_t granted_total = 0;
    for (std::size_t i = 0; i < last_ctx_.user_count(); ++i) {
      const UserSlotInfo& user = last_ctx_.users[i];
      const std::int64_t granted = last_alloc_.units[i];
      granted_total += granted;
      if (granted > 0 && granted == user.alloc_cap_units &&
          last_ctx_.params.need_units(user.bitrate_kbps) > user.alloc_cap_units) {
        probes.eq1_link_clips.add();
        probes.tracer.record(slot, checked_i32(i),
                             telemetry::TraceEventKind::kClipLink,
                             as_double(granted));
      }
    }
    if (granted_total > 0 && granted_total == last_ctx_.capacity_units) {
      probes.eq2_capacity_clips.add();
      probes.tracer.record(slot, -1, telemetry::TraceEventKind::kClipCapacity,
                           as_double(granted_total));
    }
  }

  const bool trace_rrc = telemetry::enabled();
  if (trace_rrc || validate) {
    rrc_before_.resize(endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      rrc_before_[i] = endpoints[i].rrc.state();
    }
  }

  transmitter_.apply_into(last_ctx_, last_alloc_, endpoints, receiver_, last_outcome_);

  if (validate) {
    validator_.check_outcome(last_ctx_, last_alloc_, last_outcome_, endpoints,
                             rrc_before_);
  }

  if (trace_rrc) {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      const RrcState after = endpoints[i].rrc.state();
      if (after != rrc_before_[i]) {
        probes.tracer.record(slot, checked_i32(i),
                             telemetry::TraceEventKind::kRrcTransition,
                             as_double(static_cast<int>(after)));
      }
    }
  }

  for (auto& endpoint : endpoints) endpoint.buffer.end_slot();
  return last_outcome_;
}

}  // namespace jstream
