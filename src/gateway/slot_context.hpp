// Scheduler input: everything the Information Collector knows about one slot.
//
// This is the cross-layer interface of the paper — required video data rates
// (application layer), RSSI (physical layer), RRC idle timers (RRC layer) and
// base-station capacity (network layer) are delivered to the Scheduler as one
// coherent snapshot.
#pragma once

#include <cstdint>
#include <vector>

#include "net/transmission.hpp"
#include "radio/link_model.hpp"
#include "radio/radio_profile.hpp"

namespace jstream {

/// Cross-layer view of one user in one slot.
///
/// `throughput_kbps` and `energy_per_kb` cache the link-model fits for the
/// user's current signal. Snapshot producers (InfoCollector, the ABR
/// simulator, test fixtures) evaluate the models once per user per slot;
/// schedulers and the transmitter read the cached values instead of making
/// repeated virtual model calls in their cost loops.
struct UserSlotInfo {
  bool arrived = true;          ///< session has started (see UserEndpoint::start_slot)
  bool needs_data = false;      ///< content remains to be delivered
  double signal_dbm = 0.0;      ///< sig_i(n)
  double bitrate_kbps = 0.0;    ///< p_i(n)
  double throughput_kbps = 0.0; ///< v(sig_i): Definition 3 fit, cached per slot
  double energy_per_kb = 0.0;   ///< P(sig_i): Definition 4 fit (mJ/KB), cached per slot
  std::int64_t link_units = 0;  ///< constraint (1) cap: floor(tau*v(sig)/delta)
  std::int64_t alloc_cap_units = 0;  ///< min(link cap, units of remaining content)
  double remaining_kb = 0.0;    ///< content not yet delivered
  double buffer_s = 0.0;        ///< r_i(n): client buffer occupancy, seconds
  double elapsed_play_s = 0.0;  ///< m_i(n)
  double total_play_s = 0.0;    ///< M_i
  double rrc_idle_s = 0.0;      ///< time since last transmission
  bool rrc_promoted = false;    ///< radio has transmitted at least once
  bool playback_done = false;   ///< client finished playing the whole session
  /// Session ended mid-stream — a fault-injected abort or a session-layer
  /// departure; both stamp UserEndpoint::departure_slot and the collector
  /// derives this flag from it (one departure code path). The user is gone:
  /// zero allocation cap, no demand, no stall accounting, and its radio is no
  /// longer charged. Implies alloc_cap_units == 0 and needs_data == false.
  bool departed = false;
  /// Which session currently occupies this population slot (see
  /// UserEndpoint::session_epoch). Lets per-user shadow state (the
  /// paper-invariant validator) detect mid-run rebinds. 0 in batch runs.
  std::int32_t session_epoch = 0;
};

/// Immutable per-slot snapshot handed to Scheduler::allocate.
struct SlotContext {
  std::int64_t slot = 0;
  SlotParams params;
  std::int64_t capacity_units = 0;  ///< constraint (2) cap for this slot
  std::vector<UserSlotInfo> users;
  const ThroughputModel* throughput = nullptr;
  const PowerModel* power = nullptr;
  const RadioProfile* radio = nullptr;

  [[nodiscard]] std::size_t user_count() const noexcept { return users.size(); }
};

}  // namespace jstream
