// Scheduler input: everything the Information Collector knows about one slot.
//
// This is the cross-layer interface of the paper — required video data rates
// (application layer), RSSI (physical layer), RRC idle timers (RRC layer) and
// base-station capacity (network layer) are delivered to the Scheduler as one
// coherent snapshot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.hpp"
#include "net/transmission.hpp"
#include "radio/link_model.hpp"
#include "radio/radio_profile.hpp"

namespace jstream {

/// Cross-layer view of one user in one slot.
///
/// `throughput_kbps` and `energy_per_kb` cache the link-model fits for the
/// user's current signal. Snapshot producers (InfoCollector, the ABR
/// simulator, test fixtures) evaluate the models once per user per slot;
/// schedulers and the transmitter read the cached values instead of making
/// repeated virtual model calls in their cost loops.
struct UserSlotInfo {
  bool arrived = true;          ///< session has started (see UserEndpoint::start_slot)
  bool needs_data = false;      ///< content remains to be delivered
  double signal_dbm = 0.0;      ///< sig_i(n)
  double bitrate_kbps = 0.0;    ///< p_i(n)
  double throughput_kbps = 0.0; ///< v(sig_i): Definition 3 fit, cached per slot
  double energy_per_kb = 0.0;   ///< P(sig_i): Definition 4 fit (mJ/KB), cached per slot
  std::int64_t link_units = 0;  ///< constraint (1) cap: floor(tau*v(sig)/delta)
  std::int64_t alloc_cap_units = 0;  ///< min(link cap, units of remaining content)
  double remaining_kb = 0.0;    ///< content not yet delivered
  double buffer_s = 0.0;        ///< r_i(n): client buffer occupancy, seconds
  double elapsed_play_s = 0.0;  ///< m_i(n)
  double total_play_s = 0.0;    ///< M_i
  double rrc_idle_s = 0.0;      ///< time since last transmission
  bool rrc_promoted = false;    ///< radio has transmitted at least once
  bool playback_done = false;   ///< client finished playing the whole session
  /// Session ended mid-stream — a fault-injected abort or a session-layer
  /// departure; both stamp UserEndpoint::departure_slot and the collector
  /// derives this flag from it (one departure code path). The user is gone:
  /// zero allocation cap, no demand, no stall accounting, and its radio is no
  /// longer charged. Implies alloc_cap_units == 0 and needs_data == false.
  bool departed = false;
  /// Which session currently occupies this population slot (see
  /// UserEndpoint::session_epoch). Lets per-user shadow state (the
  /// paper-invariant validator) detect mid-run rebinds. 0 in batch runs.
  std::int32_t session_epoch = 0;
};

/// Structure-of-arrays mirror of the per-user snapshot fields the scheduler
/// hot loops actually touch. Each field is a contiguous cache-line-aligned
/// array indexed by user, so per-slot cost builds (EMA, RTMA, the baselines)
/// stream over plain `double`/`int64` lanes the autovectorizer can handle
/// instead of striding through 100-byte AoS records.
///
/// Built from `SlotContext::users` by `SlotContext::finalize()` in one linear
/// pass; every snapshot producer (InfoCollector::collect_into, the ABR
/// simulator, test fixtures, the fault layer's post-degrade refresh in
/// Framework::run_slot) calls it after the AoS records settle. Consumers
/// guard with `soa.size() == user_count()` so a producer that skips the
/// rebuild fails loudly instead of reading stale lanes.
struct SlotSoa {
  simd::AlignedVec<double> signal_dbm;
  simd::AlignedVec<double> bitrate_kbps;
  simd::AlignedVec<double> throughput_kbps;
  simd::AlignedVec<double> energy_per_kb;
  simd::AlignedVec<double> remaining_kb;
  simd::AlignedVec<double> buffer_s;
  simd::AlignedVec<double> rrc_idle_s;
  simd::AlignedVec<std::int64_t> link_units;
  simd::AlignedVec<std::int64_t> alloc_cap_units;
  /// Bit-packed per-user booleans (kArrived | kNeedsData | ...).
  simd::AlignedVec<std::uint8_t> flags;

  static constexpr std::uint8_t kArrived = 1U << 0U;
  static constexpr std::uint8_t kNeedsData = 1U << 1U;
  static constexpr std::uint8_t kRrcPromoted = 1U << 2U;
  static constexpr std::uint8_t kPlaybackDone = 1U << 3U;
  static constexpr std::uint8_t kDeparted = 1U << 4U;

  [[nodiscard]] std::size_t size() const noexcept { return flags.size(); }
  [[nodiscard]] bool needs_data(std::size_t i) const noexcept {
    return (flags[i] & kNeedsData) != 0;
  }
  [[nodiscard]] bool rrc_promoted(std::size_t i) const noexcept {
    return (flags[i] & kRrcPromoted) != 0;
  }
  [[nodiscard]] bool departed(std::size_t i) const noexcept {
    return (flags[i] & kDeparted) != 0;
  }

  /// One linear pass over the AoS records; buffers only ever grow, so a
  /// steady-state rebuild performs no heap allocation.
  void rebuild(std::span<const UserSlotInfo> users) {
    const std::size_t n = users.size();
    signal_dbm.resize(n);
    bitrate_kbps.resize(n);
    throughput_kbps.resize(n);
    energy_per_kb.resize(n);
    remaining_kb.resize(n);
    buffer_s.resize(n);
    rrc_idle_s.resize(n);
    link_units.resize(n);
    alloc_cap_units.resize(n);
    flags.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const UserSlotInfo& user = users[i];
      signal_dbm[i] = user.signal_dbm;
      bitrate_kbps[i] = user.bitrate_kbps;
      throughput_kbps[i] = user.throughput_kbps;
      energy_per_kb[i] = user.energy_per_kb;
      remaining_kb[i] = user.remaining_kb;
      buffer_s[i] = user.buffer_s;
      rrc_idle_s[i] = user.rrc_idle_s;
      link_units[i] = user.link_units;
      alloc_cap_units[i] = user.alloc_cap_units;
      std::uint8_t bits = 0;
      if (user.arrived) bits |= kArrived;
      if (user.needs_data) bits |= kNeedsData;
      if (user.rrc_promoted) bits |= kRrcPromoted;
      if (user.playback_done) bits |= kPlaybackDone;
      if (user.departed) bits |= kDeparted;
      flags[i] = bits;
    }
  }
};

/// Immutable per-slot snapshot handed to Scheduler::allocate.
struct SlotContext {
  std::int64_t slot = 0;
  SlotParams params;
  std::int64_t capacity_units = 0;  ///< constraint (2) cap for this slot
  std::vector<UserSlotInfo> users;
  /// SoA mirror of `users`; see SlotSoa. Valid only after finalize().
  SlotSoa soa;
  const ThroughputModel* throughput = nullptr;
  const PowerModel* power = nullptr;
  const RadioProfile* radio = nullptr;

  [[nodiscard]] std::size_t user_count() const noexcept { return users.size(); }

  /// Rebuilds the SoA mirror from `users`. Producers call this once the AoS
  /// records are final for the slot (and again after mutating them, as the
  /// fault layer's degrade hook does).
  void finalize() { soa.rebuild(users); }
};

}  // namespace jstream
