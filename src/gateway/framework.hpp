// The streaming-optimization framework facade (Figure 1 of the paper).
//
// Wires the four components — Data Receiver, Information Collector,
// Scheduler, Data Transmitter — and runs them in the paper's per-slot order:
//
//   1. receiver.begin_slot        (reset backhaul budget)
//   2. buffer.begin_slot per user (Eq. 7: fold in the previous shard)
//   3. collector.collect          (cross-layer snapshot -> SlotContext)
//   4. scheduler.allocate         (RTM or EM mode decision)
//   5. transmitter.apply          (validate + execute, energy accounting)
//   6. buffer.end_slot per user   (advance playback)
//
// The operating mode (RTM vs EM) is simply which Scheduler is installed; the
// factory in src/baselines and the algorithms in src/core provide them.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "analysis/invariant_checker.hpp"
#include "gateway/data_receiver.hpp"
#include "gateway/data_transmitter.hpp"
#include "gateway/fault_hook.hpp"
#include "gateway/info_collector.hpp"
#include "gateway/scheduler.hpp"
#include "net/base_station.hpp"
#include "radio/rrc.hpp"

namespace jstream {

/// Scheduler operating mode (Section III-A).
enum class SchedulingMode {
  kRebufferMinimization,  ///< RTM: min PC s.t. PE <= Phi
  kEnergyMinimization,    ///< EM:  min PE s.t. PC <= Omega
  kBaseline,              ///< comparison policies
};

/// Gateway framework instance for one base station.
class Framework {
 public:
  /// Takes ownership of the scheduler. `users` sizes the receiver queues.
  Framework(InfoCollector collector, std::unique_ptr<Scheduler> scheduler,
            SchedulingMode mode, std::size_t users,
            double backhaul_kbps = std::numeric_limits<double>::infinity());

  /// Runs one slot over all endpoints; returns per-user outcomes. Buffers'
  /// begin/end_slot are handled internally. The returned reference points at
  /// framework-owned storage that the next run_slot call overwrites — the
  /// whole slot path (snapshot, decision, outcome) reuses warm buffers and
  /// performs zero heap allocations in steady state.
  [[nodiscard]] const SlotOutcome& run_slot(std::int64_t slot,
                                            std::span<UserEndpoint> endpoints,
                                            const BaseStation& bs);

  /// Also exposes the context/allocation/outcome of the last slot.
  [[nodiscard]] const SlotContext& last_context() const noexcept { return last_ctx_; }
  [[nodiscard]] const Allocation& last_allocation() const noexcept { return last_alloc_; }
  [[nodiscard]] const SlotOutcome& last_outcome() const noexcept { return last_outcome_; }

  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheduler_; }
  [[nodiscard]] SchedulingMode mode() const noexcept { return mode_; }
  [[nodiscard]] DataReceiver& receiver() noexcept { return receiver_; }
  [[nodiscard]] const InfoCollector& collector() const noexcept { return collector_; }

  /// The paper-invariant validator attached to this framework. Active only
  /// while analysis::validation_enabled(); see docs/STATIC_ANALYSIS.md.
  [[nodiscard]] const analysis::InvariantChecker& validator() const noexcept {
    return validator_;
  }

  /// Attaches a degraded-cell hook (non-owning; the caller keeps it alive
  /// across run_slot calls — see docs/ROBUSTNESS.md). Null detaches. With no
  /// hook attached the slot path is the unfaulted pipeline, bit for bit.
  void attach_fault_hook(SlotFaultHook* hook) noexcept { fault_hook_ = hook; }
  [[nodiscard]] const SlotFaultHook* fault_hook() const noexcept { return fault_hook_; }

  /// Per-slot budget for a scheduler's certified optimality gap, in slot
  /// objective units. The Simulator sets this to the Theorem 1 drift bound B
  /// so that, under --validate, an approximate EMA solve whose certificate
  /// exceeds the slack the paper's analysis tolerates fails loudly.
  void set_certified_gap_budget(double budget) noexcept {
    validator_.set_gap_budget(budget);
  }

 private:
  InfoCollector collector_;
  std::unique_ptr<Scheduler> scheduler_;
  SchedulingMode mode_;
  DataReceiver receiver_;
  DataTransmitter transmitter_;
  SlotContext last_ctx_;
  Allocation last_alloc_;
  SlotOutcome last_outcome_;
  analysis::InvariantChecker validator_;
  SlotFaultHook* fault_hook_ = nullptr;  ///< degraded-cell seam (sim/fault.hpp)
  std::vector<RrcState> rrc_before_;  ///< per-slot RRC snapshot (tracing + validation)
};

}  // namespace jstream
