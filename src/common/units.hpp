// Unit conventions used across the library.
//
// The paper (Section VI, Eq. 24) expresses throughput in KB/s and power in
// mJ/KB, so the library adopts a single consistent system rather than strong
// wrapper types on every quantity:
//
//   data     : kilobytes (KB, decimal: 1 KB = 1000 bytes)
//   time     : seconds
//   rate     : KB/s
//   energy   : millijoules (mJ)
//   power    : milliwatts (mW == mJ/s)
//   signal   : dBm
//
// Helper functions make intent explicit at call sites and centralize the
// decimal conversions so they cannot silently diverge between modules.
#pragma once

namespace jstream {

/// Kilobytes per megabyte (decimal, matching the paper's MB figures).
inline constexpr double kKbPerMb = 1000.0;

/// Convert megabytes to kilobytes.
[[nodiscard]] constexpr double mb_to_kb(double mb) noexcept { return mb * kKbPerMb; }

/// Convert kilobytes to megabytes.
[[nodiscard]] constexpr double kb_to_mb(double kb) noexcept { return kb / kKbPerMb; }

/// Convert millijoules to joules.
[[nodiscard]] constexpr double mj_to_j(double mj) noexcept { return mj / 1000.0; }

/// Convert joules to millijoules.
[[nodiscard]] constexpr double j_to_mj(double j) noexcept { return j * 1000.0; }

/// Convert milliwatts to watts.
[[nodiscard]] constexpr double mw_to_w(double mw) noexcept { return mw / 1000.0; }

}  // namespace jstream
