// Unit conventions used across the library.
//
// The paper (Section VI, Eq. 24) expresses throughput in KB/s and power in
// mJ/KB, so the library adopts a single consistent system rather than strong
// wrapper types on every quantity:
//
//   data     : kilobytes (KB, decimal: 1 KB = 1000 bytes)
//   time     : seconds
//   rate     : KB/s
//   energy   : millijoules (mJ)
//   power    : milliwatts (mW == mJ/s)
//   signal   : dBm
//
// Helper functions make intent explicit at call sites and centralize the
// decimal conversions so they cannot silently diverge between modules.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace jstream {

// Index/size conversions. Unit counts are std::int64_t (paper quantities,
// may be compared/subtracted) while container indices are std::size_t; the
// boundary between the two is crossed through these helpers instead of raw
// static_casts so the sign/width assumptions are asserted in debug builds
// and grep-able in release ones ('static_cast<std::size_t>' scattered at
// call sites is exactly the -Wsign-conversion suppression pattern the
// clang-tidy narrowing checks exist to catch).

/// Non-negative count -> container size/index.
[[nodiscard]] constexpr std::size_t checked_size(std::int64_t value) noexcept {
  assert(value >= 0);
  return static_cast<std::size_t>(value);
}

/// Container size/index -> signed count (must fit; sizes in this library are
/// user populations and slot horizons, far below 2^63).
[[nodiscard]] constexpr std::int64_t checked_index(std::size_t value) noexcept {
  assert(value <= static_cast<std::size_t>(std::numeric_limits<std::int64_t>::max()));
  return static_cast<std::int64_t>(value);
}

/// Count/index -> std::int32_t (telemetry user ids, compact DP choice rows).
/// Asserts the value fits; populations and slot choices in this library are
/// bounded far below 2^31.
template <typename Int>
  requires std::is_integral_v<Int>
[[nodiscard]] constexpr std::int32_t checked_i32(Int value) noexcept {
  if constexpr (std::is_signed_v<Int>) {
    assert(static_cast<std::int64_t>(value) >=
               std::numeric_limits<std::int32_t>::min() &&
           static_cast<std::int64_t>(value) <=
               std::numeric_limits<std::int32_t>::max());
  } else {
    assert(static_cast<std::uint64_t>(value) <=
           static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max()));
  }
  return static_cast<std::int32_t>(value);
}

/// Explicit integral -> double at arithmetic boundaries (unit counts entering
/// paper formulas). Exact for |value| < 2^53, which every unit count in a
/// slot satisfies by the Eq. 2 capacity bound.
template <typename Int>
  requires std::is_integral_v<Int>
[[nodiscard]] constexpr double as_double(Int value) noexcept {
  return static_cast<double>(value);
}

/// floor(value) as a unit count — the paper's quantizations (Eq. 1 link
/// units, Eq. 2 capacity units) all floor a non-negative rate*time product.
[[nodiscard]] inline std::int64_t floor_to_count(double value) noexcept {
  assert(value >= 0.0 && value < 9.2e18);
  return static_cast<std::int64_t>(std::floor(value));
}

/// ceil(value) as a unit count (demand-side quantities: units needed to
/// carry a given number of kilobytes or sustain a bitrate).
[[nodiscard]] inline std::int64_t ceil_to_count(double value) noexcept {
  assert(value >= 0.0 && value < 9.2e18);
  return static_cast<std::int64_t>(std::ceil(value));
}

/// floor(value) as a container size/index: the double -> size_t hop in one
/// audited place (quantile positions, trace offsets).
[[nodiscard]] inline std::size_t floor_to_size(double value) noexcept {
  assert(value >= 0.0 && value < 9.2e18);
  return static_cast<std::size_t>(value);
}

/// Kilobytes per megabyte (decimal, matching the paper's MB figures).
inline constexpr double kKbPerMb = 1000.0;

/// Convert megabytes to kilobytes.
[[nodiscard]] constexpr double mb_to_kb(double mb) noexcept { return mb * kKbPerMb; }

/// Convert kilobytes to megabytes.
[[nodiscard]] constexpr double kb_to_mb(double kb) noexcept { return kb / kKbPerMb; }

/// Convert millijoules to joules.
[[nodiscard]] constexpr double mj_to_j(double mj) noexcept { return mj / 1000.0; }

/// Convert joules to millijoules.
[[nodiscard]] constexpr double j_to_mj(double j) noexcept { return j * 1000.0; }

/// Convert milliwatts to watts.
[[nodiscard]] constexpr double mw_to_w(double mw) noexcept { return mw / 1000.0; }

}  // namespace jstream
