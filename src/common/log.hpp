// Leveled logging for the simulator. Off by default so benchmark output stays
// clean; examples enable Info to narrate what the framework is doing.
#pragma once

#include <string>

namespace jstream {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level emitted (thread-safe).
void set_log_level(LogLevel level) noexcept;

/// Current global level.
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits `message` to stderr when `level` >= the global level.
void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace jstream
