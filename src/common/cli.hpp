// Small command-line flag parser shared by examples and bench binaries.
//
// Flags take the form `--name value` or `--name=value`; `--help` is handled
// by the caller via `help_requested()`. Unknown flags raise an error so typos
// in experiment invocations fail loudly instead of silently using defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace jstream {

/// Declarative flag set with typed accessors and default values.
class Cli {
 public:
  /// `program` and `description` are used in the help text.
  Cli(std::string program, std::string description);

  /// Declares a flag. Must be called before parse().
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Throws jstream::Error for unknown or malformed flags.
  void parse(int argc, const char* const* argv);

  /// True when `--help` was passed; callers should print help() and exit 0.
  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }

  /// Rendered help text.
  [[nodiscard]] std::string help() const;

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True when the user explicitly supplied the flag (vs. default).
  [[nodiscard]] bool provided(const std::string& name) const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparseable. Used for the global REPRO_SLOTS override.
[[nodiscard]] std::int64_t env_int(const std::string& name, std::int64_t fallback);

}  // namespace jstream
