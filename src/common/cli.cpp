#include "common/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace jstream {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  require(!name.empty() && name.rfind("--", 0) != 0,
          "flag names are declared without leading dashes: " + name);
  const auto [it, inserted] = flags_.emplace(name, Flag{default_value, help, {}});
  require(inserted, "duplicate flag: " + name);
  (void)it;
  order_.push_back(name);
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    require(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const auto flag_it = flags_.find(name);
      require(flag_it != flags_.end(), "unknown flag --" + name);
      const bool is_switch = flag_it->second.default_value == "true" ||
                             flag_it->second.default_value == "false";
      const bool next_is_flag =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) == 0;
      if (is_switch && (i + 1 >= argc || next_is_flag)) {
        value = "true";  // bare boolean switch: --report
      } else {
        require(i + 1 < argc, "missing value for flag --" + name);
        value = argv[++i];
      }
    }
    const auto it = flags_.find(name);
    require(it != flags_.end(), "unknown flag --" + name);
    it->second.value = value;
  }
}

std::string Cli::help() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    out << "  --" << name << " <value>   " << f.help << " (default: " << f.default_value
        << ")\n";
  }
  return out.str();
}

const Cli::Flag& Cli::find(const std::string& name) const {
  const auto it = flags_.find(name);
  require(it != flags_.end(), "flag not declared: " + name);
  return it->second;
}

std::string Cli::get_string(const std::string& name) const {
  const Flag& f = find(name);
  return f.value.value_or(f.default_value);
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string text = get_string(name);
  std::size_t pos = 0;
  std::int64_t result = 0;
  try {
    result = std::stoll(text, &pos);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects an integer, got: " + text);
  }
  require(pos == text.size(), "flag --" + name + " expects an integer, got: " + text);
  return result;
}

double Cli::get_double(const std::string& name) const {
  const std::string text = get_string(name);
  std::size_t pos = 0;
  double result = 0.0;
  try {
    result = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects a number, got: " + text);
  }
  require(pos == text.size(), "flag --" + name + " expects a number, got: " + text);
  return result;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string text = get_string(name);
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  throw Error("flag --" + name + " expects true/false, got: " + text);
}

bool Cli::provided(const std::string& name) const { return find(name).value.has_value(); }

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(raw, &pos);
    if (pos != std::string(raw).size()) return fallback;
    return value;
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace jstream
