// Minimal CSV writer/reader pair: the writer exports figure series from the
// benchmark harness; the reader loads them back (round-trip tests, report
// post-processing). Both speak RFC 4180 quoting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace jstream {

/// Writes rows of mixed string/numeric cells to a CSV file. Values containing
/// commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the cell count must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience overload formatting doubles with full round-trip precision.
  void row(const std::vector<double>& cells);

  /// Number of data rows written so far.
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t width_ = 0;
  std::size_t rows_ = 0;
};

/// Escapes a single CSV cell (exposed for testing).
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// A parsed CSV file: the header row plus data rows, all as strings.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws jstream::Error when absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Parses CSV text (RFC 4180: quoted cells may contain commas, quotes, and
/// newlines; CRLF and LF line endings both accepted). The first record is
/// the header; every data row must match its width. Throws jstream::Error on
/// malformed input.
[[nodiscard]] CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file; throws jstream::Error on I/O failure.
[[nodiscard]] CsvTable read_csv(const std::string& path);

}  // namespace jstream
