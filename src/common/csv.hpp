// Minimal CSV writer used by the benchmark harness to export figure series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace jstream {

/// Writes rows of mixed string/numeric cells to a CSV file. Values containing
/// commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the cell count must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience overload formatting doubles with full round-trip precision.
  void row(const std::vector<double>& cells);

  /// Number of data rows written so far.
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t width_ = 0;
  std::size_t rows_ = 0;
};

/// Escapes a single CSV cell (exposed for testing).
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace jstream
