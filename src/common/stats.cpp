#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

double percentile(std::span<const double> values, double q) {
  require(!values.empty(), "percentile of empty sample");
  require(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * as_double(sorted.size() - 1);
  const auto lo = floor_to_size(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - as_double(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  RunningStat rs;
  for (double v : sorted) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  auto pct = [&](double q) {
    const double pos = q * as_double(sorted.size() - 1);
    const auto lo = floor_to_size(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - as_double(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  };
  s.p50 = pct(0.5);
  s.p90 = pct(0.9);
  s.p99 = pct(0.99);
  return s;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t max_points) {
  require(max_points >= 2, "empirical_cdf needs at least 2 points");
  std::vector<CdfPoint> cdf;
  if (values.empty()) return cdf;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    // Evenly spaced ranks including both extremes.
    const std::size_t rank =
        (points == 1) ? n - 1 : (k * (n - 1)) / (points - 1);
    cdf.push_back({sorted[rank],
                   as_double(rank + 1) / as_double(n)});
  }
  return cdf;
}

double fraction_at_most(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  const auto hits = std::count_if(values.begin(), values.end(),
                                  [&](double v) { return v <= threshold; });
  return as_double(hits) / as_double(values.size());
}

double student_t_975(std::size_t df) {
  require(df >= 1, "student_t_975 needs at least one degree of freedom");
  // Exact two-sided 95% critical values for small samples, where the normal
  // approximation is badly anti-conservative (t_1 = 12.71 vs z = 1.96).
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df <= 30) return kTable[df - 1];
  // Cornish-Fisher expansion of the t quantile around the normal quantile z;
  // accurate to <1e-3 for df > 30 and monotone down toward z as df grows.
  constexpr double z = 1.959963984540054;
  const double n = as_double(df);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  return z + (z3 + z) / (4.0 * n) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n);
}

double jain_index(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (as_double(shares.size()) * sum_sq);
}

void RunningStat::add(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / as_double(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / as_double(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace jstream
