#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace jstream {

double percentile(std::span<const double> values, double q) {
  require(!values.empty(), "percentile of empty sample");
  require(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  RunningStat rs;
  for (double v : sorted) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  auto pct = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  };
  s.p50 = pct(0.5);
  s.p90 = pct(0.9);
  s.p99 = pct(0.99);
  return s;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t max_points) {
  require(max_points >= 2, "empirical_cdf needs at least 2 points");
  std::vector<CdfPoint> cdf;
  if (values.empty()) return cdf;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    // Evenly spaced ranks including both extremes.
    const std::size_t rank =
        (points == 1) ? n - 1 : (k * (n - 1)) / (points - 1);
    cdf.push_back({sorted[rank],
                   static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return cdf;
}

double fraction_at_most(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  const auto hits = std::count_if(values.begin(), values.end(),
                                  [&](double v) { return v <= threshold; });
  return static_cast<double>(hits) / static_cast<double>(values.size());
}

double jain_index(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

void RunningStat::add(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace jstream
