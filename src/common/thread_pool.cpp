#include "common/thread_pool.hpp"

#include <algorithm>

namespace jstream {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t parallel_chunk_count(const ThreadPool& pool, std::size_t count) noexcept {
  // A handful of chunks per worker keeps stragglers from serializing the tail
  // while bounding scheduling overhead to O(workers), not O(items).
  constexpr std::size_t kChunksPerWorker = 4;
  return std::min(count, std::max<std::size_t>(1, pool.size() * kChunksPerWorker));
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = parallel_chunk_count(pool, count);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    // Balanced partition: the first (count % chunks) chunks take one extra.
    const std::size_t begin = c * (count / chunks) + std::min(c, count % chunks);
    const std::size_t end =
        (c + 1) * (count / chunks) + std::min(c + 1, count % chunks);
    futures.push_back(pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace jstream
