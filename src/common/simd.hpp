// Portability shim for the SIMD-friendly hot paths (the EMA block DP in
// src/core/ema.cpp and the SoA slot snapshot in src/gateway/slot_context.hpp).
//
// The kernels themselves are written as plain, branch-light loops over
// contiguous arrays and rely on the compiler's autovectorizer — no intrinsics,
// so every target the toolchain supports keeps working. What this header pins
// down is the part the autovectorizer cannot supply on its own:
//
//   * `kSimdAlign`-aligned storage (`AlignedVec`) so the vectorizer can emit
//     aligned loads/stores and rows never straddle cache lines, and
//   * `JSTREAM_RESTRICT` so independent input/output streams are visibly
//     alias-free inside the kernels.
//
// The build adds target flags per translation unit (see src/core/CMakeLists:
// ema.cpp is compiled with wider vector units when the compiler supports
// them, always with FP contraction off — fused multiply-adds round
// differently and would silently break the bit-identity contract between the
// block solver, the deque solver, and the golden digests).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#if defined(_MSC_VER)
#define JSTREAM_RESTRICT __restrict
#elif defined(__GNUC__) || defined(__clang__)
#define JSTREAM_RESTRICT __restrict__
#else
#define JSTREAM_RESTRICT
#endif

namespace jstream::simd {

/// Alignment of every hot-path array: one cache line, and wide enough for
/// 512-bit vector loads should the build enable them.
inline constexpr std::size_t kSimdAlign = 64;

/// Minimal aligned allocator (C++17 aligned operator new). Deliberately tiny:
/// no fancy rebinding logic beyond what std::vector needs, so clang-tidy and
/// the counting-operator-new test binary both see plain `new`/`delete`.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t count) {
    if (count > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(::operator new(count * sizeof(T), std::align_val_t{kSimdAlign}));
  }

  void deallocate(T* ptr, std::size_t /*count*/) noexcept {
    ::operator delete(ptr, std::align_val_t{kSimdAlign});
  }

  template <typename U>
  [[nodiscard]] bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  [[nodiscard]] bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Contiguous cache-line-aligned array; drop-in std::vector replacement for
/// the SoA slot state and the DP rows. Grow-only usage keeps it off the
/// steady-state allocation path (pinned by tests/perf/test_zero_alloc_slot).
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace jstream::simd
