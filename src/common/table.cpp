#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace jstream {

std::string format_double(double value, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << value;
  return oss.str();
}

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  require(!header_.empty(), "table header must not be empty");
}

void Table::row(const std::vector<std::string>& cells) {
  require(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(cells);
}

void Table::row(const std::string& label, const std::vector<double>& values,
                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  row(cells);
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out << "  ";
      out << cells[i];
      for (std::size_t pad = cells[i].size(); pad < widths[i]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

}  // namespace jstream
