// Non-cryptographic 64-bit content hashing for on-disk artifacts.
//
// The persistent trace tier (docs/PERFORMANCE.md) checksums every payload it
// writes and re-verifies on load, so a truncated or bit-flipped file is
// rejected and regenerated instead of feeding a corrupted channel matrix into
// a campaign. The hash is the XXH64 construction (Yann Collet's xxHash,
// public domain): 4-lane striped multiply-rotate over 32-byte blocks with an
// avalanche finalizer — quality and speed far beyond FNV at the multi-MB
// payload sizes a trace set reaches, while staying ~40 lines of dependency-
// free C++. Stable across platforms: input is consumed as little-endian
// 64/32-bit words, so a file checksummed on one machine verifies on another.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace jstream {

namespace hash_detail {

inline constexpr std::uint64_t kXxPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr std::uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kXxPrime3 = 0x165667B19E3779F9ULL;
inline constexpr std::uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr std::uint64_t kXxPrime5 = 0x27D4EB2F165667C5ULL;

/// Unaligned little-endian loads. This library only targets little-endian
/// hosts (the trace-file header pins an endianness tag precisely so a
/// big-endian build would reject the file instead of mis-reading it), so a
/// memcpy load IS the little-endian read.
inline std::uint64_t load64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t load32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input) noexcept {
  acc += input * kXxPrime2;
  acc = std::rotl(acc, 31);
  return acc * kXxPrime1;
}

inline std::uint64_t xx_merge_round(std::uint64_t acc, std::uint64_t val) noexcept {
  acc ^= xx_round(0, val);
  return acc * kXxPrime1 + kXxPrime4;
}

}  // namespace hash_detail

/// XXH64 of `len` bytes at `data` under `seed`. One-shot; the trace tier
/// hashes whole mapped payloads, so no streaming state is needed.
[[nodiscard]] inline std::uint64_t xxh64(const void* data, std::size_t len,
                                         std::uint64_t seed = 0) noexcept {
  using namespace hash_detail;
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h = 0;

  if (len >= 32) {
    std::uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
    std::uint64_t v2 = seed + kXxPrime2;
    std::uint64_t v3 = seed + 0;
    std::uint64_t v4 = seed - kXxPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = xx_round(v1, load64(p));
      v2 = xx_round(v2, load64(p + 8));
      v3 = xx_round(v3, load64(p + 16));
      v4 = xx_round(v4, load64(p + 24));
      p += 32;
    } while (p <= limit);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) + std::rotl(v4, 18);
    h = xx_merge_round(h, v1);
    h = xx_merge_round(h, v2);
    h = xx_merge_round(h, v3);
    h = xx_merge_round(h, v4);
  } else {
    h = seed + kXxPrime5;
  }

  h += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    h ^= xx_round(0, load64(p));
    h = std::rotl(h, 27) * kXxPrime1 + kXxPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= load32(p) * kXxPrime1;
    h = std::rotl(h, 23) * kXxPrime2 + kXxPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kXxPrime5;
    h = std::rotl(h, 11) * kXxPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace jstream
