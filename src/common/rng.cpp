#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include "common/units.hpp"

namespace jstream {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return as_double(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // jstream-lint: allow(checked-narrowing) -- intentional two's-complement
  // reinterpretation: a uniform u64 viewed as i64 IS the full-range draw.
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  // jstream-lint: allow(checked-narrowing) -- next_u64() % span < span, and
  // span = hi - lo + 1 fits in u64 while lo + (span - 1) == hi fits in i64.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Mix the parent's state with the stream index through SplitMix64 so sibling
  // streams are decorrelated regardless of how many values the parent drew.
  std::uint64_t mix = state_[0] ^ rotl(state_[3], 13) ^ (stream * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(mix));
}

}  // namespace jstream
