#include "common/csv.hpp"

#include <sstream>

#include "common/error.hpp"

namespace jstream {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  require(out_.good(), "cannot open CSV file for writing: " + path);
  require(!header.empty(), "CSV header must not be empty");
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  require(cells.size() == width_, "CSV row width mismatch");
  write_row(cells);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    text.push_back(oss.str());
  }
  row(text);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  require(out_.good(), "CSV write failed");
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw Error("CSV column not found: " + name);
}

CsvTable parse_csv(const std::string& text) {
  // Record-splitting state machine: quotes toggle on unescaped '"', cells
  // split on ',' and records on newline only outside quotes.
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  bool record_has_content = false;

  const auto end_cell = [&] {
    record.push_back(cell);
    cell.clear();
    cell_was_quoted = false;
  };
  const auto end_record = [&] {
    end_cell();
    records.push_back(std::move(record));
    record.clear();
    record_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        require(cell.empty() && !cell_was_quoted,
                "CSV quote may only open at the start of a cell");
        in_quotes = true;
        cell_was_quoted = true;
        record_has_content = true;
        break;
      case ',':
        end_cell();
        record_has_content = true;
        break;
      case '\r':
        break;  // CRLF: the '\n' closes the record
      case '\n':
        // A trailing newline after the last record is not an empty record.
        if (record_has_content || !record.empty() || !cell.empty()) end_record();
        break;
      default:
        cell += c;
        record_has_content = true;
    }
  }
  require(!in_quotes, "CSV ends inside a quoted cell");
  if (record_has_content || !record.empty() || !cell.empty()) end_record();

  CsvTable table;
  require(!records.empty(), "CSV has no header row");
  table.header = std::move(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    require(records[r].size() == table.header.size(),
            "CSV row " + std::to_string(r) + " width differs from header");
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open CSV file for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  require(!in.bad(), "CSV read failed: " + path);
  return parse_csv(buffer.str());
}

}  // namespace jstream
