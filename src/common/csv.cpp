#include "common/csv.hpp"

#include <sstream>

#include "common/error.hpp"

namespace jstream {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  require(out_.good(), "cannot open CSV file for writing: " + path);
  require(!header.empty(), "CSV header must not be empty");
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  require(cells.size() == width_, "CSV row width mismatch");
  write_row(cells);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    text.push_back(oss.str());
  }
  row(text);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  require(out_.good(), "CSV write failed");
}

}  // namespace jstream
