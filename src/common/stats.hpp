// Descriptive statistics and empirical CDFs for metric post-processing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>
#include "common/units.hpp"

namespace jstream {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary of `values`; returns a zeroed Summary for empty input.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile, q in [0, 1]. Throws on empty input or
/// out-of-range q.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  ///< P(X <= value)
};

/// Empirical CDF of a sample, downsampled to at most `max_points` points
/// (always keeping the extremes). Suitable for printing figure series.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                                  std::size_t max_points = 100);

/// Fraction of samples <= threshold.
[[nodiscard]] double fraction_at_most(std::span<const double> values, double threshold);

/// Two-sided 95% Student-t critical value t_{0.975, df} for a mean
/// confidence interval with `df` degrees of freedom. Exact table values for
/// df <= 30, the Cornish-Fisher expansion above that (converging to the
/// normal 1.96 as df grows). Throws on df == 0 (no interval exists).
[[nodiscard]] double student_t_975(std::size_t df);

/// Jain fairness index of non-negative shares: (sum x)^2 / (n * sum x^2).
/// Returns 1.0 for an empty or all-zero sample (perfectly equal shares).
[[nodiscard]] double jain_index(std::span<const double> shares);

/// Running mean/variance accumulator (Welford) for streaming per-slot metrics.
class RunningStat {
 public:
  /// Adds one observation.
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1); zero with fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * as_double(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace jstream
