// Deterministic pseudo-random number generation.
//
// Simulations must be exactly reproducible from a seed, including when
// configurations run concurrently on the sweep thread pool, so the library
// owns its generator (xoshiro256**) instead of relying on implementation-
// defined std::random distributions. Every simulated user derives an
// independent stream from the scenario seed via `split`.
#pragma once

#include <array>
#include <cstdint>

namespace jstream {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded through SplitMix64 so any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (caches the second deviate).
  [[nodiscard]] double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) noexcept;

  /// Derives an independent generator; `stream` distinguishes siblings
  /// produced from the same parent (e.g. one stream per user).
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace jstream
