// Aligned ASCII tables for the experiment harness output. Every bench binary
// prints its figure's series through this renderer so rows are directly
// comparable with the paper's plots.
#pragma once

#include <string>
#include <vector>

namespace jstream {

/// Column-aligned text table with a title and header row.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Appends a row of preformatted cells; width must match the header.
  void row(const std::vector<std::string>& cells);

  /// Appends a row whose first cell is a label and the rest are numbers
  /// formatted with `precision` fractional digits.
  void row(const std::string& label, const std::vector<double>& values,
           int precision = 3);

  /// Renders the table with a rule under the header.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by bench binaries).
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace jstream
