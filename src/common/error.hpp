// Library-wide error type and precondition helpers.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace jstream {

/// Thrown on violated preconditions or invalid configuration.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws jstream::Error when `condition` is false. Used for argument and
/// configuration validation on public entry points (internal invariants use
/// assert-style checks in tests instead).
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " +
                message);
  }
}

/// Literal-message overload: defers all string construction to the failure
/// branch, so checks on per-slot hot paths cost a branch and never allocate.
/// (The std::string overload above materializes its message argument even
/// when the condition holds.)
inline void require(bool condition, const char* message,
                    std::source_location loc = std::source_location::current()) {
  if (condition) return;
  throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " +
              message);
}

}  // namespace jstream
