// Fixed-size worker pool used to run independent simulation configurations
// concurrently (parameter sweeps, replicated seeds). Tasks are type-erased
// thunks; results flow back through futures or the parallel_for helper.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace jstream {

/// A minimal task-queue thread pool. Safe to submit from multiple threads;
/// destruction drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 selects std::thread::hardware_concurrency()
  /// (at least one worker in either case).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Number of chunks parallel_for/parallel_map split `count` items into: a
/// few chunks per worker (load balance) but never more than `count`.
[[nodiscard]] std::size_t parallel_chunk_count(const ThreadPool& pool,
                                               std::size_t count) noexcept;

/// Runs fn(i) for i in [0, count) on `pool`, blocking until all complete.
/// Indices are processed in contiguous chunks — one pool task per chunk, not
/// per index — so sweeps over thousands of configurations pay O(workers)
/// scheduling overhead. Iterations must therefore not synchronize with each
/// other (two indices may share a chunk and run sequentially). Exceptions
/// from tasks are rethrown (the first one encountered); an exception skips
/// the rest of its chunk.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Maps fn over [0, count) and collects results in index order. Chunked like
/// parallel_for (one pool task per chunk); the same no-cross-index
/// synchronization rule applies.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using Result = std::invoke_result_t<Fn, std::size_t>;
  if (count == 0) return {};
  const std::size_t chunks = parallel_chunk_count(pool, count);
  std::vector<std::future<std::vector<Result>>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * (count / chunks) + std::min(c, count % chunks);
    const std::size_t end =
        (c + 1) * (count / chunks) + std::min(c + 1, count % chunks);
    futures.push_back(pool.submit([fn, begin, end] {
      std::vector<Result> chunk;
      chunk.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) chunk.push_back(fn(i));
      return chunk;
    }));
  }
  std::vector<Result> results;
  results.reserve(count);
  for (auto& f : futures) {
    std::vector<Result> chunk = f.get();
    for (auto& value : chunk) results.push_back(std::move(value));
  }
  return results;
}

}  // namespace jstream
