// Fixed-size worker pool used to run independent simulation configurations
// concurrently (parameter sweeps, replicated seeds). Tasks are type-erased
// thunks; results flow back through futures or the parallel_for helper.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace jstream {

/// A minimal task-queue thread pool. Safe to submit from multiple threads;
/// destruction drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 selects std::thread::hardware_concurrency()
  /// (at least one worker in either case).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) on `pool`, blocking until all complete.
/// Exceptions from tasks are rethrown (the first one encountered).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Maps fn over [0, count) and collects results in index order.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using Result = std::invoke_result_t<Fn, std::size_t>;
  std::vector<std::future<Result>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([fn, i] { return fn(i); }));
  }
  std::vector<Result> results;
  results.reserve(count);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace jstream
