#include "abr/client.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

std::int64_t segment_count(double duration_s, double segment_s) {
  return ceil_to_count(duration_s / segment_s);
}

}  // namespace

AbrClient::AbrClient(double duration_s, double segment_s, QualityLadder ladder,
                     std::unique_ptr<QualitySelector> selector, double tau_s)
    : duration_s_(duration_s),
      segment_s_(segment_s),
      ladder_(std::move(ladder)),
      selector_(std::move(selector)),
      buffer_(duration_s, tau_s),
      total_segments_(segment_count(duration_s, segment_s)) {
  require(duration_s_ > 0.0, "content duration must be positive");
  require(segment_s_ > 0.0, "segment duration must be positive");
  require(selector_ != nullptr, "client needs a quality selector");
}

double AbrClient::current_rate_kbps() const {
  return ladder_.rate_kbps(current_level_);
}

double AbrClient::segment_remaining_kb() const {
  if (download_finished()) return 0.0;
  const double seg_duration =
      std::min(segment_s_, duration_s_ - as_double(segment_index_) * segment_s_);
  return seg_duration * current_rate_kbps() - segment_downloaded_kb_;
}

double AbrClient::estimated_remaining_kb() const {
  if (download_finished()) return 0.0;
  const double future_s =
      duration_s_ - as_double(segment_index_ + 1) * segment_s_;
  return segment_remaining_kb() +
         std::max(future_s, 0.0) * current_rate_kbps();
}

bool AbrClient::download_finished() const noexcept {
  return segment_index_ >= total_segments_;
}

void AbrClient::start_next_segment(double smoothed_throughput_kbps) {
  AbrDecisionInput input;
  input.buffer_s = buffer_.occupancy_s();
  input.last_level = current_level_;
  input.throughput_kbps = smoothed_throughput_kbps;
  const std::size_t chosen = selector_->select(input, ladder_);
  require(chosen < ladder_.levels(), "selector returned an unknown level");
  if (first_segment_started_ && chosen != current_level_) ++qoe_.switches;
  current_level_ = chosen;
  first_segment_started_ = true;
  segment_downloaded_kb_ = 0.0;
}

double AbrClient::on_downloaded(double kb, double smoothed_throughput_kbps) {
  require(kb >= 0.0, "download amount must be non-negative");
  double left = kb;
  while (left > 0.0 && !download_finished()) {
    if (segment_downloaded_kb_ == 0.0 && !first_segment_started_) {
      start_next_segment(smoothed_throughput_kbps);
    }
    const double seg_duration = std::min(
        segment_s_, duration_s_ - as_double(segment_index_) * segment_s_);
    const double seg_total_kb = seg_duration * current_rate_kbps();
    const double missing = seg_total_kb - segment_downloaded_kb_;
    const double take = std::min(left, missing);
    segment_downloaded_kb_ += take;
    left -= take;
    if (segment_downloaded_kb_ >= seg_total_kb - 1e-9) {
      // Segment complete: it becomes playable and scores its quality.
      buffer_.deliver(seg_duration);
      qoe_.quality_seconds_kbps += seg_duration * current_rate_kbps();
      ++segment_index_;
      if (!download_finished()) start_next_segment(smoothed_throughput_kbps);
    }
  }
  return kb - left;
}

void AbrClient::begin_slot() { buffer_.begin_slot(); }

void AbrClient::end_slot() { buffer_.end_slot(); }

void AbrClient::record_rebuffer() { qoe_.rebuffer_s += buffer_.rebuffer_s(); }

}  // namespace jstream
