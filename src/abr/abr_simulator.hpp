// ABR simulation: the gateway substrate (signal, link, RRC, capacity, the
// Scheduler interface) reused with segmented adaptive-bitrate clients instead
// of fixed-rate sessions. Any jstream::Scheduler can serve ABR traffic — the
// cross-layer snapshot simply reports the rate of the representation each
// client is currently downloading.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "abr/client.hpp"
#include "gateway/scheduler.hpp"
#include "sim/scenario.hpp"

namespace jstream {

/// ABR-specific scenario knobs layered on a base ScenarioConfig (whose video
/// size fields are ignored — content is defined by duration and the ladder).
struct AbrScenarioConfig {
  ScenarioConfig base;                   ///< radio/link/capacity/users/seed
  double duration_min_s = 400.0;         ///< content duration range (uniform)
  double duration_max_s = 900.0;
  double segment_s = 4.0;                ///< DASH-style segment length
  std::vector<double> ladder_kbps{300.0, 375.0, 450.0, 525.0, 600.0};
  std::string selector = "buffer-based"; ///< quality policy for every client
  double throughput_ewma_alpha = 0.2;    ///< download-rate estimator smoothing
};

/// Per-user ABR results.
struct AbrUserResult {
  AbrQoe qoe;
  double duration_s = 0.0;
  double trans_mj = 0.0;
  double tail_mj = 0.0;
  bool playback_finished = false;
};

/// Run-level ABR results.
struct AbrRunMetrics {
  std::vector<AbrUserResult> per_user;
  std::int64_t slots_run = 0;

  [[nodiscard]] double mean_quality_kbps() const;
  [[nodiscard]] double mean_rebuffer_s() const;     ///< per user, totals
  [[nodiscard]] double mean_switches() const;
  [[nodiscard]] double mean_qoe_score() const;
  [[nodiscard]] double total_energy_mj() const;
  [[nodiscard]] double completion_rate() const;
};

/// Runs `scheduler` over the ABR scenario (deterministic per base.seed).
[[nodiscard]] AbrRunMetrics simulate_abr(const AbrScenarioConfig& config,
                                         std::unique_ptr<Scheduler> scheduler);

}  // namespace jstream
