// Per-segment quality selection policies.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "abr/ladder.hpp"

namespace jstream {

/// Everything a selector may look at when the next segment starts.
struct AbrDecisionInput {
  double buffer_s = 0.0;           ///< client buffer occupancy
  std::size_t last_level = 0;      ///< previous segment's level
  double throughput_kbps = 0.0;    ///< smoothed recent download rate estimate
};

/// Chooses the representation level for the next segment.
class QualitySelector {
 public:
  virtual ~QualitySelector() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t select(const AbrDecisionInput& input,
                                           const QualityLadder& ladder) = 0;
};

/// Always the same level (the paper's CBR setting as a ladder policy).
class FixedQualitySelector final : public QualitySelector {
 public:
  explicit FixedQualitySelector(std::size_t level);
  [[nodiscard]] std::string name() const override { return "fixed"; }
  [[nodiscard]] std::size_t select(const AbrDecisionInput& input,
                                   const QualityLadder& ladder) override;

 private:
  std::size_t level_;
};

/// Buffer-based adaptation (BBA-style): the level is a linear map of the
/// buffer occupancy between a reservoir and a cushion.
class BufferBasedSelector final : public QualitySelector {
 public:
  /// Below `reservoir_s` -> lowest level; above `cushion_s` -> highest;
  /// linear in between.
  BufferBasedSelector(double reservoir_s = 8.0, double cushion_s = 40.0);
  [[nodiscard]] std::string name() const override { return "buffer-based"; }
  [[nodiscard]] std::size_t select(const AbrDecisionInput& input,
                                   const QualityLadder& ladder) override;

 private:
  double reservoir_s_;
  double cushion_s_;
};

/// Rate-based adaptation: pick the highest level sustainable at a safety
/// fraction of the estimated throughput.
class RateBasedSelector final : public QualitySelector {
 public:
  explicit RateBasedSelector(double safety_factor = 0.8);
  [[nodiscard]] std::string name() const override { return "rate-based"; }
  [[nodiscard]] std::size_t select(const AbrDecisionInput& input,
                                   const QualityLadder& ladder) override;

 private:
  double safety_factor_;
};

/// Factory: "fixed" (lowest level), "buffer-based", "rate-based".
[[nodiscard]] std::unique_ptr<QualitySelector> make_quality_selector(
    const std::string& name);

}  // namespace jstream
