#include "abr/policies.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

FixedQualitySelector::FixedQualitySelector(std::size_t level) : level_(level) {}

std::size_t FixedQualitySelector::select(const AbrDecisionInput& /*input*/,
                                         const QualityLadder& ladder) {
  return std::min(level_, ladder.levels() - 1);
}

BufferBasedSelector::BufferBasedSelector(double reservoir_s, double cushion_s)
    : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {
  require(reservoir_s_ >= 0.0, "reservoir must be non-negative");
  require(cushion_s_ > reservoir_s_, "cushion must exceed the reservoir");
}

std::size_t BufferBasedSelector::select(const AbrDecisionInput& input,
                                        const QualityLadder& ladder) {
  if (input.buffer_s <= reservoir_s_) return 0;
  if (input.buffer_s >= cushion_s_) return ladder.levels() - 1;
  const double fraction =
      (input.buffer_s - reservoir_s_) / (cushion_s_ - reservoir_s_);
  const auto level = floor_to_size(
      std::floor(fraction * as_double(ladder.levels() - 1) + 0.5));
  return std::min(level, ladder.levels() - 1);
}

RateBasedSelector::RateBasedSelector(double safety_factor)
    : safety_factor_(safety_factor) {
  require(safety_factor_ > 0.0 && safety_factor_ <= 1.0,
          "safety factor must be in (0,1]");
}

std::size_t RateBasedSelector::select(const AbrDecisionInput& input,
                                      const QualityLadder& ladder) {
  return ladder.level_for_rate(safety_factor_ * input.throughput_kbps);
}

std::unique_ptr<QualitySelector> make_quality_selector(const std::string& name) {
  if (name == "fixed") return std::make_unique<FixedQualitySelector>(0);
  if (name == "buffer-based") return std::make_unique<BufferBasedSelector>();
  if (name == "rate-based") return std::make_unique<RateBasedSelector>();
  throw Error("unknown quality selector: " + name);
}

}  // namespace jstream
