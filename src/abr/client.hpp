// ABR client state: a segmented session, its playback buffer, and the QoE
// bookkeeping (mean quality, switches, rebuffering).
//
// A segment becomes playable only when fully downloaded (the segmented
// analogue of the paper's "data shard usable when fully accepted"). Quality
// for a segment is chosen by the QualitySelector the moment its download
// begins.
#pragma once

#include <cstdint>
#include <memory>

#include "abr/ladder.hpp"
#include "abr/policies.hpp"
#include "media/playback_buffer.hpp"
#include "common/units.hpp"

namespace jstream {

/// QoE accumulators of one ABR session.
struct AbrQoe {
  double quality_seconds_kbps = 0.0;  ///< integral of played quality rate
  std::int64_t switches = 0;          ///< quality changes between segments
  double rebuffer_s = 0.0;

  /// Mean representation rate over the content duration.
  [[nodiscard]] double mean_quality_kbps(double duration_s) const {
    return duration_s > 0.0 ? quality_seconds_kbps / duration_s : 0.0;
  }

  /// A standard linear QoE score: mean quality minus penalties.
  [[nodiscard]] double score(double duration_s, double rebuffer_penalty_kbps = 600.0,
                             double switch_penalty_kbps = 30.0) const {
    return mean_quality_kbps(duration_s) -
           rebuffer_penalty_kbps * (duration_s > 0.0 ? rebuffer_s / duration_s : 0.0) -
           switch_penalty_kbps *
               (duration_s > 0.0 ? as_double(switches) / duration_s : 0.0);
  }
};

/// One streaming client downloading a segmented title.
class AbrClient {
 public:
  /// `duration_s` total content time, split into `segment_s`-long segments
  /// (the last may be shorter). The selector is owned by the client.
  AbrClient(double duration_s, double segment_s, QualityLadder ladder,
            std::unique_ptr<QualitySelector> selector, double tau_s);

  /// Bitrate of the segment currently downloading, KB/s (what the gateway
  /// needs to sustain).
  [[nodiscard]] double current_rate_kbps() const;

  /// Bytes still missing from the current segment, KB (0 once the session is
  /// fully downloaded).
  [[nodiscard]] double segment_remaining_kb() const;

  /// Total bytes still to download at current quality decisions (the current
  /// segment's remainder plus future segments estimated at the current
  /// level).
  [[nodiscard]] double estimated_remaining_kb() const;

  /// Feeds `kb` of downloaded data (must be called inside a slot). Completed
  /// segments enter the playback buffer; a new segment's quality is selected
  /// when its download begins. Returns the KB actually consumed (delivery
  /// beyond the last segment is rejected by the cap, so this equals `kb`).
  double on_downloaded(double kb, double smoothed_throughput_kbps);

  /// Slot protocol, mirroring PlaybackBuffer.
  void begin_slot();
  void end_slot();

  [[nodiscard]] const PlaybackBuffer& buffer() const noexcept { return buffer_; }
  [[nodiscard]] PlaybackBuffer& buffer() noexcept { return buffer_; }
  [[nodiscard]] const AbrQoe& qoe() const noexcept { return qoe_; }
  [[nodiscard]] double duration_s() const noexcept { return duration_s_; }
  [[nodiscard]] bool download_finished() const noexcept;
  [[nodiscard]] bool playback_finished() const noexcept {
    return buffer_.playback_finished();
  }
  [[nodiscard]] std::size_t current_level() const noexcept { return current_level_; }

  /// Accumulates this slot's rebuffering into the QoE (call once per slot,
  /// between begin_slot and end_slot).
  void record_rebuffer();

 private:
  void start_next_segment(double smoothed_throughput_kbps);

  double duration_s_;
  double segment_s_;
  QualityLadder ladder_;
  std::unique_ptr<QualitySelector> selector_;
  PlaybackBuffer buffer_;
  AbrQoe qoe_;

  std::int64_t segment_index_ = 0;     ///< segment currently downloading
  std::int64_t total_segments_ = 0;
  double segment_downloaded_kb_ = 0.0;
  std::size_t current_level_ = 0;
  bool first_segment_started_ = false;
};

}  // namespace jstream
