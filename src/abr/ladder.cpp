#include "abr/ladder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace jstream {

QualityLadder::QualityLadder(std::vector<double> rates_kbps)
    : rates_kbps_(std::move(rates_kbps)) {
  require(!rates_kbps_.empty(), "ladder needs at least one level");
  require(rates_kbps_.front() > 0.0, "ladder rates must be positive");
  require(std::is_sorted(rates_kbps_.begin(), rates_kbps_.end()) &&
              std::adjacent_find(rates_kbps_.begin(), rates_kbps_.end()) ==
                  rates_kbps_.end(),
          "ladder rates must be strictly increasing");
}

double QualityLadder::rate_kbps(std::size_t level) const {
  require(level < rates_kbps_.size(), "unknown ladder level");
  return rates_kbps_[level];
}

std::size_t QualityLadder::level_for_rate(double rate_kbps) const noexcept {
  std::size_t level = 0;
  for (std::size_t k = 0; k < rates_kbps_.size(); ++k) {
    if (rates_kbps_[k] <= rate_kbps) level = k;
  }
  return level;
}

QualityLadder paper_range_ladder() {
  return QualityLadder({300.0, 375.0, 450.0, 525.0, 600.0});
}

}  // namespace jstream
