#include "abr/abr_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "common/rng.hpp"
#include "net/base_station.hpp"
#include "radio/rrc.hpp"

namespace jstream {
namespace {

struct AbrUser {
  std::unique_ptr<SignalModel> signal;
  std::unique_ptr<AbrClient> client;
  RrcStateMachine rrc;
  double throughput_estimate_kbps = 0.0;

  AbrUser(std::unique_ptr<SignalModel> signal_model, std::unique_ptr<AbrClient> c,
          RadioProfile radio)
      : signal(std::move(signal_model)), client(std::move(c)), rrc(radio) {}
};

}  // namespace

double AbrRunMetrics::mean_quality_kbps() const {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& user : per_user) {
    sum += user.qoe.mean_quality_kbps(user.duration_s);
  }
  return sum / as_double(per_user.size());
}

double AbrRunMetrics::mean_rebuffer_s() const {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& user : per_user) sum += user.qoe.rebuffer_s;
  return sum / as_double(per_user.size());
}

double AbrRunMetrics::mean_switches() const {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& user : per_user) {
    sum += as_double(user.qoe.switches);
  }
  return sum / as_double(per_user.size());
}

double AbrRunMetrics::mean_qoe_score() const {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& user : per_user) sum += user.qoe.score(user.duration_s);
  return sum / as_double(per_user.size());
}

double AbrRunMetrics::total_energy_mj() const {
  double sum = 0.0;
  for (const auto& user : per_user) sum += user.trans_mj + user.tail_mj;
  return sum;
}

double AbrRunMetrics::completion_rate() const {
  if (per_user.empty()) return 0.0;
  const auto done =
      std::count_if(per_user.begin(), per_user.end(),
                    [](const AbrUserResult& u) { return u.playback_finished; });
  return as_double(done) / as_double(per_user.size());
}

AbrRunMetrics simulate_abr(const AbrScenarioConfig& config,
                           std::unique_ptr<Scheduler> scheduler) {
  validate(config.base);
  require(scheduler != nullptr, "ABR simulation needs a scheduler");
  require(config.duration_min_s > 0.0 &&
              config.duration_min_s <= config.duration_max_s,
          "content duration range is invalid");
  require(config.segment_s > 0.0, "segment length must be positive");
  require(config.throughput_ewma_alpha > 0.0 && config.throughput_ewma_alpha <= 1.0,
          "EWMA alpha must be in (0,1]");
  const QualityLadder ladder(config.ladder_kbps);

  // Population: same deterministic split-stream construction as the CBR
  // scenario builder, with durations instead of sizes.
  const ScenarioConfig& base = config.base;
  // jstream-lint: allow(rng-discipline) -- ABR scenario root stream,
  // mirroring build_endpoints' seeding so both builders stay comparable.
  const Rng scenario_rng(base.seed);
  std::vector<AbrUser> users;
  users.reserve(base.users);
  std::vector<UserEndpoint> signal_source = build_endpoints(base);
  for (std::size_t i = 0; i < base.users; ++i) {
    Rng user_rng = scenario_rng.split(i ^ 0xabc0ULL);
    const double duration =
        user_rng.uniform(config.duration_min_s, config.duration_max_s);
    auto client = std::make_unique<AbrClient>(
        duration, config.segment_s, ladder,
        make_quality_selector(config.selector), base.slot.tau_s);
    users.emplace_back(std::move(signal_source[i].signal), std::move(client),
                       base.radio);
  }

  const BaseStation bs(capacity_profile(base));
  scheduler->reset(base.users);

  AbrRunMetrics metrics;
  metrics.per_user.resize(base.users);
  const std::int64_t tail_flush =
      ceil_to_count(base.radio.tail_duration_s() / base.slot.tau_s) + 1;
  std::int64_t idle_streak = 0;

  for (std::int64_t slot = 0; slot < base.max_slots; ++slot) {
    ++metrics.slots_run;
    for (auto& user : users) user.client->begin_slot();

    // Cross-layer snapshot: the "required rate" is the representation the
    // client is downloading right now.
    SlotContext ctx;
    ctx.slot = slot;
    ctx.params = base.slot;
    ctx.capacity_units = bs.capacity_units(slot, base.slot);
    ctx.throughput = base.link.throughput.get();
    ctx.power = base.link.power.get();
    ctx.radio = &base.radio;
    for (auto& user : users) {
      UserSlotInfo info;
      info.signal_dbm = user.signal->signal_dbm(slot);
      info.bitrate_kbps = user.client->current_rate_kbps();
      info.throughput_kbps = base.link.throughput->throughput_kbps(info.signal_dbm);
      info.energy_per_kb = base.link.power->energy_per_kb(info.signal_dbm);
      info.remaining_kb = user.client->estimated_remaining_kb();
      info.needs_data = info.remaining_kb > 0.0;
      info.link_units = base.slot.link_units(info.throughput_kbps);
      const std::int64_t remaining_units =
          ceil_to_count(info.remaining_kb / base.slot.delta_kb);
      info.alloc_cap_units =
          std::max<std::int64_t>(0, std::min(info.link_units, remaining_units));
      info.buffer_s = user.client->buffer().occupancy_s();
      info.elapsed_play_s = user.client->buffer().elapsed_s();
      info.total_play_s = user.client->buffer().total_s();
      info.rrc_idle_s = user.rrc.idle_time_s();
      info.rrc_promoted = !user.rrc.never_transmitted();
      info.playback_done = user.client->playback_finished();
      ctx.users.push_back(info);
    }
    ctx.finalize();

    const Allocation alloc = scheduler->allocate(ctx);
    std::vector<std::int64_t> caps;
    for (const auto& info : ctx.users) caps.push_back(info.alloc_cap_units);
    require_feasible(alloc, caps, ctx.capacity_units);

    for (std::size_t i = 0; i < users.size(); ++i) {
      AbrUser& user = users[i];
      AbrUserResult& out = metrics.per_user[i];
      if (!user.client->playback_finished()) user.client->record_rebuffer();
      double kb = 0.0;
      if (alloc.units[i] > 0) {
        kb = std::min(base.slot.units_to_kb(alloc.units[i]),
                      ctx.users[i].remaining_kb);
        kb = user.client->on_downloaded(kb, user.throughput_estimate_kbps);
        out.trans_mj += ctx.power->energy_per_kb(ctx.users[i].signal_dbm) * kb;
        const double rate = kb / base.slot.tau_s;
        user.throughput_estimate_kbps =
            user.throughput_estimate_kbps == 0.0
                ? rate
                : (1.0 - config.throughput_ewma_alpha) * user.throughput_estimate_kbps +
                      config.throughput_ewma_alpha * rate;
      }
      const double active_s =
          kb > 0.0 ? std::min(kb / base.link.throughput->throughput_kbps(
                                       ctx.users[i].signal_dbm),
                              base.slot.tau_s)
                   : 0.0;
      out.tail_mj += user.rrc.advance_slot(active_s, base.slot.tau_s);
      user.client->end_slot();
    }

    if (!base.early_stop) continue;
    const bool all_done =
        std::all_of(users.begin(), users.end(), [](const AbrUser& user) {
          return user.client->download_finished() &&
                 user.client->playback_finished();
        });
    idle_streak = all_done ? idle_streak + 1 : 0;
    if (idle_streak >= tail_flush) break;
  }

  for (std::size_t i = 0; i < users.size(); ++i) {
    metrics.per_user[i].qoe = users[i].client->qoe();
    metrics.per_user[i].duration_s = users[i].client->duration_s();
    metrics.per_user[i].playback_finished = users[i].client->playback_finished();
  }
  return metrics;
}

}  // namespace jstream
