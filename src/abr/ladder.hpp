// Adaptive-bitrate quality ladders.
//
// The paper streams fixed-rate content; modern services encode each title at
// several bitrates and let the client switch per segment (DASH/HLS). This
// extension models that: a ladder is an ascending list of representation
// rates, and a session downloads one representation per fixed-length segment.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace jstream {

/// Ascending representation bitrates of one title, KB/s.
class QualityLadder {
 public:
  /// `rates_kbps` must be non-empty and strictly increasing.
  explicit QualityLadder(std::vector<double> rates_kbps);

  [[nodiscard]] std::size_t levels() const noexcept { return rates_kbps_.size(); }
  [[nodiscard]] double rate_kbps(std::size_t level) const;
  [[nodiscard]] double min_rate_kbps() const noexcept { return rates_kbps_.front(); }
  [[nodiscard]] double max_rate_kbps() const noexcept { return rates_kbps_.back(); }

  /// Highest level whose rate is <= `rate_kbps` (0 when even the lowest
  /// exceeds it) — the rate-based selection primitive.
  [[nodiscard]] std::size_t level_for_rate(double rate_kbps) const noexcept;

 private:
  std::vector<double> rates_kbps_;
};

/// A ladder mirroring the paper's 300-600 KB/s content range (five levels).
[[nodiscard]] QualityLadder paper_range_ladder();

}  // namespace jstream
