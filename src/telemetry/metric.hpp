// Thread-safe metric primitives for the telemetry subsystem.
//
// Three metric kinds cover the instrumentation needs of the gateway/sim
// stack:
//
//   Counter   — monotonic event count (atomic, relaxed increments);
//   Gauge     — last-written scalar (atomic double);
//   Histogram — fixed-bucket distribution with quantile extraction
//               (per-bucket atomic counts, so concurrent observers from the
//               thread_pool never block each other).
//
// All operations are observation-only: recording never throws, never
// allocates after construction, and is a no-op while telemetry is disabled
// (see telemetry::set_enabled in registry.hpp). Metrics are owned by a
// Registry and outlive every caller, so hot paths may cache references.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace jstream::telemetry {

/// Global on/off switch shared by every metric; see set_enabled().
[[nodiscard]] bool enabled() noexcept;

/// Monotonic event counter.
class Counter {
 public:
  /// Adds `delta` (default one event). Relaxed atomic; safe from any thread.
  void add(std::int64_t delta = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Zeroes the counter (used by Registry::reset_values).
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written scalar value.
class Gauge {
 public:
  void set(double value) noexcept {
    if (!enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  /// Atomic add via compare-exchange (std::atomic<double>::fetch_add is not
  /// universally available).
  void add(double delta) noexcept {
    if (!enabled()) return;
    double expected = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with linear-interpolated quantiles.
///
/// `upper_bounds` are the inclusive upper edges of the buckets, strictly
/// increasing; one implicit overflow bucket catches everything above the
/// last edge. Bucket counts are independent atomics, so concurrent observe()
/// calls scale across threads.
class Histogram {
 public:
  /// Throws jstream::Error when `upper_bounds` is empty or not strictly
  /// increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Records one observation. Lock-free; safe from any thread.
  void observe(double value) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;

  /// Consistent point-in-time copy of the distribution.
  struct Snapshot {
    std::vector<double> upper_bounds;   ///< bucket edges (no overflow edge)
    std::vector<std::int64_t> counts;   ///< upper_bounds.size() + 1 entries
    std::int64_t total = 0;
    double sum = 0.0;

    /// Quantile q in [0, 1], linearly interpolated inside the bucket that
    /// contains the target rank. Values in the overflow bucket report the
    /// last finite edge. Returns 0 for an empty histogram.
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Convenience quantile over a fresh snapshot.
  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

  [[nodiscard]] std::span<const double> upper_bounds() const noexcept {
    return bounds_;
  }

  /// Zeroes all buckets (used by Registry::reset_values).
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` edges: start, start*factor, start*factor^2, ... Requires
/// start > 0, factor > 1, count >= 1.
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t count);

/// `count` edges: start, start+step, ... Requires step > 0, count >= 1.
[[nodiscard]] std::vector<double> linear_buckets(double start, double step,
                                                 std::size_t count);

/// Default edges for latency histograms in microseconds: exponential from
/// 0.5 us to ~8.4 s (25 buckets), wide enough for a scheduler decision and a
/// whole simulation run alike.
[[nodiscard]] const std::vector<double>& default_latency_buckets_us();

}  // namespace jstream::telemetry
