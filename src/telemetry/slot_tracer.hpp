// Bounded per-slot event trace for scheduler debugging.
//
// The SlotTracer is a fixed-capacity ring buffer of (slot, user, kind,
// value) tuples recording scheduler-internal decisions: allocations granted,
// grants clipped by constraint (1) (per-user link cap) or constraint (2)
// (base-station capacity), RRC state transitions, Lyapunov virtual-queue
// levels (Eq. 16), and Eq. 12 threshold admissions/rejections. When the ring
// is full the oldest events are overwritten, so memory stays bounded no
// matter how long a run is; `total_recorded()` still counts every event.
//
// Recording takes a short mutex (events arrive from thread_pool workers
// during replication/sweep runs) and is a no-op while telemetry is disabled.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace jstream::telemetry {

/// What a trace event describes. `value` is kind-specific (see to_string).
enum class TraceEventKind : std::uint8_t {
  kGrant,          ///< units granted to a user this slot (value = units)
  kClipLink,       ///< grant saturated constraint (1) (value = units granted)
  kClipCapacity,   ///< slot exhausted constraint (2) (value = total units, user = -1)
  kRrcTransition,  ///< RRC state change (value = encoded to-state, see rrc.hpp)
  kQueueLevel,     ///< Lyapunov queue level in seconds (Eq. 16)
  kAdmit,          ///< user passed the Eq. 12 signal threshold (value = sig dBm)
  kReject,         ///< user filtered by the Eq. 12 threshold (value = sig dBm)
};

/// Stable lower_snake_case label (used by both renderers).
[[nodiscard]] const char* to_string(TraceEventKind kind) noexcept;

/// One recorded scheduler event.
struct SlotTraceEvent {
  std::int64_t slot = 0;
  std::int32_t user = -1;  ///< -1 for slot-wide events
  TraceEventKind kind = TraceEventKind::kGrant;
  double value = 0.0;
};

/// Fixed-capacity ring buffer of SlotTraceEvents.
class SlotTracer {
 public:
  /// `capacity` must be >= 1; defaults to a few thousand events, enough to
  /// hold the tail of a long run without unbounded growth.
  explicit SlotTracer(std::size_t capacity = 4096);

  /// Records one event, overwriting the oldest when full. Safe from any
  /// thread; no-op while telemetry is disabled.
  void record(std::int64_t slot, std::int32_t user, TraceEventKind kind,
              double value) noexcept;

  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<SlotTraceEvent> snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;

  /// Every event ever recorded, including overwritten ones.
  [[nodiscard]] std::int64_t total_recorded() const;

  /// Drops all retained events and zeroes total_recorded.
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<SlotTraceEvent> ring_;
  std::size_t next_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace jstream::telemetry
