#include "telemetry/registry.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace jstream::telemetry {

namespace {

std::atomic<bool> g_enabled{true};

/// JSON string escaping for metric names and event labels.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no inf/nan literals; render those as null.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

Registry::Registry(std::size_t tracer_capacity) : tracer_(tracer_capacity) {}

Counter& Registry::counter(const std::string& name) {
  require(!name.empty(), "metric name must not be empty");
  const std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  require(!name.empty(), "metric name must not be empty");
  const std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::span<const double> upper_bounds) {
  require(!name.empty(), "metric name must not be empty");
  const std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    std::vector<double> edges(upper_bounds.begin(), upper_bounds.end());
    if (edges.empty()) edges = default_latency_buckets_us();
    slot = std::make_unique<Histogram>(std::move(edges));
  }
  return *slot;
}

void Registry::reset_values() {
  const std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  tracer_.clear();
}

std::vector<std::string> Registry::counter_names() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::gauge_names() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::histogram_names() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

std::string Registry::render_text() const {
  std::ostringstream out;
  out << "== telemetry registry (" << (enabled() ? "enabled" : "disabled")
      << ") ==\n";
  {
    const std::lock_guard lock(mutex_);
    out << "counters:\n";
    for (const auto& [name, counter] : counters_) {
      out << "  " << name << " = " << counter->value() << "\n";
    }
    out << "gauges:\n";
    for (const auto& [name, gauge] : gauges_) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", gauge->value());
      out << "  " << name << " = " << buf << "\n";
    }
    out << "histograms:\n";
    for (const auto& [name, histogram] : histograms_) {
      const Histogram::Snapshot snap = histogram->snapshot();
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "count=%lld sum=%.6g p50=%.6g p95=%.6g p99=%.6g",
                    static_cast<long long>(snap.total), snap.sum,
                    snap.quantile(0.50), snap.quantile(0.95),
                    snap.quantile(0.99));
      out << "  " << name << ": " << buf << "\n";
    }
  }
  const std::vector<SlotTraceEvent> events = tracer_.snapshot();
  constexpr std::size_t kMaxShown = 20;
  const std::size_t shown = std::min(events.size(), kMaxShown);
  out << "slot trace: " << tracer_.total_recorded() << " events recorded, "
      << events.size() << " retained";
  if (shown > 0) out << ", last " << shown << ":";
  out << "\n";
  for (std::size_t i = events.size() - shown; i < events.size(); ++i) {
    const SlotTraceEvent& event = events[i];
    char buf[96];
    std::snprintf(buf, sizeof buf, "  [slot %lld] user %d %s %.6g\n",
                  static_cast<long long>(event.slot), event.user,
                  to_string(event.kind), event.value);
    out << buf;
  }
  return out.str();
}

std::string Registry::render_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  {
    const std::lock_guard lock(mutex_);
    bool first = true;
    for (const auto& [name, counter] : counters_) {
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": " << counter->value();
      first = false;
    }
    out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : gauges_) {
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": " << json_number(gauge->value());
      first = false;
    }
    out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
      const Histogram::Snapshot snap = histogram->snapshot();
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
          << "\"count\": " << snap.total << ", \"sum\": " << json_number(snap.sum)
          << ", \"p50\": " << json_number(snap.quantile(0.50))
          << ", \"p95\": " << json_number(snap.quantile(0.95))
          << ", \"p99\": " << json_number(snap.quantile(0.99))
          << ", \"buckets\": [";
      for (std::size_t i = 0; i < snap.counts.size(); ++i) {
        if (i != 0) out << ", ";
        out << "{\"le\": "
            << (i < snap.upper_bounds.size() ? json_number(snap.upper_bounds[i])
                                             : std::string("null"))
            << ", \"count\": " << snap.counts[i] << "}";
      }
      out << "]}";
      first = false;
    }
    out << (first ? "}" : "\n  }");
  }
  const std::vector<SlotTraceEvent> events = tracer_.snapshot();
  out << ",\n  \"trace\": {\"capacity\": " << tracer_.capacity()
      << ", \"total_recorded\": " << tracer_.total_recorded()
      << ", \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out << ", ";
    out << "{\"slot\": " << events[i].slot << ", \"user\": " << events[i].user
        << ", \"kind\": \"" << to_string(events[i].kind)
        << "\", \"value\": " << json_number(events[i].value) << "}";
  }
  out << "]}\n}\n";
  return out.str();
}

void Registry::write_json(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "cannot open telemetry JSON file for writing: " + path);
  out << render_json();
  require(out.good(), "telemetry JSON write failed: " + path);
}

Registry& global_registry() {
  static Registry registry;
  return registry;
}

}  // namespace jstream::telemetry
