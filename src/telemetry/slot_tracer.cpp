#include "telemetry/slot_tracer.hpp"

#include "common/error.hpp"
#include "telemetry/metric.hpp"

namespace jstream::telemetry {

const char* to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kGrant: return "grant";
    case TraceEventKind::kClipLink: return "clip_link";
    case TraceEventKind::kClipCapacity: return "clip_capacity";
    case TraceEventKind::kRrcTransition: return "rrc_transition";
    case TraceEventKind::kQueueLevel: return "queue_level";
    case TraceEventKind::kAdmit: return "admit";
    case TraceEventKind::kReject: return "reject";
  }
  return "unknown";
}

SlotTracer::SlotTracer(std::size_t capacity) : ring_(capacity) {
  require(capacity >= 1, "slot tracer capacity must be at least 1");
}

void SlotTracer::record(std::int64_t slot, std::int32_t user, TraceEventKind kind,
                        double value) noexcept {
  if (!enabled()) return;
  const std::lock_guard lock(mutex_);
  ring_[next_] = SlotTraceEvent{slot, user, kind, value};
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

std::vector<SlotTraceEvent> SlotTracer::snapshot() const {
  const std::lock_guard lock(mutex_);
  std::vector<SlotTraceEvent> events;
  events.reserve(size_);
  // Oldest event sits at next_ once the ring has wrapped, at 0 before.
  const std::size_t start = size_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    events.push_back(ring_[(start + i) % ring_.size()]);
  }
  return events;
}

std::size_t SlotTracer::size() const {
  const std::lock_guard lock(mutex_);
  return size_;
}

std::int64_t SlotTracer::total_recorded() const {
  const std::lock_guard lock(mutex_);
  return total_;
}

void SlotTracer::clear() {
  const std::lock_guard lock(mutex_);
  next_ = 0;
  size_ = 0;
  total_ = 0;
}

}  // namespace jstream::telemetry
