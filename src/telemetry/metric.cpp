#include "telemetry/metric.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  require(!bounds_.empty(), "histogram needs at least one bucket edge");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    require(bounds_[i - 1] < bounds_[i],
            "histogram bucket edges must be strictly increasing");
  }
}

void Histogram::observe(double value) noexcept {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = checked_size(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.upper_bounds = bounds_;
  snap.counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snap.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.total = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "quantile q must lie in [0, 1]");
  if (total <= 0) return 0.0;
  const double target = q * as_double(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto in_bucket = as_double(counts[i]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= target) {
      if (i >= upper_bounds.size()) return upper_bounds.back();  // overflow
      // Interpolate inside [lower, upper]; the first bucket's lower edge is
      // clamped at zero unless the edges themselves go negative.
      const double upper = upper_bounds[i];
      const double lower =
          i == 0 ? std::min(0.0, upper_bounds.front()) : upper_bounds[i - 1];
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return upper_bounds.back();
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  require(start > 0.0, "exponential buckets need a positive start");
  require(factor > 1.0, "exponential buckets need factor > 1");
  require(count >= 1, "need at least one bucket edge");
  std::vector<double> edges;
  edges.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return edges;
}

std::vector<double> linear_buckets(double start, double step, std::size_t count) {
  require(step > 0.0, "linear buckets need a positive step");
  require(count >= 1, "need at least one bucket edge");
  std::vector<double> edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(start + step * as_double(i));
  }
  return edges;
}

const std::vector<double>& default_latency_buckets_us() {
  static const std::vector<double> edges = exponential_buckets(0.5, 2.0, 25);
  return edges;
}

}  // namespace jstream::telemetry
