// RAII latency probe: measures the lifetime of a scope and feeds it into a
// latency Histogram in microseconds.
//
//   {
//     telemetry::ScopedTimer timer(registry.histogram("scheduler.decision_latency_us"));
//     alloc = scheduler->allocate(ctx);
//   }  // <- observation recorded here
//
// When telemetry is disabled at construction time the timer never reads the
// clock, so the probe costs one branch on the hot path.
#pragma once

#include <chrono>

#include "telemetry/metric.hpp"

namespace jstream::telemetry {

/// Observes the enclosing scope's wall time (microseconds) into a Histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(enabled() ? &sink : nullptr),
        start_(sink_ != nullptr ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{}) {}

  ~ScopedTimer() {
    if (sink_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace jstream::telemetry
