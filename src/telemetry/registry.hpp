// Process-wide registry of named telemetry metrics.
//
// A Registry owns Counters, Gauges, Histograms, and one SlotTracer under
// dotted lower_snake_case names ("rtma.rejected_users",
// "scheduler.decision_latency_us" — see docs/OBSERVABILITY.md for the naming
// conventions). Lookup is get-or-create and returns a reference that stays
// valid for the registry's lifetime, so hot paths resolve a metric once and
// cache the reference; recording itself never takes the registry lock.
//
// `global_registry()` is the process-wide instance every built-in
// instrumentation point records into. Instrumentation is observation-only by
// construction: nothing in the simulation reads a metric back, so enabling
// or disabling telemetry cannot perturb results (verified by
// tests/telemetry/test_determinism.cpp).
//
// Two renderers are provided: render_text() for humans (the CLI's
// --telemetry dump) and render_json()/write_json() for machines (the bench
// harness drops one JSON artifact next to each figure's CSV export).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "telemetry/metric.hpp"
#include "telemetry/slot_tracer.hpp"

namespace jstream::telemetry {

/// Turns recording on/off process-wide (default: on). Disabling makes every
/// record call a cheap early-out; registered metrics keep their values.
void set_enabled(bool on) noexcept;

/// Named-metric registry; see file comment.
class Registry {
 public:
  /// `tracer_capacity` bounds the SlotTracer ring (>= 1).
  explicit Registry(std::size_t tracer_capacity = 4096);

  /// Get-or-create. Names must be non-empty; dotted lower_snake_case by
  /// convention. The returned reference lives as long as the registry.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);

  /// Get-or-create; `upper_bounds` applies only on first creation (empty
  /// selects default_latency_buckets_us()). Later calls return the existing
  /// histogram regardless of the edges passed.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::span<const double> upper_bounds = {});

  [[nodiscard]] SlotTracer& tracer() noexcept { return tracer_; }

  /// Zeroes every metric and clears the tracer without invalidating any
  /// outstanding reference. Lets one process run several experiments with a
  /// clean slate in between.
  void reset_values();

  /// Registered names per kind, sorted (for tests and tooling).
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> gauge_names() const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  /// Human-readable dump: counters, gauges, histogram quantiles, and the
  /// tail of the slot trace.
  [[nodiscard]] std::string render_text() const;

  /// Machine-readable dump:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, p50, p95, p99, buckets: [...]}},
  ///    "trace": {capacity, total_recorded, events: [...]}}
  [[nodiscard]] std::string render_json() const;

  /// Writes render_json() to `path`; throws jstream::Error on I/O failure.
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  SlotTracer tracer_;
};

/// The process-wide registry used by built-in instrumentation.
[[nodiscard]] Registry& global_registry();

}  // namespace jstream::telemetry
