#include "session/arrival.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& hash, double value) noexcept {
  fnv_mix(hash, std::bit_cast<std::uint64_t>(value));
}

/// Poisson counts via per-slot child streams: the count for slot n never
/// depends on which other slots were queried first.
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(double rate_per_slot, std::uint64_t seed, std::uint64_t salt)
      : rate_(rate_per_slot), root_(Rng(seed).split(kArrivalRootStream + salt)) {}

  [[nodiscard]] std::string name() const override { return "poisson"; }

  [[nodiscard]] std::int64_t arrivals_at(std::int64_t slot) const override {
    require(slot >= 0, "slot must be non-negative");
    Rng slot_rng = root_.split(static_cast<std::uint64_t>(slot));
    return poisson_sample(slot_rng, rate_);
  }

 private:
  double rate_;
  Rng root_;
};

/// Replays an explicit per-slot count trace; slots beyond it see 0.
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<std::int64_t> counts)
      : counts_(std::move(counts)) {}

  [[nodiscard]] std::string name() const override { return "trace"; }

  [[nodiscard]] std::int64_t arrivals_at(std::int64_t slot) const override {
    require(slot >= 0, "slot must be non-negative");
    const auto index = checked_size(slot);
    return index < counts_.size() ? counts_[index] : 0;
  }

 private:
  std::vector<std::int64_t> counts_;
};

}  // namespace

void validate(const ArrivalConfig& config) {
  switch (config.kind) {
    case ArrivalKind::kNone:
      return;
    case ArrivalKind::kPoisson:
      require(config.rate_per_slot >= 0.0, "arrival rate must be non-negative");
      return;
    case ArrivalKind::kTrace:
      for (std::int64_t count : config.trace_counts) {
        require(count >= 0, "arrival trace counts must be non-negative");
      }
      return;
  }
  throw Error("unknown arrival kind");
}

std::uint64_t arrival_fingerprint(const ArrivalConfig& config) {
  if (!config.active()) return 0;
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, static_cast<std::uint64_t>(config.kind));
  fnv_mix(hash, config.rate_per_slot);
  fnv_mix(hash, config.salt);
  fnv_mix(hash, static_cast<std::uint64_t>(config.trace_counts.size()));
  for (std::int64_t count : config.trace_counts) {
    fnv_mix(hash, static_cast<std::uint64_t>(count));
  }
  // 0 is reserved for "inactive".
  return hash == 0 ? 1 : hash;
}

std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalConfig& config,
                                                     std::uint64_t seed) {
  validate(config);
  switch (config.kind) {
    case ArrivalKind::kNone:
      return nullptr;
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(config.rate_per_slot, seed,
                                               config.salt);
    case ArrivalKind::kTrace:
      return std::make_unique<TraceArrivals>(config.trace_counts);
  }
  throw Error("unknown arrival kind");
}

VideoSession draw_session_content(const ScenarioConfig& cell, std::uint64_t salt,
                                  std::int64_t arrival_index) {
  require(arrival_index >= 0, "arrival index must be non-negative");
  Rng rng = Rng(cell.seed)
                .split(kSessionRootStream + salt)
                .split(static_cast<std::uint64_t>(arrival_index));
  // Same draw family as build_endpoints: size first, then the bitrate
  // profile (uniform for CBR, a dedicated substream for the VBR walk).
  const double size_kb = mb_to_kb(rng.uniform(cell.video_min_mb, cell.video_max_mb));
  std::shared_ptr<const BitrateProfile> bitrate;
  if (!cell.vbr) {
    bitrate = std::make_shared<ConstantBitrate>(
        rng.uniform(cell.bitrate_min_kbps, cell.bitrate_max_kbps));
  } else {
    RandomWalkBitrate::Params params;
    params.min_kbps = cell.bitrate_min_kbps;
    params.max_kbps = cell.bitrate_max_kbps;
    params.step_kbps = cell.vbr_step_kbps;
    params.hold_slots = cell.vbr_hold_slots;
    bitrate = std::make_shared<RandomWalkBitrate>(params, rng.split(0x7662),
                                                  cell.max_slots);
  }
  return VideoSession(size_kb, std::move(bitrate), cell.slot.tau_s);
}

std::int64_t poisson_sample(Rng& rng, double lambda) {
  require(lambda >= 0.0 && std::isfinite(lambda),
          "Poisson intensity must be finite and non-negative");
  // Knuth's product method is exact but needs exp(-lambda) > 0 in double
  // precision; splitting lambda into bounded chunks keeps each factor well
  // above underflow, and the sum of independent Poissons is Poisson(sum).
  constexpr double kChunk = 32.0;
  std::int64_t count = 0;
  double remaining = lambda;
  while (remaining > 0.0) {
    const double chunk = remaining > kChunk ? kChunk : remaining;
    remaining -= chunk;
    const double threshold = std::exp(-chunk);
    double product = rng.uniform();
    while (product > threshold) {
      ++count;
      product *= rng.uniform();
    }
  }
  return count;
}

}  // namespace jstream
