#include "session/service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/units.hpp"
#include "telemetry/registry.hpp"

namespace jstream {

namespace {

struct SessionTelemetry {
  telemetry::Counter& runs;
  telemetry::Counter& offered;
  telemetry::Counter& accepted;
  telemetry::Counter& rejected;
  telemetry::Counter& blocked;

  static SessionTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static SessionTelemetry probes{registry.counter("session.runs"),
                                   registry.counter("admission.offered"),
                                   registry.counter("admission.accepted"),
                                   registry.counter("admission.rejected"),
                                   registry.counter("admission.blocked")};
    return probes;
  }
};

std::int64_t tail_flush_slots(const ScenarioConfig& cell) {
  return ceil_to_count(cell.radio.tail_duration_s() / cell.slot.tau_s) + 1;
}

}  // namespace

void validate(const ServiceConfig& config) {
  validate(config.cell);
  validate(config.arrivals);
  validate(config.admission);
  require(config.warmup_slots >= 0, "warmup must be non-negative");
  require(config.warmup_slots < config.cell.max_slots,
          "warmup must fit inside the horizon");
}

std::uint64_t service_fingerprint(const ServiceConfig& config) {
  return arrival_fingerprint(config.arrivals);
}

ServiceSimulator::ServiceSimulator(ServiceConfig config,
                                   std::unique_ptr<Scheduler> scheduler,
                                   SchedulingMode mode,
                                   std::shared_ptr<const SignalTraceSet> trace,
                                   bool keep_series)
    : config_(std::move(config)),
      mode_(mode),
      trace_(std::move(trace)),
      keep_series_(keep_series) {
  validate(config_);
  require(scheduler != nullptr, "service simulator needs a scheduler");
  const ScenarioConfig& cell = config_.cell;
  if (!config_.arrivals.active()) {
    // Zero-arrival service = the batch run; the Simulator built in run()
    // performs its own trace checks.
    batch_scheduler_ = std::move(scheduler);
    return;
  }
  if (trace_ != nullptr) {
    require(trace_->users() == cell.users, "trace population mismatch");
    require(trace_->slots() >= cell.max_slots, "trace shorter than the horizon");
    require(trace_->link_derived(), "trace is missing the derived link matrices");
  }

  manager_ = std::make_unique<SessionManager>(cell, tail_flush_slots(cell));
  if (trace_ != nullptr) {
    std::span<UserEndpoint> endpoints = manager_->endpoints();
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      endpoints[i].attach_trace(trace_.get(), i);
    }
  }
  bs_ = std::make_unique<BaseStation>(capacity_profile(cell));
  const double backhaul = cell.backhaul_kbps > 0.0
                              ? cell.backhaul_kbps
                              : std::numeric_limits<double>::infinity();
  framework_ = std::make_unique<Framework>(
      InfoCollector(cell.slot, cell.link, cell.radio), std::move(scheduler), mode_,
      cell.users, backhaul);
  if (cell.faults.any()) {
    fault_injector_ = std::make_unique<FaultInjector>(
        std::make_shared<const FaultSchedule>(make_fault_schedule(cell)));
    fault_schedule_ = &fault_injector_->schedule();
    framework_->attach_fault_hook(fault_injector_.get());
  }
  arrivals_ = make_arrival_process(config_.arrivals, cell.seed);
  admission_ = make_admission_controller(config_.admission);
  metrics_ = std::make_unique<MetricsCollector>(cell.users, keep_series_);
  service_metrics_ = std::make_unique<ServiceMetricsCollector>(
      cell.users, config_.warmup_slots, config_.keep_session_records);
}

std::size_t ServiceSimulator::active_sessions() const noexcept {
  return manager_ != nullptr ? manager_->active_sessions() : 0;
}

double ServiceSimulator::mean_bound_queue_s() const noexcept {
  const std::span<const double> queues = framework_->scheduler().virtual_queues();
  if (queues.empty() || manager_->active_sessions() == 0) return 0.0;
  double sum = 0.0;
  std::size_t bound = 0;
  for (std::size_t i = 0; i < queues.size(); ++i) {
    if (!manager_->occupied(i)) continue;
    sum += queues[i];
    ++bound;
  }
  return bound == 0 ? 0.0 : sum / as_double(bound);
}

void ServiceSimulator::admit_arrivals(std::int64_t slot, std::int64_t count) {
  auto& probes = SessionTelemetry::instance();
  const bool telemetry_on = telemetry::enabled();
  // One backlog probe per event boundary — it scans the whole population.
  const double mean_queue = mean_bound_queue_s();
  for (std::int64_t a = 0; a < count; ++a) {
    service_metrics_->on_offered();
    if (telemetry_on) probes.offered.add();
    // The content of arrival k is drawn unconditionally — before admission,
    // before the free-slot check — so policy or capacity changes never shift
    // the content stream of later sessions (arrival purity contract).
    const std::int64_t k = arrival_index_++;
    VideoSession session = draw_session_content(config_.cell, config_.arrivals.salt, k);

    AdmissionSnapshot snapshot;
    snapshot.slot = slot;
    snapshot.active_sessions = manager_->active_sessions();
    snapshot.capacity_slots = manager_->capacity();
    snapshot.cell_capacity_kbps = bs_->capacity_kbps(slot);
    snapshot.mean_bitrate_kbps = manager_->mean_active_bitrate_kbps();
    snapshot.mean_virtual_queue_s = mean_queue;
    snapshot.offered_bitrate_kbps = session.bitrate_at_time(0.0);
    if (!admission_->admit(snapshot)) {
      service_metrics_->on_rejected();
      if (telemetry_on) probes.rejected.add();
      continue;
    }
    if (!manager_->has_free_slot()) {
      service_metrics_->on_blocked();
      if (telemetry_on) probes.blocked.add();
      continue;
    }
    const std::size_t id = manager_->peek_free();
    std::int64_t departure = UserEndpoint::kNeverSlot;
    if (fault_schedule_ != nullptr) {
      // The cell's departure draw belongs to the population slot; it aborts
      // whichever session occupies the slot when it fires. Draws already in
      // the past never fire again.
      const std::int64_t drawn = fault_schedule_->departure_slot(id);
      if (drawn > slot) departure = drawn;
    }
    manager_->bind(slot, std::move(session), departure);
    framework_->scheduler().reset_user(id);
    service_metrics_->on_session_start(id, slot, k);
    if (telemetry_on) probes.accepted.add();
  }
}

bool ServiceSimulator::step() {
  require(manager_ != nullptr,
          "step() requires active arrivals (zero-arrival configs run the batch path)");
  if (slot_ >= config_.cell.max_slots) return false;
  const std::int64_t slot = slot_;

  // Event boundary: releases first (freed slots are immediately reusable by
  // this boundary's arrivals), then arrivals.
  manager_->scan_releases(slot, [&](std::size_t id, std::int64_t end_slot,
                                    bool completed) {
    service_metrics_->on_session_end(id, end_slot,
                                     manager_->endpoints()[id].delivered_kb,
                                     completed);
  });
  const std::int64_t count = arrivals_->arrivals_at(slot);
  if (count > 0) admit_arrivals(slot, count);

  // The unmodified batch slot path over the fixed-size population.
  const SlotOutcome& outcome = framework_->run_slot(slot, manager_->endpoints(), *bs_);
  metrics_->record_slot(framework_->last_context(), outcome);
  service_metrics_->record_slot(slot, manager_->active_sessions(), outcome);

  ++slot_;
  return slot_ < config_.cell.max_slots;
}

ServiceResult ServiceSimulator::finish() {
  require(manager_ != nullptr, "finish() follows step(); batch configs use run()");
  ServiceResult result;
  result.run = metrics_->finish();
  result.service = service_metrics_->finish(manager_->active_sessions());
  return result;
}

ServiceResult ServiceSimulator::run() {
  if (manager_ == nullptr) return run_zero_arrival();
  SessionTelemetry::instance().runs.add();
  while (step()) {
  }
  return finish();
}

ServiceResult ServiceSimulator::run_zero_arrival() {
  require(batch_scheduler_ != nullptr, "service simulator already ran");
  SessionTelemetry::instance().runs.add();
  const ScenarioConfig& cell = config_.cell;
  Simulator simulator(cell, std::move(batch_scheduler_), mode_, trace_);
  ServiceResult result;
  result.run = simulator.run(keep_series_);

  // Derive the session view from the batch run: every user is one offered
  // and admitted session; completions come from the per-user totals, aborts
  // from the (pure, replayable) fault schedule. Steady-state averages span
  // the full horizon — a batch run has no fill transient to exclude.
  const RunMetrics& run = result.run;
  ServiceMetrics& s = result.service;
  s.slots_run = run.slots_run;
  s.warmup_slots = 0;
  s.capacity_slots = cell.users;
  s.offered = checked_index(cell.users);
  s.admitted = s.offered;
  s.measured_slots = run.slots_run;

  std::vector<std::int64_t> abort_slot(cell.users, UserEndpoint::kNeverSlot);
  if (cell.faults.any()) {
    const FaultSchedule schedule = make_fault_schedule(cell);
    for (std::size_t i = 0; i < cell.users; ++i) {
      abort_slot[i] = schedule.departure_slot(i);
    }
  }
  for (std::size_t i = 0; i < run.per_user.size(); ++i) {
    const UserTotals& user = run.per_user[i];
    const bool aborted = abort_slot[i] < run.slots_run && !user.playback_finished;
    s.concurrency_sum += as_double(user.session_slots);
    s.active_user_slots += user.session_slots;
    s.rebuffer_sum_s += user.rebuffer_s;
    s.energy_sum_mj += user.energy_mj();
    if (user.playback_finished || aborted) {
      ++(user.playback_finished ? s.completed : s.aborted);
      ++s.sessions_measured;
      s.session_rebuffer_sum_s += user.rebuffer_s;
      s.session_energy_sum_mj += user.energy_mj();
      s.session_delivered_sum_kb += user.delivered_kb;
      s.session_length_slots_sum += user.session_slots;
    } else {
      ++s.in_flight_at_end;
    }
  }
  s.peak_concurrency = cell.users;
  return result;
}

ServiceResult simulate_service(const ServiceConfig& config,
                               std::unique_ptr<Scheduler> scheduler,
                               bool keep_series,
                               std::shared_ptr<const SignalTraceSet> trace) {
  ServiceSimulator simulator(config, std::move(scheduler), SchedulingMode::kBaseline,
                             std::move(trace), keep_series);
  return simulator.run();
}

}  // namespace jstream
