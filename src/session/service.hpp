// Online service mode: a long-running gateway serving dynamic session
// arrivals on the batch Framework/Simulator stack.
//
// A ServiceConfig wraps a batch ScenarioConfig ("the cell": population slots,
// channel, link, radio, capacity, faults) with an arrival process, an
// admission policy, and a steady-state measurement window. Per slot, the
// ServiceSimulator runs the event boundary first — release sessions that
// ended (completed + tail-drained, or fault-aborted), then offer the slot's
// arrivals to the admission controller and bind the admitted ones to recycled
// population slots — and then executes the ordinary Framework::run_slot over
// the fixed-size population. Quiescent slots (no events) run the unmodified
// zero-alloc slot path.
//
// With arrivals inactive (ArrivalKind::kNone) the service run IS the batch
// run: it delegates to the batch Simulator, bit for bit, and derives the
// session counters from its RunMetrics.
#pragma once

#include <cstdint>
#include <memory>

#include "gateway/framework.hpp"
#include "session/admission.hpp"
#include "session/arrival.hpp"
#include "session/session_manager.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace jstream {

/// Everything an online service run needs.
struct ServiceConfig {
  ScenarioConfig cell;       ///< population slots, channel, link, radio, faults
  ArrivalConfig arrivals;    ///< dynamic arrivals (kNone = batch semantics)
  AdmissionConfig admission; ///< accept-all or threshold policy
  /// Slots excluded from the steady-state averages (the fill transient).
  std::int64_t warmup_slots = 0;
  /// Keep one SessionRecord per ended measured session.
  bool keep_session_records = false;
};

/// Raises on invalid configs (delegates to the cell/arrival/admission
/// validators; warmup must fit the horizon).
void validate(const ServiceConfig& config);

/// TraceKey::session_fingerprint of this config: the arrival stream identity,
/// 0 iff arrivals are inactive (the run is the batch run and may share its
/// trace-cache entry). Admission policy does not join — it never touches the
/// channel substrate.
[[nodiscard]] std::uint64_t service_fingerprint(const ServiceConfig& config);

/// Both result layers of one service run.
struct ServiceResult {
  RunMetrics run;          ///< population-slot aggregates (batch metrics)
  ServiceMetrics service;  ///< session flow + steady-state averages
};

/// Drives one service run; see the file comment for slot anatomy.
class ServiceSimulator {
 public:
  ServiceSimulator(ServiceConfig config, std::unique_ptr<Scheduler> scheduler,
                   SchedulingMode mode = SchedulingMode::kBaseline,
                   std::shared_ptr<const SignalTraceSet> trace = nullptr,
                   bool keep_series = false);

  /// Executes one slot: event boundary (releases, arrivals/admission), then
  /// Framework::run_slot and metric recording. Returns false once the
  /// horizon is exhausted. Only valid with active arrivals.
  bool step();

  /// Finalizes after stepping; the simulator may not be reused.
  [[nodiscard]] ServiceResult finish();

  /// Runs to completion: the stepping loop with active arrivals, the batch
  /// Simulator (bit-identical to simulate()) otherwise.
  [[nodiscard]] ServiceResult run();

  [[nodiscard]] std::int64_t slot() const noexcept { return slot_; }
  [[nodiscard]] std::size_t active_sessions() const noexcept;
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] ServiceResult run_zero_arrival();
  void admit_arrivals(std::int64_t slot, std::int64_t count);
  [[nodiscard]] double mean_bound_queue_s() const noexcept;

  ServiceConfig config_;
  SchedulingMode mode_;
  std::shared_ptr<const SignalTraceSet> trace_;
  bool keep_series_;

  // Batch delegation path keeps the scheduler until run().
  std::unique_ptr<Scheduler> batch_scheduler_;

  // Arrival-mode state (null/empty when arrivals are inactive).
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<Framework> framework_;
  std::unique_ptr<BaseStation> bs_;
  std::unique_ptr<FaultInjector> fault_injector_;
  const FaultSchedule* fault_schedule_ = nullptr;
  std::unique_ptr<ArrivalProcess> arrivals_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<MetricsCollector> metrics_;
  std::unique_ptr<ServiceMetricsCollector> service_metrics_;
  std::int64_t slot_ = 0;
  std::int64_t arrival_index_ = 0;
};

/// Convenience wrapper mirroring simulate(): one service run end to end.
[[nodiscard]] ServiceResult simulate_service(
    const ServiceConfig& config, std::unique_ptr<Scheduler> scheduler,
    bool keep_series = false, std::shared_ptr<const SignalTraceSet> trace = nullptr);

}  // namespace jstream
