// Dynamic user population for the online service mode.
//
// The gateway's zero-alloc slot path sizes every workspace (receiver queues,
// scheduler state, outcome arrays) to a fixed user count, so the service
// layer does not grow or shrink the population — it owns `capacity` endpoint
// slots and recycles their stable ids. A free slot is parked as departed
// (UserEndpoint::departure_slot in the past ⇒ zero demand, zero charge, the
// paper-invariant validator treats it as gone); binding an arriving session
// rewrites the slot's session state in place (VideoSession, PlaybackBuffer,
// RRC machine, start/departure slots) and bumps its session_epoch. The
// channel substrate (SignalModel or trace row) belongs to the population
// slot, never to the session, so campaign traces stay valid across rebinds.
//
// Quiescent slots touch nothing: scan_releases is a flag sweep over warm
// arrays; binds and releases — the event boundaries — are the only places
// that may allocate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gateway/user_endpoint.hpp"
#include "sim/scenario.hpp"
#include "common/units.hpp"

namespace jstream {

/// Owns `cell.users` recyclable UserEndpoint slots; see the file comment.
class SessionManager {
 public:
  /// Builds the population with build_endpoints(cell) — the identical RNG
  /// draw order keeps precomputed traces row-aligned — then parks every slot
  /// as free. `tail_flush_slots` is the drain window a completed session
  /// stays bound for so its RRC tail is charged (Eq. 4), matching the batch
  /// Simulator's flush.
  SessionManager(const ScenarioConfig& cell, std::int64_t tail_flush_slots);

  [[nodiscard]] std::span<UserEndpoint> endpoints() noexcept { return endpoints_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return endpoints_.size(); }
  [[nodiscard]] std::size_t active_sessions() const noexcept { return active_; }
  [[nodiscard]] bool has_free_slot() const noexcept { return !free_.empty(); }

  /// The slot id the next bind will recycle. Requires a free slot; callers
  /// use it to look up per-slot schedules (fault departures) before binding.
  [[nodiscard]] std::size_t peek_free() const noexcept { return free_.back(); }
  [[nodiscard]] bool occupied(std::size_t id) const noexcept {
    return occupied_[id] != 0;
  }

  /// Mean content bitrate over the bound sessions (admission snapshot input);
  /// 0 when the cell is idle.
  [[nodiscard]] double mean_active_bitrate_kbps() const noexcept {
    return active_ == 0 ? 0.0 : bitrate_sum_kbps_ / as_double(active_);
  }

  /// Binds `session` to a free slot starting at `slot`. `departure_slot` is
  /// the session's abort slot (UserEndpoint::kNeverSlot for none — callers
  /// pass the fault schedule's draw when it lies in this session's future).
  /// Requires a free slot; returns the recycled slot id.
  std::size_t bind(std::int64_t slot, VideoSession session,
                   std::int64_t departure_slot);

  /// Sweeps the population at the boundary of `slot` and releases every
  /// session that ended: fault-aborted sessions immediately, completed
  /// sessions after their tail-drain window. Calls
  /// `on_end(id, end_slot, completed)` for each release, after the slot is
  /// back on the free list. Allocation-free.
  template <typename OnEnd>
  void scan_releases(std::int64_t slot, OnEnd&& on_end) {
    for (std::size_t id = 0; id < endpoints_.size(); ++id) {
      if (occupied_[id] == 0) continue;
      UserEndpoint& endpoint = endpoints_[id];
      if (endpoint.departed(slot)) {
        // Mid-stream abort: the slot freed the moment the abort slot arrives.
        const std::int64_t end_slot = endpoint.departure_slot;
        release(id, slot);
        on_end(id, end_slot, /*completed=*/false);
        continue;
      }
      if (!endpoint.active()) {
        if (drain_until_[id] < 0) {
          // Playback just finished: keep the slot bound through the RRC tail.
          drain_until_[id] = slot + tail_flush_slots_;
        } else if (slot >= drain_until_[id]) {
          release(id, slot);
          on_end(id, slot, /*completed=*/true);
        }
      }
    }
  }

 private:
  void release(std::size_t id, std::int64_t slot);

  std::vector<UserEndpoint> endpoints_;
  std::vector<std::uint8_t> occupied_;
  std::vector<std::size_t> free_;          ///< stack of free slot ids
  std::vector<std::int64_t> drain_until_;  ///< tail-drain deadline, -1 = none
  std::vector<double> bound_bitrate_kbps_; ///< bitrate added to the sum at bind
  std::size_t active_ = 0;
  double bitrate_sum_kbps_ = 0.0;
  std::int64_t tail_flush_slots_ = 0;
  double tau_s_ = 1.0;
  RadioProfile radio_;
};

}  // namespace jstream
