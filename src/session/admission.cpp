#include "session/admission.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

namespace {

class AcceptAllAdmission final : public AdmissionController {
 public:
  [[nodiscard]] std::string name() const override { return "accept-all"; }
  [[nodiscard]] bool admit(const AdmissionSnapshot&) override { return true; }
};

class ThresholdAdmission final : public AdmissionController {
 public:
  explicit ThresholdAdmission(ThresholdAdmissionConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "threshold"; }

  [[nodiscard]] bool admit(const AdmissionSnapshot& snapshot) override {
    // Predicted per-user capacity: with this arrival admitted, every active
    // session's content rate (approximated by the mean, with the arrival's
    // own rate folded in) must fit the cell bound with headroom.
    const auto active = as_double(snapshot.active_sessions);
    const double mean_bitrate =
        (active * snapshot.mean_bitrate_kbps + snapshot.offered_bitrate_kbps) /
        (active + 1.0);
    const double demand = (active + 1.0) * mean_bitrate * config_.capacity_headroom;
    if (demand > snapshot.cell_capacity_kbps) return false;
    // Backlog test: a cell whose Eq. 16 queues already accumulated
    // rebuffering pressure must drain before taking on more work.
    return snapshot.mean_virtual_queue_s <= config_.max_mean_queue_s;
  }

 private:
  ThresholdAdmissionConfig config_;
};

}  // namespace

void validate(const AdmissionConfig& config) {
  switch (config.kind) {
    case AdmissionKind::kAcceptAll:
      return;
    case AdmissionKind::kThreshold:
      require(config.threshold.capacity_headroom > 0.0,
              "admission capacity headroom must be positive");
      require(config.threshold.max_mean_queue_s >= 0.0,
              "admission queue bound must be non-negative");
      return;
  }
  throw Error("unknown admission kind");
}

std::unique_ptr<AdmissionController> make_accept_all_admission() {
  return std::make_unique<AcceptAllAdmission>();
}

std::unique_ptr<AdmissionController> make_threshold_admission(
    ThresholdAdmissionConfig config) {
  return std::make_unique<ThresholdAdmission>(config);
}

std::unique_ptr<AdmissionController> make_admission_controller(
    const AdmissionConfig& config) {
  validate(config);
  switch (config.kind) {
    case AdmissionKind::kAcceptAll:
      return make_accept_all_admission();
    case AdmissionKind::kThreshold:
      return make_threshold_admission(config.threshold);
  }
  throw Error("unknown admission kind");
}

}  // namespace jstream
