// Campaign engine for service-mode runs: executes a batch of
// ServiceExperimentSpecs on the thread pool via run_campaign_cells, sharing
// the channel substrate across every spec that uses the same cell AND the
// same arrival stream. The service fingerprint joins the TraceKey: two specs
// whose arrivals differ never alias a cache entry, while a zero-arrival
// service spec shares its entry with plain batch campaigns over the same
// scenario (they are bit-identical runs).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "session/service.hpp"
#include "sim/campaign.hpp"

namespace jstream {

/// One service experiment: a service config run under a named scheduler.
struct ServiceExperimentSpec {
  std::string label;      ///< series name in reports
  std::string scheduler;  ///< factory name
  ServiceConfig config;
  SchedulerOptions options;
};

/// Runs one spec end to end (convenience mirror of run_experiment).
[[nodiscard]] ServiceResult run_service_experiment(
    const ServiceExperimentSpec& spec, bool keep_series = false,
    std::shared_ptr<const SignalTraceSet> trace = nullptr);

/// Runs every spec on the pool (order-preserving results) with the channel
/// substrate shared through the trace cache, keyed by scenario identity plus
/// each spec's service fingerprint.
[[nodiscard]] std::vector<ServiceResult> run_service_campaign(
    std::span<const ServiceExperimentSpec> specs, const CampaignOptions& options = {});

}  // namespace jstream
