// Campaign engine for service-mode runs: executes a batch of
// ServiceExperimentSpecs on the thread pool via run_campaign_cells, sharing
// the channel substrate across every spec that uses the same cell AND the
// same arrival stream. The service fingerprint joins the TraceKey: two specs
// whose arrivals differ never alias a cache entry, while a zero-arrival
// service spec shares its entry with plain batch campaigns over the same
// scenario (they are bit-identical runs).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "session/service.hpp"
#include "sim/campaign.hpp"
#include "sim/distrib.hpp"

namespace jstream {

/// One service experiment: a service config run under a named scheduler.
struct ServiceExperimentSpec {
  std::string label;      ///< series name in reports
  std::string scheduler;  ///< factory name
  ServiceConfig config;
  SchedulerOptions options;
};

/// Runs one spec end to end (convenience mirror of run_experiment).
[[nodiscard]] ServiceResult run_service_experiment(
    const ServiceExperimentSpec& spec, bool keep_series = false,
    std::shared_ptr<const SignalTraceSet> trace = nullptr);

/// Runs every spec on the pool (order-preserving results) with the channel
/// substrate shared through the trace cache, keyed by scenario identity plus
/// each spec's service fingerprint.
[[nodiscard]] std::vector<ServiceResult> run_service_campaign(
    std::span<const ServiceExperimentSpec> specs, const CampaignOptions& options = {});

/// Canonical binary encoding of one service run (RunMetrics + ServiceMetrics,
/// session records included). decode(encode(r)) reproduces r bit for bit —
/// same contract as encode_run_metrics, extended with the session-flow side.
void encode_service_result(ByteWriter& out, const ServiceResult& result);
[[nodiscard]] ServiceResult decode_service_result(ByteReader& in);

/// XXH64 over the canonical encoding: equal digests <=> bit-identical service
/// results (the span overload digests the whole result vector).
[[nodiscard]] std::uint64_t service_digest(const ServiceResult& result);
[[nodiscard]] std::uint64_t service_digest(std::span<const ServiceResult> results);

/// run_service_campaign split across worker processes (sim/distrib fork/pipe
/// engine); the merged result vector is bit-identical to
/// run_service_campaign(specs, options.campaign).
[[nodiscard]] std::vector<ServiceResult> run_service_campaign_distributed(
    std::span<const ServiceExperimentSpec> specs, const DistribOptions& options = {});

}  // namespace jstream
