// Session arrival processes for the online service mode.
//
// An ArrivalProcess answers "how many sessions arrive in slot n" as a pure
// function of (config, seed, n): queries are deterministic, order-independent
// and allocation-free, so sharded campaign runs, replays, and live runs all
// see the same arrival stream. The RNG discipline mirrors src/sim/fault.hpp —
// the arrival layer owns root streams disjoint from the per-user endpoint
// streams (split(i)) and the fault layer's 0xfa17... root:
//
//   arrivals: Rng(seed).split(kArrivalRootStream + salt).split(slot)
//   content:  Rng(seed).split(kSessionRootStream + salt).split(k)
//
// where k is the global arrival index (0, 1, 2, ... in arrival order). The
// content stream draws each arriving session's video size and bitrate profile
// and is indexed by k — NOT by admission outcome — so changing the admission
// policy or the cell capacity never shifts the content of later sessions
// (the "arrival purity contract", see docs/SERVICE.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "media/video_session.hpp"
#include "sim/scenario.hpp"

namespace jstream {

/// Root stream of the per-slot arrival-count draws. Disjoint by construction
/// from the per-user endpoint streams (split(i), small i) and the fault
/// layer's 0xfa17'0000'0000'0000 root.
inline constexpr std::uint64_t kArrivalRootStream = 0xa2210000'00000000ULL;

/// Root stream of the per-arrival session-content draws.
inline constexpr std::uint64_t kSessionRootStream = 0x5e550000'00000000ULL;

/// Which arrival process drives the service run.
enum class ArrivalKind : std::uint8_t {
  kNone,     ///< no dynamic arrivals: the service run IS the batch run
  kPoisson,  ///< iid Poisson(rate_per_slot) counts per slot
  kTrace,    ///< replay explicit per-slot counts (0 beyond the trace)
};

/// Declarative arrival configuration (joins ServiceConfig).
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kNone;
  double rate_per_slot = 0.0;  ///< Poisson intensity lambda (kPoisson)
  std::vector<std::int64_t> trace_counts;  ///< per-slot counts (kTrace)
  /// Decorrelates arrival streams across service scenarios sharing a seed,
  /// like FaultConfig::salt does for fault schedules.
  std::uint64_t salt = 0;

  [[nodiscard]] bool active() const noexcept { return kind != ArrivalKind::kNone; }
};

/// Raises on non-sensical configs (negative rate, negative trace counts).
void validate(const ArrivalConfig& config);

/// Stable identity of the arrival stream a config produces, for cache keys
/// (TraceKey::session_fingerprint) and reports. 0 iff inactive — so batch
/// runs and zero-arrival service runs share trace-cache entries (they are
/// bit-identical by construction), while any active arrival process isolates
/// its campaign cells from batch ones.
[[nodiscard]] std::uint64_t arrival_fingerprint(const ArrivalConfig& config);

/// Deterministic per-slot arrival counts; see the file comment for the
/// purity contract.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Stable identifier used in reports ("poisson", "trace", "none").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Sessions arriving in slot `slot`. Pure: any query order, any subset of
  /// slots, any number of repeats — same answers. Allocation-free.
  [[nodiscard]] virtual std::int64_t arrivals_at(std::int64_t slot) const = 0;
};

/// Builds the process for a config; nullptr when config.kind == kNone.
[[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrival_process(
    const ArrivalConfig& config, std::uint64_t seed);

/// Draws the content of the k-th arriving session (global arrival index, in
/// arrival order) from the cell's content ranges: video size uniform in
/// [video_min_mb, video_max_mb], bitrate profile per the cell's CBR/VBR
/// settings — the same draw family build_endpoints uses, on the session
/// content stream. Pure in (cell content fields, seed, salt, k).
[[nodiscard]] VideoSession draw_session_content(const ScenarioConfig& cell,
                                                std::uint64_t salt,
                                                std::int64_t arrival_index);

/// Exact Poisson(lambda) sampler on `rng` (chunked inverse-CDF by
/// multiplication, exact for any lambda; large intensities are split into
/// bounded chunks so the product never underflows).
[[nodiscard]] std::int64_t poisson_sample(Rng& rng, double lambda);

}  // namespace jstream
