// Admission control for the online service mode.
//
// When a session arrives, the gateway may admit it, or reject it to protect
// the sessions already streaming (Bethanabhotla/Caire/Neely, "Utility Optimal
// Scheduling and Admission Control for Adaptive Video Streaming in Small Cell
// Networks": admitting past the cell's service capacity trades everyone's
// playback smoothness for concurrency). Decisions are pure functions of the
// per-slot AdmissionSnapshot, so runs stay deterministic and replayable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace jstream {

/// What the controller sees when one arrival asks to be admitted.
struct AdmissionSnapshot {
  std::int64_t slot = 0;
  std::size_t active_sessions = 0;   ///< currently admitted (incl. tail drain)
  std::size_t capacity_slots = 0;    ///< population slots the gateway owns
  double cell_capacity_kbps = 0.0;   ///< Eq. 2 bound S at this slot
  /// Mean content bitrate over the active sessions, kbps (0 when idle).
  double mean_bitrate_kbps = 0.0;
  /// Mean Lyapunov virtual-queue backlog PC_i over the active sessions,
  /// seconds (0 for schedulers that expose no queues). Eq. 16 pressure: a
  /// large positive mean means the cell is already failing to keep up.
  double mean_virtual_queue_s = 0.0;
  /// Content bitrate of the arriving session, kbps.
  double offered_bitrate_kbps = 0.0;
};

/// Decides admission per arriving session.
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  /// Stable identifier used in reports ("accept-all", "threshold").
  [[nodiscard]] virtual std::string name() const = 0;

  /// True to admit the arrival described by `snapshot`.
  [[nodiscard]] virtual bool admit(const AdmissionSnapshot& snapshot) = 0;
};

/// Threshold policy knobs.
struct ThresholdAdmissionConfig {
  /// Admit only while S >= (active+1) * mean_bitrate * headroom: the cell
  /// must be able to sustain every admitted session's content rate with this
  /// multiplicative margin (predicted per-user capacity test).
  double capacity_headroom = 1.1;
  /// Additionally require the mean Eq. 16 backlog to stay at or below this
  /// bound; past it the cell is already rebuffering and must drain first.
  double max_mean_queue_s = 30.0;
};

/// Which controller a ServiceConfig instantiates.
enum class AdmissionKind : std::uint8_t {
  kAcceptAll,
  kThreshold,
};

/// Declarative admission configuration (joins ServiceConfig).
struct AdmissionConfig {
  AdmissionKind kind = AdmissionKind::kAcceptAll;
  ThresholdAdmissionConfig threshold;
};

void validate(const AdmissionConfig& config);

/// Baseline: admits everything the population can hold.
[[nodiscard]] std::unique_ptr<AdmissionController> make_accept_all_admission();

/// Capacity/backlog threshold policy (see ThresholdAdmissionConfig).
[[nodiscard]] std::unique_ptr<AdmissionController> make_threshold_admission(
    ThresholdAdmissionConfig config = {});

/// Builds the controller for a config.
[[nodiscard]] std::unique_ptr<AdmissionController> make_admission_controller(
    const AdmissionConfig& config);

}  // namespace jstream
