#include "session/session_manager.hpp"

#include <utility>

#include "common/error.hpp"

namespace jstream {

SessionManager::SessionManager(const ScenarioConfig& cell,
                               std::int64_t tail_flush_slots)
    : endpoints_(build_endpoints(cell)),
      occupied_(cell.users, 0),
      drain_until_(cell.users, -1),
      bound_bitrate_kbps_(cell.users, 0.0),
      tail_flush_slots_(tail_flush_slots),
      tau_s_(cell.slot.tau_s),
      radio_(cell.radio) {
  require(tail_flush_slots_ >= 0, "tail flush window must be non-negative");
  // All slots start free: parked as departed-before-start so the collector
  // reports them gone from slot 0 on. Popping from the back hands out low
  // ids first.
  free_.reserve(endpoints_.size());
  for (std::size_t id = endpoints_.size(); id > 0; --id) {
    free_.push_back(id - 1);
    endpoints_[id - 1].depart_at(0);
  }
}

std::size_t SessionManager::bind(std::int64_t slot, VideoSession session,
                                 std::int64_t departure_slot) {
  require(!free_.empty(), "bind requires a free population slot");
  require(departure_slot > slot, "departure must lie in the session's future");
  const std::size_t id = free_.back();
  free_.pop_back();

  UserEndpoint& endpoint = endpoints_[id];
  endpoint.session = std::move(session);
  endpoint.buffer = PlaybackBuffer(endpoint.session.total_playback_s(), tau_s_);
  endpoint.rrc = RrcStateMachine(radio_);
  endpoint.delivered_kb = 0.0;
  endpoint.content_time_s = 0.0;
  endpoint.start_slot = slot;
  endpoint.depart_at(departure_slot);
  ++endpoint.session_epoch;

  occupied_[id] = 1;
  drain_until_[id] = -1;
  bound_bitrate_kbps_[id] = endpoint.session.bitrate_at_time(0.0);
  bitrate_sum_kbps_ += bound_bitrate_kbps_[id];
  ++active_;
  return id;
}

void SessionManager::release(std::size_t id, std::int64_t slot) {
  occupied_[id] = 0;
  drain_until_[id] = -1;
  bitrate_sum_kbps_ -= bound_bitrate_kbps_[id];
  bound_bitrate_kbps_[id] = 0.0;
  --active_;
  UserEndpoint& endpoint = endpoints_[id];
  // A completed session's slot parks as departed from here on (an aborted
  // session already carries an earlier stamp that stays in force).
  if (endpoint.departure_slot > slot) endpoint.depart_at(slot);
  free_.push_back(id);
}

}  // namespace jstream
