#include "session/service_campaign.hpp"

#include "baselines/factory.hpp"

namespace jstream {

ServiceResult run_service_experiment(const ServiceExperimentSpec& spec,
                                     bool keep_series,
                                     std::shared_ptr<const SignalTraceSet> trace) {
  return simulate_service(spec.config, make_scheduler(spec.scheduler, spec.options),
                          keep_series, std::move(trace));
}

std::vector<ServiceResult> run_service_campaign(
    std::span<const ServiceExperimentSpec> specs, const CampaignOptions& options) {
  return run_campaign_cells(
      specs.size(), options,
      [&](std::size_t i) {
        return CampaignCell{&specs[i].config.cell,
                            service_fingerprint(specs[i].config)};
      },
      [&](std::size_t i, std::shared_ptr<const SignalTraceSet> trace) {
        return run_service_experiment(specs[i], options.keep_series,
                                      std::move(trace));
      });
}

}  // namespace jstream
