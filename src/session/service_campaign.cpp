#include "session/service_campaign.hpp"

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/units.hpp"

namespace jstream {

ServiceResult run_service_experiment(const ServiceExperimentSpec& spec,
                                     bool keep_series,
                                     std::shared_ptr<const SignalTraceSet> trace) {
  return simulate_service(spec.config, make_scheduler(spec.scheduler, spec.options),
                          keep_series, std::move(trace));
}

std::vector<ServiceResult> run_service_campaign(
    std::span<const ServiceExperimentSpec> specs, const CampaignOptions& options) {
  return run_campaign_cells(
      specs.size(), options,
      [&](std::size_t i) {
        return CampaignCell{&specs[i].config.cell,
                            service_fingerprint(specs[i].config)};
      },
      [&](std::size_t i, std::shared_ptr<const SignalTraceSet> trace) {
        return run_service_experiment(specs[i], options.keep_series,
                                      std::move(trace));
      });
}

void encode_service_result(ByteWriter& out, const ServiceResult& result) {
  encode_run_metrics(out, result.run);
  const ServiceMetrics& service = result.service;
  out.i64(service.slots_run);
  out.i64(service.warmup_slots);
  out.u64(static_cast<std::uint64_t>(service.capacity_slots));
  out.i64(service.offered);
  out.i64(service.admitted);
  out.i64(service.rejected);
  out.i64(service.blocked);
  out.i64(service.completed);
  out.i64(service.aborted);
  out.i64(service.in_flight_at_end);
  out.i64(service.measured_slots);
  out.f64(service.concurrency_sum);
  out.u64(static_cast<std::uint64_t>(service.peak_concurrency));
  out.f64(service.rebuffer_sum_s);
  out.i64(service.active_user_slots);
  out.f64(service.energy_sum_mj);
  out.i64(service.sessions_measured);
  out.f64(service.session_rebuffer_sum_s);
  out.f64(service.session_energy_sum_mj);
  out.f64(service.session_delivered_sum_kb);
  out.i64(service.session_length_slots_sum);
  out.u64(static_cast<std::uint64_t>(service.records.size()));
  for (const SessionRecord& record : service.records) {
    out.u64(static_cast<std::uint64_t>(record.user_slot));
    out.i64(record.arrival_index);
    out.i64(record.start_slot);
    out.i64(record.end_slot);
    out.f64(record.delivered_kb);
    out.f64(record.rebuffer_s);
    out.f64(record.energy_mj);
    out.boolean(record.completed);
  }
}

ServiceResult decode_service_result(ByteReader& in) {
  ServiceResult result;
  result.run = decode_run_metrics(in);
  ServiceMetrics& service = result.service;
  service.slots_run = in.i64();
  service.warmup_slots = in.i64();
  service.capacity_slots = checked_size(in.i64());
  service.offered = in.i64();
  service.admitted = in.i64();
  service.rejected = in.i64();
  service.blocked = in.i64();
  service.completed = in.i64();
  service.aborted = in.i64();
  service.in_flight_at_end = in.i64();
  service.measured_slots = in.i64();
  service.concurrency_sum = in.f64();
  service.peak_concurrency = checked_size(in.i64());
  service.rebuffer_sum_s = in.f64();
  service.active_user_slots = in.i64();
  service.energy_sum_mj = in.f64();
  service.sessions_measured = in.i64();
  service.session_rebuffer_sum_s = in.f64();
  service.session_energy_sum_mj = in.f64();
  service.session_delivered_sum_kb = in.f64();
  service.session_length_slots_sum = in.i64();
  const std::size_t records = checked_size(in.i64());
  // Each serialized record occupies 8 fixed-width fields; reject counts the
  // remaining payload cannot possibly hold before reserving.
  require(records <= in.remaining() / (8 * sizeof(std::uint64_t)),
          "frame truncated");
  service.records.resize(records);
  for (SessionRecord& record : service.records) {
    record.user_slot = checked_size(in.i64());
    record.arrival_index = in.i64();
    record.start_slot = in.i64();
    record.end_slot = in.i64();
    record.delivered_kb = in.f64();
    record.rebuffer_s = in.f64();
    record.energy_mj = in.f64();
    record.completed = in.boolean();
  }
  return result;
}

std::uint64_t service_digest(const ServiceResult& result) {
  ByteWriter out;
  encode_service_result(out, result);
  return xxh64(out.bytes().data(), out.bytes().size());
}

std::uint64_t service_digest(std::span<const ServiceResult> results) {
  ByteWriter out;
  out.u64(static_cast<std::uint64_t>(results.size()));
  for (const ServiceResult& result : results) encode_service_result(out, result);
  return xxh64(out.bytes().data(), out.bytes().size());
}

namespace {

class ServiceShardEncoder final : public ShardEncoder {
 public:
  ServiceShardEncoder(std::span<const ServiceExperimentSpec> specs,
                      const CampaignOptions& campaign)
      : specs_(specs), campaign_(campaign) {}

  std::vector<std::uint8_t> encode_slice(std::size_t /*shard*/,
                                         ShardRange range) override {
    const std::vector<ServiceResult> results =
        run_service_campaign(specs_.subspan(range.begin, range.size()), campaign_);
    ByteWriter out;
    for (const ServiceResult& result : results) encode_service_result(out, result);
    return out.take();
  }

 private:
  std::span<const ServiceExperimentSpec> specs_;
  const CampaignOptions& campaign_;
};

}  // namespace

std::vector<ServiceResult> run_service_campaign_distributed(
    std::span<const ServiceExperimentSpec> specs, const DistribOptions& options) {
  if (specs.empty()) return {};
  ServiceShardEncoder encoder(specs, options.campaign);
  const std::vector<ShardPayload> payloads =
      run_forked_shards(specs.size(), options.processes, options.numa_bind, encoder);
  std::vector<ServiceResult> merged(specs.size());
  for (const ShardPayload& shard : payloads) {
    ByteReader in(shard.bytes);
    for (std::size_t i = shard.range.begin; i < shard.range.end; ++i) {
      merged[i] = decode_service_result(in);
    }
    in.finish();
  }
  return merged;
}

}  // namespace jstream
