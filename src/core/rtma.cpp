#include "core/rtma.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "core/energy_threshold.hpp"
#include "telemetry/registry.hpp"
#include "common/units.hpp"

namespace jstream {

namespace {

struct RtmaTelemetry {
  telemetry::Counter& allocations;
  telemetry::Counter& admitted_users;
  telemetry::Counter& rejected_users;
  telemetry::Gauge& threshold_dbm;
  telemetry::SlotTracer& tracer;

  static RtmaTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static RtmaTelemetry probes{registry.counter("rtma.allocations"),
                                registry.counter("rtma.admitted_users"),
                                registry.counter("rtma.rejected_users"),
                                registry.gauge("rtma.threshold_dbm"),
                                registry.tracer()};
    return probes;
  }
};

}  // namespace

RtmaScheduler::RtmaScheduler(RtmaConfig config) : config_(config) {
  require(config_.energy_budget_mj > 0.0, "energy budget must be positive");
  require(config_.min_dbm < config_.max_dbm, "signal range is empty");
}

void RtmaScheduler::reset(std::size_t users) {
  last_threshold_dbm_ = -std::numeric_limits<double>::infinity();
  order_.reserve(users);
  need_.reserve(users);
}

void RtmaScheduler::set_energy_budget(double budget_mj) {
  require(budget_mj > 0.0, "energy budget must be positive");
  config_.energy_budget_mj = budget_mj;
}

Allocation RtmaScheduler::allocate(const SlotContext& ctx) {
  Allocation alloc;
  allocate_into(ctx, alloc);
  return alloc;
}

// jstream: hot-path — per-slot allocation; order_/need_ workspaces are
// reserved in reset().
void RtmaScheduler::allocate_into(const SlotContext& ctx, Allocation& out) {
  const std::size_t n = ctx.user_count();
  const SlotSoa& soa = ctx.soa;
  require(soa.size() == n, "SlotContext::finalize() not called before allocate");
  out.units.assign(n, 0);

  // Eq. 12: energy budget -> admission threshold (steps 6 of Algorithm 1).
  double threshold = -std::numeric_limits<double>::infinity();
  if (std::isfinite(config_.energy_budget_mj)) {
    EnergyThresholdSpec spec;
    spec.budget_mj = config_.energy_budget_mj;
    spec.tau_s = ctx.params.tau_s;
    // P_tail defaults to the tail-window average power (Eq. 12's "tail energy
    // in a slot"); see RadioProfile::mean_tail_power_mw.
    spec.tail_power_mw =
        std::isnan(config_.tail_power_mw)
            ? (ctx.radio != nullptr ? ctx.radio->mean_tail_power_mw()
                                    : paper_3g_profile().mean_tail_power_mw())
            : config_.tail_power_mw;
    spec.min_dbm = config_.min_dbm;
    spec.max_dbm = config_.max_dbm;
    threshold = signal_threshold_dbm(spec, *ctx.throughput, *ctx.power);
  }
  last_threshold_dbm_ = threshold;

  // Observation-only: record the Eq. 12 threshold and which users it admits
  // or filters this slot. Rejections are the paper's energy-saving lever, so
  // they are also traced per user.
  if (telemetry::enabled()) {
    auto& probes = RtmaTelemetry::instance();
    probes.allocations.add();
    probes.threshold_dbm.set(threshold);
    for (std::size_t i = 0; i < n; ++i) {
      if (!soa.needs_data(i)) continue;
      if (soa.signal_dbm[i] < threshold) {
        probes.rejected_users.add();
        probes.tracer.record(ctx.slot, checked_i32(i),
                             telemetry::TraceEventKind::kReject,
                             soa.signal_dbm[i]);
      } else {
        probes.admitted_users.add();
      }
    }
  }

  // Steps 1-3: sort by required data rate ascending; compute per-slot needs.
  // The member workspaces recycle their storage, so steady-state slots do not
  // allocate; both passes read the SoA lanes, not the AoS records.
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    return soa.bitrate_kbps[a] < soa.bitrate_kbps[b];
  });
  need_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    need_[i] = ctx.params.need_units(soa.bitrate_kbps[i]);
  }

  // Steps 4-15: iterative passes; each pass grants each eligible user at most
  // its need, so early users cannot seize the whole base station.
  std::int64_t remaining = ctx.capacity_units;
  bool progressed = true;
  while (remaining > 0 && progressed) {
    progressed = false;
    for (std::size_t idx : order_) {
      if (remaining <= 0) break;
      if (soa.signal_dbm[idx] < threshold) continue;  // Eq. 12 admission filter
      const std::int64_t sup =
          std::min(soa.alloc_cap_units[idx] - out.units[idx], remaining);
      if (sup <= 0) continue;
      const std::int64_t grant = std::min(need_[idx], sup);
      if (grant <= 0) continue;
      out.units[idx] += grant;
      remaining -= grant;
      progressed = true;
    }
  }
}

}  // namespace jstream
