// Virtual rebuffering-time queues for the Lyapunov optimization in EMA
// (Section V).
//
// Each user carries a (possibly negative) queue PC_i with the recursion
// Eq. 16:   PC_i(n+1) = PC_i(n) + tau - t_i(n),
// where t_i(n) is the playback time delivered in slot n. A negative queue
// means the client buffer holds surplus data; a positive queue accumulates
// rebuffering pressure. The Lyapunov function is L(n) = 1/2 * sum PC_i^2
// (Eq. 17) and the drift bound constant is B = 1/2 * sum (tau^2 + t_max^2)
// (Eq. 18).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace jstream {

/// The PC_i virtual queues of Eq. 16.
class LyapunovQueues {
 public:
  explicit LyapunovQueues(std::size_t users = 0);

  /// Reinitializes all queues to zero for `users` users.
  void reset(std::size_t users);

  /// Zeroes one user's queue (session rebind: a fresh session starts with no
  /// accumulated rebuffering pressure).
  void reset_user(std::size_t user);

  /// Applies Eq. 16 for one user: PC_i += tau - shard_playback_s.
  void update(std::size_t user, double tau_s, double shard_playback_s);

  /// PC_i(n).
  [[nodiscard]] double value(std::size_t user) const;

  /// L(n) = 1/2 * sum PC_i^2 (Eq. 17).
  [[nodiscard]] double lyapunov_function() const noexcept;

  [[nodiscard]] std::span<const double> values() const noexcept { return queues_; }
  [[nodiscard]] std::size_t size() const noexcept { return queues_.size(); }

 private:
  std::vector<double> queues_;
};

/// Drift bound constant B = 1/2 * sum_i (tau^2 + t_max_i^2), where t_max_i is
/// the maximum playback time one slot's shard can carry for user i (Eq. 18).
[[nodiscard]] double lyapunov_drift_bound(double tau_s, std::span<const double> t_max_s);

}  // namespace jstream
