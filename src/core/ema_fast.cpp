#include "core/ema_fast.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "telemetry/registry.hpp"

namespace jstream {

namespace {

struct EmaFastTelemetry {
  telemetry::Counter& solves;
  telemetry::Counter& backfill_units;

  static EmaFastTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static EmaFastTelemetry probes{
        registry.counter("ema_fast.solves"),
        registry.counter("ema_fast.backfill_units")};
    return probes;
  }
};

}  // namespace

Allocation solve_min_cost_greedy(const EmaSlotCosts& costs,
                                 std::span<const std::int64_t> caps,
                                 std::int64_t capacity_units) {
  const std::size_t n = caps.size();
  require(costs.idle_cost.size() == n && costs.slope.size() == n &&
              costs.active_base.size() == n,
          "cost/cap size mismatch");
  require(capacity_units >= 0, "capacity must be non-negative");
  Allocation alloc = Allocation::zeros(n);

  // Unconstrained per-user optimum: cost is idle at 0, slope*phi on [1, cap],
  // so the minimum sits at one of {0, 1, cap}.
  struct Want {
    std::size_t user = 0;
    std::int64_t phi = 0;
    double gain = 0.0;  ///< idle_cost - slope*phi: improvement over staying idle
  };
  std::vector<Want> wants;
  wants.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (caps[i] <= 0) continue;
    const std::int64_t phi = costs.slope[i] < 0.0 ? caps[i] : 1;
    const double gain = costs.idle_cost[i] - ema_cost(costs, i, phi);
    if (gain > 0.0) wants.push_back({i, phi, gain});
  }

  // Largest improvement per occupied unit first.
  std::sort(wants.begin(), wants.end(), [](const Want& a, const Want& b) {
    return a.gain / static_cast<double>(a.phi) > b.gain / static_cast<double>(b.phi);
  });

  std::int64_t remaining = capacity_units;
  for (const Want& want : wants) {
    if (remaining <= 0) break;
    std::int64_t phi = std::min(want.phi, remaining);
    if (phi < want.phi) {
      // Budget binds: shrinking is only an improvement when the shrunk
      // choice still beats idling.
      const double gain = costs.idle_cost[want.user] - ema_cost(costs, want.user, phi);
      if (gain <= 0.0) continue;
    }
    alloc.units[want.user] = phi;
    remaining -= phi;
  }

  if (telemetry::enabled()) EmaFastTelemetry::instance().solves.add();

  // Backfill: spend leftover capacity on already-active users with negative
  // slopes (each extra unit is a strict improvement), most negative first.
  if (remaining > 0) {
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < n; ++i) {
      if (alloc.units[i] > 0 && alloc.units[i] < caps[i] && costs.slope[i] < 0.0) {
        active.push_back(i);
      }
    }
    std::sort(active.begin(), active.end(), [&](std::size_t a, std::size_t b) {
      return costs.slope[a] < costs.slope[b];
    });
    for (std::size_t i : active) {
      if (remaining <= 0) break;
      const std::int64_t extra = std::min(caps[i] - alloc.units[i], remaining);
      alloc.units[i] += extra;
      remaining -= extra;
      if (telemetry::enabled()) EmaFastTelemetry::instance().backfill_units.add(extra);
    }
  }
  return alloc;
}

}  // namespace jstream
