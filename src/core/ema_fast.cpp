#include "core/ema_fast.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "telemetry/registry.hpp"

namespace jstream {

namespace {

struct EmaFastTelemetry {
  telemetry::Counter& solves;
  telemetry::Counter& backfill_units;

  static EmaFastTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static EmaFastTelemetry probes{
        registry.counter("ema_fast.solves"),
        registry.counter("ema_fast.backfill_units")};
    return probes;
  }
};

}  // namespace

Allocation solve_min_cost_greedy(const EmaSlotCosts& costs,
                                 std::span<const std::int64_t> caps,
                                 std::int64_t capacity_units) {
  EmaGreedyWorkspace ws;
  Allocation alloc;
  solve_min_cost_greedy(costs, caps, capacity_units, ws, alloc);
  return alloc;
}

// jstream: hot-path — greedy slot solver kernel (workspace variant).
void solve_min_cost_greedy(const EmaSlotCosts& costs,
                           std::span<const std::int64_t> caps,
                           std::int64_t capacity_units, EmaGreedyWorkspace& ws,
                           Allocation& out) {
  using Want = EmaGreedyWorkspace::Want;
  const std::size_t n = caps.size();
  require(costs.idle_cost.size() == n && costs.slope.size() == n &&
              costs.active_base.size() == n,
          "cost/cap size mismatch");
  require(capacity_units >= 0, "capacity must be non-negative");
  out.units.assign(n, 0);

  // Unconstrained per-user optimum: cost is idle at 0, slope*phi on [1, cap],
  // so the minimum sits at one of {0, 1, cap}.
  ws.wants.clear();
  ws.wants.reserve(n);
  ws.active.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (caps[i] <= 0) continue;
    const std::int64_t phi = costs.slope[i] < 0.0 ? caps[i] : 1;
    const double gain = costs.idle_cost[i] - ema_cost(costs, i, phi);
    if (gain > 0.0) ws.wants.push_back({i, phi, gain});
  }

  // Largest improvement per occupied unit first.
  std::sort(ws.wants.begin(), ws.wants.end(), [](const Want& a, const Want& b) {
    return a.gain / as_double(a.phi) > b.gain / as_double(b.phi);
  });

  std::int64_t remaining = capacity_units;
  for (const Want& want : ws.wants) {
    if (remaining <= 0) break;
    std::int64_t phi = std::min(want.phi, remaining);
    if (phi < want.phi) {
      // Budget binds: shrinking is only an improvement when the shrunk
      // choice still beats idling.
      const double gain = costs.idle_cost[want.user] - ema_cost(costs, want.user, phi);
      if (gain <= 0.0) continue;
    }
    out.units[want.user] = phi;
    remaining -= phi;
  }

  if (telemetry::enabled()) EmaFastTelemetry::instance().solves.add();

  // Backfill: spend leftover capacity on already-active users with negative
  // slopes (each extra unit is a strict improvement), most negative first.
  if (remaining > 0) {
    ws.active.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (out.units[i] > 0 && out.units[i] < caps[i] && costs.slope[i] < 0.0) {
        ws.active.push_back(i);
      }
    }
    std::sort(ws.active.begin(), ws.active.end(), [&](std::size_t a, std::size_t b) {
      return costs.slope[a] < costs.slope[b];
    });
    for (std::size_t i : ws.active) {
      if (remaining <= 0) break;
      const std::int64_t extra = std::min(caps[i] - out.units[i], remaining);
      out.units[i] += extra;
      remaining -= extra;
      if (telemetry::enabled()) EmaFastTelemetry::instance().backfill_units.add(extra);
    }
  }
}

}  // namespace jstream
