#include "core/lookahead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

LookaheadScheduler::LookaheadScheduler(LookaheadConfig config,
                                       std::vector<std::vector<double>> signal_forecast_dbm)
    : config_(config), forecast_dbm_(std::move(signal_forecast_dbm)) {
  require(config_.horizon_slots > 0, "horizon must be positive");
  require(config_.safety_buffer_s >= 0.0, "safety buffer must be non-negative");
  require(config_.prefetch_buffer_s > config_.safety_buffer_s,
          "prefetch target must exceed the safety level");
  require(config_.price_slack >= 1.0, "price slack must be >= 1");
  require(!forecast_dbm_.empty(), "forecast must cover at least one user");
}

void LookaheadScheduler::reset(std::size_t users) {
  require(users == forecast_dbm_.size(),
          "forecast population does not match the scenario");
}

double LookaheadScheduler::best_future_price(const SlotContext& ctx,
                                             std::size_t user) const {
  const std::vector<double>& trace = forecast_dbm_[user];
  double best = std::numeric_limits<double>::infinity();
  for (std::int64_t ahead = 1; ahead <= config_.horizon_slots; ++ahead) {
    const auto index =
        std::min(checked_size(ctx.slot + ahead), trace.size() - 1);
    best = std::min(best, ctx.power->energy_per_kb(trace[index]));
  }
  return best;
}

Allocation LookaheadScheduler::allocate(const SlotContext& ctx) {
  const std::size_t n = ctx.user_count();
  require(forecast_dbm_.size() == n, "forecast/user count mismatch");
  Allocation alloc = Allocation::zeros(n);
  std::int64_t remaining = ctx.capacity_units;

  // Most urgent (smallest buffer) first so safety transmissions never lose
  // capacity to prefetching peers.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ctx.users[a].buffer_s < ctx.users[b].buffer_s;
  });

  for (std::size_t i : order) {
    if (remaining <= 0) break;
    const UserSlotInfo& user = ctx.users[i];
    if (user.alloc_cap_units <= 0) continue;

    std::int64_t wanted = 0;
    if (user.buffer_s < config_.safety_buffer_s) {
      // Catch up well past the safety level so safety refills batch into one
      // transmission per stretch instead of alternating transmit/idle slots
      // (which would bleed tail energy).
      const double deficit_s =
          config_.safety_buffer_s + config_.catchup_margin_s - user.buffer_s;
      wanted = ceil_to_count(deficit_s * user.bitrate_kbps / ctx.params.delta_kb);
    } else {
      const double now_price = ctx.power->energy_per_kb(user.signal_dbm);
      if (now_price <= config_.price_slack * best_future_price(ctx, i)) {
        const double deficit_s =
            std::max(config_.prefetch_buffer_s - user.buffer_s, 0.0);
        wanted = ceil_to_count(deficit_s * user.bitrate_kbps / ctx.params.delta_kb);
      }
    }
    const std::int64_t grant = std::min({wanted, user.alloc_cap_units, remaining});
    if (grant <= 0) continue;
    alloc.units[i] = grant;
    remaining -= grant;
  }
  return alloc;
}

}  // namespace jstream
