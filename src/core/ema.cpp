#include "core/ema.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/units.hpp"
#include "radio/rrc.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scoped_timer.hpp"

namespace jstream {

namespace {

struct EmaTelemetry {
  telemetry::Counter& allocations;
  telemetry::Histogram& solve_latency_us;
  telemetry::Histogram& queue_level_s;
  telemetry::Gauge& queue_max_s;
  telemetry::SlotTracer& tracer;

  static EmaTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    // Eq. 16 queues are seconds of rebuffering pressure; negative values mean
    // buffered surplus, so the buckets straddle zero.
    static const std::vector<double> queue_edges =
        telemetry::linear_buckets(-8.0, 0.5, 33);
    static EmaTelemetry probes{registry.counter("ema.allocations"),
                               registry.histogram("ema.solve_latency_us"),
                               registry.histogram("ema.queue_level_s", queue_edges),
                               registry.gauge("ema.queue.max_s"),
                               registry.tracer()};
    return probes;
  }
};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Largest phi value the int16 choice table can carry. Rows whose caps all
/// fit use the narrow table, halving the DP's dominant write bandwidth.
constexpr std::int64_t kNarrowChoiceMax = 32767;

/// Relative tie margin of the separable fast path: decisions are taken
/// separably only when every per-user comparison clears this fraction of the
/// instance's total cost magnitude. The full DP's accumulated FP error is
/// bounded by ~n*eps*scale (~2e-13*scale at n=1000), so any allocation that
/// deviates from a margin-separated separable optimum costs strictly more in
/// the DP's own arithmetic too — the fast path is bit-identical, not just
/// approximately right. Near-tie instances fall back to the full DP.
constexpr double kSeparableMarginRel = 1e-12;

struct DpBound {
  std::int64_t m_max = 0;   ///< min(capacity, sum caps): last reachable column
  std::int64_t cap_max = 0; ///< largest per-user cap (choice-table width)
};

/// Common validation + bound computation for the DP entry points.
DpBound dp_bound(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                 std::int64_t capacity_units) {
  const std::size_t n = caps.size();
  require(costs.idle_cost.size() == n && costs.slope.size() == n &&
              costs.active_base.size() == n,
          "cost/cap size mismatch");
  require(capacity_units >= 0, "capacity must be non-negative");
  std::int64_t cap_sum = 0;
  std::int64_t cap_max = 0;
  for (std::int64_t c : caps) {
    require(c >= 0, "caps must be non-negative");
    cap_sum += c;
    cap_max = std::max(cap_max, c);
  }
  return {std::min(capacity_units, cap_sum), cap_max};
}

/// Sum of the allocation's reduced costs (the DP objective).
double total_cost(const EmaSlotCosts& costs, std::span<const std::int64_t> units) {
  double total = 0.0;
  for (std::size_t i = 0; i < units.size(); ++i) {
    total += ema_cost(costs, i, units[i]);
  }
  return total;
}

/// Separable exact fast path. When the sum of unconstrained per-user optima
/// fits under m_max, constraint (2) is slack at the optimum, the DP
/// decomposes per user, and the answer is O(N). Every decision must clear a
/// tie margin (see kSeparableMarginRel) or the caller falls back to the full
/// DP, so the result — including all tie-breaks — is bit-identical to the
/// deque/reference solvers. Writes into `out` (pre-zeroed); on false the
/// caller must re-zero `out`.
bool try_separable(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                   std::int64_t m_max, std::vector<std::int64_t>& out) {
  const std::size_t n = caps.size();
  const double* JSTREAM_RESTRICT idle = costs.idle_cost.data();
  const double* JSTREAM_RESTRICT base = costs.active_base.data();
  const double* JSTREAM_RESTRICT slope = costs.slope.data();
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scale += std::abs(idle[i]) + std::abs(base[i]) +
             std::abs(slope[i]) * as_double(caps[i]);
  }
  if (scale == 0.0) {
    // Every cost is exactly zero: all allocations tie, and the DP's
    // tie-breaks (strict-improvement scans, smallest argmin M) resolve to the
    // all-idle decision.
    return true;
  }
  const double margin = kSeparableMarginRel * scale;
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cap = caps[i];
    if (cap == 0) continue;
    const std::int64_t phi = slope[i] < 0.0 ? cap : 1;
    const double active = base[i] + slope[i] * as_double(phi);
    const double gain = idle[i] - active;
    // The activate/idle decision and — when more than one phi is feasible —
    // the endpoint choice must both be margin-robust.
    if (!(std::abs(gain) > margin)) return false;
    if (cap > 1 && !(std::abs(slope[i]) > margin)) return false;
    if (gain > 0.0) {
      out[i] = phi;
      total += phi;
      if (total > m_max) return false;  // capacity binds: not separable
    }
  }
  return true;
}

/// One DP row: sliding-window minimum over j in [m - cap, m - 1] of
/// key(j) = prev[j] - slope*j via a monotone deque, ties kept at the larger j
/// (smaller phi), candidate evaluated as prev[j] + base + slope*phi — the
/// exact arithmetic and tie rules of solve_min_cost_dp_deque, so the result
/// is bit-identical by construction. Templated on the choice-table element so
/// cap_max <= 32767 rows write int16 cells, halving the dominant store
/// bandwidth of the DP; restrict-qualified aligned lanes let the compiler
/// keep the short special-case loops (cap 0/1) vectorized.
///
/// A block prefix/suffix reformulation of the window minimum was measured
/// here and lost to the deque (its running-min scans are serial dependences
/// and its auxiliary arrays triple the memory traffic), so the deque kernel
/// is the production row.
template <typename ChoiceT>
void dp_row(const double* JSTREAM_RESTRICT prev, double* JSTREAM_RESTRICT cur,
            ChoiceT* JSTREAM_RESTRICT g, std::size_t width, std::int64_t cap,
            double idle, double base, double slope,
            double* JSTREAM_RESTRICT dq_key, std::int32_t* JSTREAM_RESTRICT dq) {
  cur[0] = prev[0] + idle;
  g[0] = 0;
  if (cap == 0) {
    // The user can receive nothing: the row is a pure idle shift.
    for (std::size_t m = 1; m < width; ++m) {
      cur[m] = prev[m] + idle;
      g[m] = 0;
    }
    return;
  }
  if (cap == 1) {
    // Window of one: the only active candidate at column m is phi = 1.
    for (std::size_t m = 1; m < width; ++m) {
      double best = prev[m] + idle;
      ChoiceT best_phi = 0;
      const double candidate = prev[m - 1] + base + slope * 1.0;
      if (candidate < best) {
        best = candidate;
        best_phi = 1;
      }
      cur[m] = best;
      g[m] = best_phi;
    }
    return;
  }
  std::size_t head = 0;
  std::size_t tail = 0;
  double prev_m = prev[0];  // rolls forward: the push key at column m uses prev[m-1]
  for (std::size_t m = 1; m < width; ++m) {
    const double key = prev_m - slope * as_double(m - 1);
    while (tail > head && key <= dq_key[tail - 1]) --tail;
    dq_key[tail] = key;
    dq[tail] = checked_i32(m - 1);
    ++tail;
    // The window lower bound m - cap advances by one per column, so at most
    // one eviction per step; j = m-1 (just pushed, >= m - cap) survives it,
    // so the deque is never left empty.
    if (std::int64_t{dq[head]} < checked_index(m) - cap) ++head;
    prev_m = prev[m];
    double best = prev_m + idle;
    ChoiceT best_phi = 0;
    const auto j = checked_size(dq[head]);
    const auto phi = m - j;
    const double candidate = prev[j] + base + slope * as_double(phi);
    if (candidate < best) {
      best = candidate;
      best_phi = static_cast<ChoiceT>(phi);
    }
    cur[m] = best;
    g[m] = best_phi;
  }
}

/// Final-row argmin (smallest M on ties) + Algorithm 2 steps 15-18 backtrack.
template <typename ChoiceT>
void backtrack(const double* final_row, const std::vector<ChoiceT>& choice,
               std::size_t n, std::size_t width, std::vector<std::int64_t>& out) {
  std::size_t m = 0;
  for (std::size_t candidate = 1; candidate < width; ++candidate) {
    if (final_row[candidate] < final_row[m]) m = candidate;
  }
  for (std::size_t i = n; i-- > 0;) {
    const auto phi = std::int64_t{choice[i * width + m]};
    out[i] = phi;
    m -= checked_size(phi);
  }
}

/// True when ws's memoized instance is value-identical to this one.
bool same_instance(const EmaDpWorkspace& ws, const EmaSlotCosts& costs,
                   std::span<const std::int64_t> caps, std::int64_t m_max) {
  const std::size_t n = caps.size();
  return ws.has_memo && ws.last_m_max == m_max && ws.last_caps.size() == n &&
         std::equal(caps.begin(), caps.end(), ws.last_caps.begin()) &&
         std::equal(costs.idle_cost.begin(), costs.idle_cost.end(),
                    ws.last_idle.begin()) &&
         std::equal(costs.active_base.begin(), costs.active_base.end(),
                    ws.last_base.begin()) &&
         std::equal(costs.slope.begin(), costs.slope.end(), ws.last_slope.begin());
}

void save_memo(EmaDpWorkspace& ws, const EmaSlotCosts& costs,
               std::span<const std::int64_t> caps, std::int64_t m_max,
               const std::vector<std::int64_t>& units) {
  ws.last_idle.assign(costs.idle_cost.begin(), costs.idle_cost.end());
  ws.last_base.assign(costs.active_base.begin(), costs.active_base.end());
  ws.last_slope.assign(costs.slope.begin(), costs.slope.end());
  ws.last_caps.assign(caps.begin(), caps.end());
  ws.last_units.assign(units.begin(), units.end());
  ws.last_m_max = m_max;
  ws.has_memo = true;
}

/// Checkpoint spacing of the warm-start row cache: ~16 checkpoints per
/// instance, never denser than every 64 rows.
std::size_t checkpoint_stride(std::size_t n) {
  return std::max<std::size_t>(64, n / 16);
}

}  // namespace

EmaSlotCosts compute_ema_slot_costs(const SlotContext& ctx,
                                    const LyapunovQueues& queues, double v_weight) {
  EmaSlotCosts costs;
  compute_ema_slot_costs(ctx, queues, v_weight, costs);
  return costs;
}

void compute_ema_slot_costs(const SlotContext& ctx, const LyapunovQueues& queues,
                            double v_weight, EmaSlotCosts& out) {
  require(queues.size() == ctx.user_count(), "queue/user count mismatch");
  require(ctx.radio != nullptr && ctx.power != nullptr && ctx.throughput != nullptr,
          "context missing models");
  const std::size_t n = ctx.user_count();
  // The cost build streams over the SoA mirror; a stale mirror means the
  // snapshot producer skipped SlotContext::finalize().
  require(ctx.soa.size() == n, "SlotContext::finalize() not called before allocate");
  const SlotSoa& soa = ctx.soa;
  out.idle_cost.resize(n);
  out.active_base.resize(n);
  out.slope.resize(n);
  const RadioProfile& radio = *ctx.radio;
  const double tau = ctx.params.tau_s;
  const double delta = ctx.params.delta_kb;
  const bool continuous = radio.continuous_tail;
  const double p_dch = radio.p_dch_mw;
  for (std::size_t i = 0; i < n; ++i) {
    // Snapshot producers cache the Definition 3/4 fits per user per slot; a
    // zero rate means the producer predates the cached-field contract.
    require(soa.throughput_kbps[i] > 0.0, "slot snapshot missing cached link rates");
    // Tail increment of staying idle this slot (Eq. 4); a radio that never
    // transmitted has no tail to pay.
    double tail_mj = 0.0;
    if (soa.rrc_promoted(i)) {
      tail_mj = slot_tail_energy_mj(radio, soa.rrc_idle_s[i], tau);
    }
    out.idle_cost[i] = v_weight * tail_mj;
    // Active-slot energy mirrors the transmitter's accounting: under Eq. 5 a
    // transmission slot costs P(sig)*phi*delta only; under continuous-time
    // Eq. 4 it additionally pays DCH power for the post-transfer residue,
    // i.e. Pd*tau + phi*delta*(P - Pd/v).
    double energy_per_unit = soa.energy_per_kb[i] * delta;
    out.active_base[i] = 0.0;
    if (continuous) {
      out.active_base[i] = v_weight * p_dch * tau;
      energy_per_unit -= p_dch / soa.throughput_kbps[i] * delta;
    }
    const double playback_per_unit = delta / soa.bitrate_kbps[i];
    out.slope[i] = v_weight * energy_per_unit - queues.value(i) * playback_per_unit;
  }
}

Allocation solve_min_cost_dp(const EmaSlotCosts& costs,
                             std::span<const std::int64_t> caps,
                             std::int64_t capacity_units) {
  EmaDpWorkspace ws;
  Allocation alloc;
  solve_min_cost_dp(costs, caps, capacity_units, ws, alloc);
  return alloc;
}

void solve_min_cost_dp(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                       std::int64_t capacity_units, EmaDpWorkspace& ws,
                       Allocation& out) {
  const std::size_t n = caps.size();
  const DpBound bound = dp_bound(costs, caps, capacity_units);
  const std::int64_t m_max = bound.m_max;
  out.units.assign(n, 0);
  // Fast path: nothing can be granted, so the all-idle allocation is the only
  // feasible point; skip the DP tables entirely.
  if (n == 0 || m_max == 0) return;
  require(m_max < std::numeric_limits<std::int32_t>::max(),
          "capacity exceeds DP index range");

  // Reuse layer 0: the instance is value-identical to the last solved one
  // (common in drained/quiescent phases where queues and tails are frozen).
  if (same_instance(ws, costs, caps, m_max)) {
    ++ws.memo_hits;
    std::copy(ws.last_units.begin(), ws.last_units.end(), out.units.begin());
    return;
  }

  // Reuse layer 1: margin-guarded separable solve (see try_separable).
  if (try_separable(costs, caps, m_max, out.units)) {
    ++ws.separable_hits;
    save_memo(ws, costs, caps, m_max, out.units);
    ws.dp_valid = false;  // checkpoints no longer describe the memo instance
    return;
  }
  std::fill(out.units.begin(), out.units.end(), 0);

  const std::size_t width = checked_size(m_max) + 1;
  const bool narrow = bound.cap_max <= kNarrowChoiceMax;
  const std::size_t stride = checkpoint_stride(n);

  // Reuse layer 2: warm-start resume. If the previous solve ran the DP over
  // the same geometry and the first d users' inputs are unchanged, rows
  // [0, d) would recompute identically — resume from the nearest checkpoint
  // at or below d instead. Checkpoints below the resume point stay valid by
  // induction (their rows were identical in the solve that wrote them).
  std::size_t start_row = 0;
  if (ws.dp_valid && ws.dp_width == width && ws.dp_narrow == narrow &&
      ws.checkpoint_stride == stride && ws.last_caps.size() == n) {
    std::size_t d = 0;
    while (d < n && caps[d] == ws.last_caps[d] &&
           costs.idle_cost[d] == ws.last_idle[d] &&
           costs.active_base[d] == ws.last_base[d] &&
           costs.slope[d] == ws.last_slope[d]) {
      ++d;
    }
    start_row = d / stride * stride;
    ws.resumed_rows += checked_index(start_row);
  }

  ws.prev.resize(width);
  ws.cur.resize(width);
  ws.window_key.resize(width);
  ws.deque.resize(width);
  // g(i, M): best phi_i when the first i+1 users received M units in total.
  if (narrow) {
    ws.choice16.resize(n * width);
  } else {
    ws.choice.resize(n * width);
  }
  const std::size_t n_checkpoints = (n - 1) / stride + 1;
  ws.checkpoints.resize(n_checkpoints * width);

  double* prev = ws.prev.data();
  double* cur = ws.cur.data();
  if (start_row == 0) {
    std::fill_n(prev, width, kInf);
    prev[0] = 0.0;
  } else {
    std::copy_n(ws.checkpoints.data() + (start_row / stride) * width, width, prev);
  }

  ++ws.dp_solves;
  for (std::size_t i = start_row; i < n; ++i) {
    if (i % stride == 0) {
      std::copy_n(prev, width, ws.checkpoints.data() + (i / stride) * width);
    }
    if (narrow) {
      dp_row<std::int16_t>(prev, cur, &ws.choice16[i * width], width, caps[i],
                           costs.idle_cost[i], costs.active_base[i],
                           costs.slope[i], ws.window_key.data(), ws.deque.data());
    } else {
      dp_row<std::int32_t>(prev, cur, &ws.choice[i * width], width, caps[i],
                           costs.idle_cost[i], costs.active_base[i],
                           costs.slope[i], ws.window_key.data(), ws.deque.data());
    }
    std::swap(prev, cur);
  }

  if (narrow) {
    backtrack<std::int16_t>(prev, ws.choice16, n, width, out.units);
  } else {
    backtrack<std::int32_t>(prev, ws.choice, n, width, out.units);
  }
  save_memo(ws, costs, caps, m_max, out.units);
  ws.dp_valid = true;
  ws.dp_width = width;
  ws.dp_narrow = narrow;
  ws.checkpoint_stride = stride;
}

void solve_min_cost_dp_deque(const EmaSlotCosts& costs,
                             std::span<const std::int64_t> caps,
                             std::int64_t capacity_units, EmaDpWorkspace& ws,
                             Allocation& out) {
  const std::size_t n = caps.size();
  const std::int64_t m_max = dp_bound(costs, caps, capacity_units).m_max;
  out.units.assign(n, 0);
  if (n == 0 || m_max == 0) return;
  require(m_max < std::numeric_limits<std::int32_t>::max(),
          "capacity exceeds DP index range");
  const auto width = checked_size(m_max) + 1;
  // The deque solve reuses the scratch rows but leaves the warm-start cache
  // describing a different solve — drop it.
  ws.invalidate();

  ws.prev.resize(width);
  ws.cur.resize(width);
  ws.window_key.resize(width);
  ws.deque.resize(width);
  ws.choice.resize(n * width);
  std::fill_n(ws.prev.data(), width, kInf);
  ws.prev[0] = 0.0;

  double* prev = ws.prev.data();
  double* cur = ws.cur.data();
  double* dq_key = ws.window_key.data();
  std::int32_t* dq = ws.deque.data();

  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cap = caps[i];
    const double idle = costs.idle_cost[i];
    const double base = costs.active_base[i];
    const double slope = costs.slope[i];
    std::int32_t* g = &ws.choice[i * width];
    cur[0] = prev[0] + idle;
    g[0] = 0;
    if (cap == 0) {
      // The user can receive nothing: the row is a pure idle shift.
      for (std::size_t m = 1; m < width; ++m) {
        cur[m] = prev[m] + idle;
        g[m] = 0;
      }
      std::swap(prev, cur);
      continue;
    }
    // Sliding-window minimum over j in [m - cap, m - 1] of
    // key(j) = prev[j] - slope*j; the phi >= 1 candidate at column m is then
    // prev[j*] + base + slope*(m - j*). Ties keep the larger j (smaller phi),
    // matching the reference DP's ascending-phi strict-improvement scan.
    // Keys live in dq_key parallel to the index deque so the push comparison
    // needs no indirect load.
    std::size_t head = 0;
    std::size_t tail = 0;
    double prev_m = prev[0];  // rolls forward: the push key at column m uses prev[m-1]
    for (std::size_t m = 1; m < width; ++m) {
      const double key = prev_m - slope * as_double(m - 1);
      while (tail > head && key <= dq_key[tail - 1]) --tail;
      dq_key[tail] = key;
      dq[tail] = checked_i32(m - 1);
      ++tail;
      // The window lower bound m - cap advances by one per column, so at most
      // one eviction per step; j = m-1 (just pushed, >= m - cap) survives it,
      // so the deque is never left empty.
      if (std::int64_t{dq[head]} < checked_index(m) - cap) ++head;
      prev_m = prev[m];
      double best = prev_m + idle;
      std::int32_t best_phi = 0;
      const auto j = checked_size(dq[head]);
      const auto phi = checked_index(m - j);
      const double candidate = prev[j] + base + slope * as_double(phi);
      if (candidate < best) {
        best = candidate;
        best_phi = checked_i32(phi);
      }
      cur[m] = best;
      g[m] = best_phi;
    }
    std::swap(prev, cur);
  }

  backtrack<std::int32_t>(prev, ws.choice, n, width, out.units);
}

Allocation solve_min_cost_dp_reference(const EmaSlotCosts& costs,
                                       std::span<const std::int64_t> caps,
                                       std::int64_t capacity_units) {
  const std::size_t n = caps.size();
  const std::int64_t m_max = dp_bound(costs, caps, capacity_units).m_max;
  Allocation alloc = Allocation::zeros(n);
  if (n == 0) return alloc;
  const auto width = checked_size(m_max) + 1;

  std::vector<double> prev(width, kInf);
  std::vector<double> cur(width, kInf);
  // g(i, M): best phi_i when the first i+1 users received M units in total.
  std::vector<std::int32_t> choice(n * width, 0);
  prev[0] = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cap = caps[i];
    const double idle = costs.idle_cost[i];
    const double base = costs.active_base[i];
    const double slope = costs.slope[i];
    std::int32_t* g = &choice[i * width];
    for (std::size_t m = 0; m < width; ++m) {
      // phi = 0 branch.
      double best = prev[m] + idle;
      std::int32_t best_phi = 0;
      // phi >= 1 branches.
      const auto phi_max = std::min(cap, checked_index(m));
      for (std::int64_t phi = 1; phi <= phi_max; ++phi) {
        const double candidate = prev[m - checked_size(phi)] + base +
                                 slope * as_double(phi);
        if (candidate < best) {
          best = candidate;
          best_phi = checked_i32(phi);
        }
      }
      cur[m] = best;
      g[m] = best_phi;
    }
    std::swap(prev, cur);
  }

  // D_N = argmin_M a[N][M], then backtrack (Algorithm 2 steps 15-18).
  std::size_t m = 0;
  for (std::size_t candidate = 1; candidate < width; ++candidate) {
    if (prev[candidate] < prev[m]) m = candidate;
  }
  for (std::size_t i = n; i-- > 0;) {
    const std::int32_t phi = choice[i * width + m];
    alloc.units[i] = phi;
    m -= checked_size(phi);
  }
  return alloc;
}

namespace {

/// Lagrangian dual value g(lambda) = sum_i min(idle_i, min_{1<=phi<=cap_i}
/// (base_i + (slope_i+lambda)*phi)) - lambda*C. For every lambda >= 0 this is
/// a lower bound on the constrained optimum (weak duality: relaxing
/// sum phi <= C with multiplier lambda only removes cost from feasible
/// points). The inner minimum of a linear function sits at an endpoint.
double dual_value(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                  std::int64_t capacity, double lambda) {
  double total = 0.0;
  const std::size_t n = caps.size();
  const double* JSTREAM_RESTRICT idle = costs.idle_cost.data();
  const double* JSTREAM_RESTRICT base = costs.active_base.data();
  const double* JSTREAM_RESTRICT slope = costs.slope.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cap = caps[i];
    if (cap == 0) {
      total += idle[i];
      continue;
    }
    const double s = slope[i] + lambda;
    const double at_one = base[i] + s;
    const double at_cap = base[i] + s * as_double(cap);
    total += std::min(idle[i], std::min(at_one, at_cap));
  }
  return total - lambda * as_double(capacity);
}

/// Maximizes the concave piecewise-linear dual over lambda in [0, hi] by
/// ternary search; any evaluation is a valid lower bound, so the search only
/// affects tightness, never soundness.
double dual_lower_bound(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                        std::int64_t capacity) {
  double hi = 0.0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (caps[i] == 0) continue;
    hi = std::max(hi, -costs.slope[i]);
    hi = std::max(hi, costs.idle_cost[i] - costs.active_base[i] - costs.slope[i]);
  }
  hi += 1.0;  // beyond every breakpoint: all users idle, g strictly decreasing
  double lo = 0.0;
  for (int iter = 0; iter < 48; ++iter) {
    const double third = (hi - lo) / 3.0;
    const double m1 = lo + third;
    const double m2 = hi - third;
    if (dual_value(costs, caps, capacity, m1) <
        dual_value(costs, caps, capacity, m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  const double at_bracket = dual_value(costs, caps, capacity, (lo + hi) / 2.0);
  const double at_zero = dual_value(costs, caps, capacity, 0.0);
  return std::max(at_bracket, at_zero);
}

}  // namespace

EmaCoarseOutcome solve_min_cost_coarse(const EmaSlotCosts& costs,
                                       std::span<const std::int64_t> caps,
                                       std::int64_t capacity_units, std::int64_t k,
                                       EmaCoarseWorkspace& ws, Allocation& out) {
  require(k >= 1, "coarsening factor must be >= 1");
  const std::size_t n = caps.size();
  const DpBound bound = dp_bound(costs, caps, capacity_units);
  const std::int64_t m_max = bound.m_max;
  out.units.assign(n, 0);
  EmaCoarseOutcome result;
  if (n == 0) {
    result.exact = true;
    return result;
  }
  if (m_max == 0) {
    // All-idle is the only feasible point: exact by construction.
    result.cost = total_cost(costs, out.units);
    result.lower_bound = result.cost;
    result.exact = true;
    return result;
  }

  // When capacity does not bind, the margin-guarded separable path solves the
  // *fine* instance exactly — no reason to pay any coarsening error.
  if (try_separable(costs, caps, m_max, out.units)) {
    result.cost = total_cost(costs, out.units);
    result.lower_bound = result.cost;
    result.exact = true;
    return result;
  }
  std::fill(out.units.begin(), out.units.end(), 0);

  if (k == 1) {
    solve_min_cost_dp(costs, caps, capacity_units, ws.dp, out);
    result.cost = total_cost(costs, out.units);
    result.lower_bound = result.cost;
    result.exact = true;
    return result;
  }

  // Coarse instance: units of k capacity grains. cap' = floor(cap/k),
  // C' = floor(m_max/k), slope' = slope*k (active cost of c coarse units is
  // base + slope*(k*c)); idle/base carry over unchanged.
  ws.coarse_caps.resize(n);
  ws.coarse_costs.idle_cost.resize(n);
  ws.coarse_costs.active_base.resize(n);
  ws.coarse_costs.slope.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.coarse_caps[i] = caps[i] / k;
    ws.coarse_costs.idle_cost[i] = costs.idle_cost[i];
    ws.coarse_costs.active_base[i] = costs.active_base[i];
    ws.coarse_costs.slope[i] = costs.slope[i] * as_double(k);
  }
  solve_min_cost_dp(ws.coarse_costs, ws.coarse_caps, m_max / k, ws.dp,
                    ws.coarse_alloc);

  // Expand to fine units and refine with strict-improvement moves only, so
  // the realized cost can only drop below the coarse solution's.
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.units[i] = k * ws.coarse_alloc.units[i];
    total += out.units[i];
  }
  std::int64_t leftover = m_max - total;

  // (a) Positive-slope actives pay per unit: shrink them to the minimum
  // active grant of one fine unit.
  for (std::size_t i = 0; i < n; ++i) {
    if (out.units[i] > 1 && costs.slope[i] > 0.0) {
      leftover += out.units[i] - 1;
      out.units[i] = 1;
    }
  }
  // (b) Negative-slope actives gain per unit: extend the steepest first.
  ws.order.clear();
  ws.order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (out.units[i] > 0 && costs.slope[i] < 0.0 && out.units[i] < caps[i]) {
      ws.order.push_back(checked_i32(i));
    }
  }
  std::sort(ws.order.begin(), ws.order.end(),
            [&costs](std::int32_t a, std::int32_t b) {
              const auto ua = checked_size(a);
              const auto ub = checked_size(b);
              if (costs.slope[ua] != costs.slope[ub]) {
                return costs.slope[ua] < costs.slope[ub];
              }
              return a < b;
            });
  for (const std::int32_t idx : ws.order) {
    if (leftover == 0) break;
    const auto i = checked_size(idx);
    const std::int64_t take = std::min(caps[i] - out.units[i], leftover);
    out.units[i] += take;
    leftover -= take;
  }
  // (c) Idle users the coarse grid under-served (cap < k rounds cap' to 0):
  // activate the best static gains while capacity remains, strict wins only.
  if (leftover > 0) {
    ws.order.clear();
    const auto static_gain = [&costs, &caps](std::size_t i) {
      const std::int64_t phi = costs.slope[i] < 0.0 ? caps[i] : 1;
      return costs.idle_cost[i] -
             (costs.active_base[i] + costs.slope[i] * as_double(phi));
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (out.units[i] == 0 && caps[i] > 0 && static_gain(i) > 0.0) {
        ws.order.push_back(checked_i32(i));
      }
    }
    std::sort(ws.order.begin(), ws.order.end(),
              [&static_gain](std::int32_t a, std::int32_t b) {
                const double ga = static_gain(checked_size(a));
                const double gb = static_gain(checked_size(b));
                if (ga != gb) return ga > gb;
                return a < b;
              });
    for (const std::int32_t idx : ws.order) {
      if (leftover == 0) break;
      const auto i = checked_size(idx);
      const std::int64_t phi =
          costs.slope[i] < 0.0 ? std::min(caps[i], leftover) : 1;
      if (phi > leftover) continue;
      const double active = costs.active_base[i] + costs.slope[i] * as_double(phi);
      if (active < costs.idle_cost[i]) {
        out.units[i] = phi;
        leftover -= phi;
      }
    }
  }

  result.cost = total_cost(costs, out.units);
  result.lower_bound = dual_lower_bound(costs, caps, m_max);
  result.gap = std::max(0.0, result.cost - result.lower_bound);
  result.exact = false;
  return result;
}

EmaScheduler::EmaScheduler(EmaConfig config) : config_(config) {
  require(config_.v_weight > 0.0, "V must be positive");
  require(config_.coarsen_units >= 1, "coarsen_units must be >= 1");
}

void EmaScheduler::reset(std::size_t users) {
  queues_.reset(users);
  dp_ws_.invalidate();
  coarse_ws_.dp.invalidate();
  certificate_ = SolveCertificate{};
}

void EmaScheduler::reset_user(std::size_t user) { queues_.reset_user(user); }

Allocation EmaScheduler::allocate(const SlotContext& ctx) {
  Allocation alloc;
  allocate_into(ctx, alloc);
  return alloc;
}

// jstream: hot-path — per-slot EMA allocation; the whole solver stack
// below it (memo, separable fast path, warm start, deque kernel) inherits
// hotness through the same-TU call graph.
void EmaScheduler::allocate_into(const SlotContext& ctx, Allocation& out) {
  require(queues_.size() == ctx.user_count(),
          "EMA not reset for this user count");
  const std::size_t n = ctx.user_count();
  // The caps span below reads the SoA mirror directly, so this function needs
  // its own stale-mirror guard (the one in compute_ema_slot_costs is not a
  // contract for this frame).
  require(ctx.soa.size() == n, "SlotContext::finalize() not called before allocate");
  compute_ema_slot_costs(ctx, queues_, config_.v_weight, costs_ws_);
  adjust_costs(ctx, costs_ws_);
  // The SoA mirror already holds the caps contiguously — no per-slot copy.
  const std::span<const std::int64_t> caps{ctx.soa.alloc_cap_units.data(), n};
  {
    telemetry::ScopedTimer timer(EmaTelemetry::instance().solve_latency_us);
    solve_slot(costs_ws_, caps, ctx.capacity_units, out);
  }

  // Eq. 16 queue update with the decided allocation; frozen once a session
  // has no content left (it can never receive again, so the queue carries no
  // scheduling signal).
  const SlotSoa& soa = ctx.soa;
  for (std::size_t i = 0; i < n; ++i) {
    if (!soa.needs_data(i)) continue;
    const double kb =
        std::min(ctx.params.units_to_kb(out.units[i]), soa.remaining_kb[i]);
    queues_.update(i, ctx.params.tau_s, kb / soa.bitrate_kbps[i]);
  }

  // Observation-only: the post-update Eq. 16 queue distribution and the worst
  // queue of the slot (the user under the most rebuffering pressure).
  if (telemetry::enabled() && queues_.size() > 0) {
    auto& probes = EmaTelemetry::instance();
    probes.allocations.add();
    double max_queue = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      const double level = queues_.value(i);
      probes.queue_level_s.observe(level);
      max_queue = std::max(max_queue, level);
    }
    probes.queue_max_s.set(max_queue);
    probes.tracer.record(ctx.slot, -1, telemetry::TraceEventKind::kQueueLevel,
                         max_queue);
  }
}

void EmaScheduler::adjust_costs(const SlotContext& /*ctx*/, EmaSlotCosts& /*costs*/) {
  // Algorithm 2 solves the unmodified Eq. 3-5 cost model; predictive
  // subclasses perturb the slopes here.
}

void EmaScheduler::solve_slot(const EmaSlotCosts& costs,
                              std::span<const std::int64_t> caps,
                              std::int64_t capacity_units, Allocation& out) {
  if (config_.coarsen_units <= 1) {
    solve_min_cost_dp(costs, caps, capacity_units, dp_ws_, out);
    certificate_.last_gap = 0.0;
    ++certificate_.exact_slots;
    return;
  }
  const EmaCoarseOutcome outcome = solve_min_cost_coarse(
      costs, caps, capacity_units, config_.coarsen_units, coarse_ws_, out);
  certificate_.last_gap = outcome.gap;
  certificate_.gap_sum += outcome.gap;
  certificate_.gap_max = std::max(certificate_.gap_max, outcome.gap);
  if (outcome.exact) {
    ++certificate_.exact_slots;
  } else {
    ++certificate_.certified_slots;
  }
}

}  // namespace jstream
