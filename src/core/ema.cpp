#include "core/ema.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/units.hpp"
#include "radio/rrc.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scoped_timer.hpp"

namespace jstream {

namespace {

struct EmaTelemetry {
  telemetry::Counter& allocations;
  telemetry::Histogram& solve_latency_us;
  telemetry::Histogram& queue_level_s;
  telemetry::Gauge& queue_max_s;
  telemetry::SlotTracer& tracer;

  static EmaTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    // Eq. 16 queues are seconds of rebuffering pressure; negative values mean
    // buffered surplus, so the buckets straddle zero.
    static const std::vector<double> queue_edges =
        telemetry::linear_buckets(-8.0, 0.5, 33);
    static EmaTelemetry probes{registry.counter("ema.allocations"),
                               registry.histogram("ema.solve_latency_us"),
                               registry.histogram("ema.queue_level_s", queue_edges),
                               registry.gauge("ema.queue.max_s"),
                               registry.tracer()};
    return probes;
  }
};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Common validation + bound computation for the DP entry points. Returns
/// m_max = min(capacity, sum caps), the last reachable column of the DP.
std::int64_t dp_bound(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                      std::int64_t capacity_units) {
  const std::size_t n = caps.size();
  require(costs.idle_cost.size() == n && costs.slope.size() == n &&
              costs.active_base.size() == n,
          "cost/cap size mismatch");
  require(capacity_units >= 0, "capacity must be non-negative");
  std::int64_t cap_sum = 0;
  for (std::int64_t c : caps) {
    require(c >= 0, "caps must be non-negative");
    cap_sum += c;
  }
  return std::min(capacity_units, cap_sum);
}

}  // namespace

EmaSlotCosts compute_ema_slot_costs(const SlotContext& ctx,
                                    const LyapunovQueues& queues, double v_weight) {
  EmaSlotCosts costs;
  compute_ema_slot_costs(ctx, queues, v_weight, costs);
  return costs;
}

void compute_ema_slot_costs(const SlotContext& ctx, const LyapunovQueues& queues,
                            double v_weight, EmaSlotCosts& out) {
  require(queues.size() == ctx.user_count(), "queue/user count mismatch");
  require(ctx.radio != nullptr && ctx.power != nullptr && ctx.throughput != nullptr,
          "context missing models");
  const std::size_t n = ctx.user_count();
  out.idle_cost.resize(n);
  out.active_base.resize(n);
  out.slope.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const UserSlotInfo& user = ctx.users[i];
    // Snapshot producers cache the Definition 3/4 fits per user per slot; a
    // zero rate means the producer predates the cached-field contract.
    require(user.throughput_kbps > 0.0, "slot snapshot missing cached link rates");
    // Tail increment of staying idle this slot (Eq. 4); a radio that never
    // transmitted has no tail to pay.
    double tail_mj = 0.0;
    if (user.rrc_promoted) {
      tail_mj = slot_tail_energy_mj(*ctx.radio, user.rrc_idle_s, ctx.params.tau_s);
    }
    out.idle_cost[i] = v_weight * tail_mj;
    // Active-slot energy mirrors the transmitter's accounting: under Eq. 5 a
    // transmission slot costs P(sig)*phi*delta only; under continuous-time
    // Eq. 4 it additionally pays DCH power for the post-transfer residue,
    // i.e. Pd*tau + phi*delta*(P - Pd/v).
    double energy_per_unit = user.energy_per_kb * ctx.params.delta_kb;
    out.active_base[i] = 0.0;
    if (ctx.radio->continuous_tail) {
      out.active_base[i] = v_weight * ctx.radio->p_dch_mw * ctx.params.tau_s;
      energy_per_unit -= ctx.radio->p_dch_mw / user.throughput_kbps * ctx.params.delta_kb;
    }
    const double playback_per_unit = ctx.params.delta_kb / user.bitrate_kbps;
    out.slope[i] = v_weight * energy_per_unit - queues.value(i) * playback_per_unit;
  }
}

Allocation solve_min_cost_dp(const EmaSlotCosts& costs,
                             std::span<const std::int64_t> caps,
                             std::int64_t capacity_units) {
  EmaDpWorkspace ws;
  Allocation alloc;
  solve_min_cost_dp(costs, caps, capacity_units, ws, alloc);
  return alloc;
}

void solve_min_cost_dp(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                       std::int64_t capacity_units, EmaDpWorkspace& ws,
                       Allocation& out) {
  const std::size_t n = caps.size();
  const std::int64_t m_max = dp_bound(costs, caps, capacity_units);
  out.units.assign(n, 0);
  // Fast path: nothing can be granted, so the all-idle allocation is the only
  // feasible point; skip the DP tables entirely.
  if (n == 0 || m_max == 0) return;
  require(m_max < std::numeric_limits<std::int32_t>::max(),
          "capacity exceeds DP index range");
  const auto width = checked_size(m_max) + 1;

  ws.prev.assign(width, kInf);
  ws.cur.resize(width);
  ws.window_key.resize(width);
  ws.deque.resize(width);
  // g(i, M): best phi_i when the first i+1 users received M units in total.
  ws.choice.resize(n * width);
  ws.prev[0] = 0.0;

  double* prev = ws.prev.data();
  double* cur = ws.cur.data();
  double* dq_key = ws.window_key.data();
  std::int32_t* dq = ws.deque.data();

  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cap = caps[i];
    const double idle = costs.idle_cost[i];
    const double base = costs.active_base[i];
    const double slope = costs.slope[i];
    std::int32_t* g = &ws.choice[i * width];
    cur[0] = prev[0] + idle;
    g[0] = 0;
    if (cap == 0) {
      // The user can receive nothing: the row is a pure idle shift.
      for (std::size_t m = 1; m < width; ++m) {
        cur[m] = prev[m] + idle;
        g[m] = 0;
      }
      std::swap(prev, cur);
      continue;
    }
    // Sliding-window minimum over j in [m - cap, m - 1] of
    // key(j) = prev[j] - slope*j; the phi >= 1 candidate at column m is then
    // prev[j*] + base + slope*(m - j*). Ties keep the larger j (smaller phi),
    // matching the reference DP's ascending-phi strict-improvement scan.
    // Keys live in dq_key parallel to the index deque so the push comparison
    // needs no indirect load.
    std::size_t head = 0;
    std::size_t tail = 0;
    double prev_m = prev[0];  // rolls forward: the push key at column m uses prev[m-1]
    for (std::size_t m = 1; m < width; ++m) {
      const double key = prev_m - slope * as_double(m - 1);
      while (tail > head && key <= dq_key[tail - 1]) --tail;
      dq_key[tail] = key;
      dq[tail] = static_cast<std::int32_t>(m - 1);
      ++tail;
      // The window lower bound m - cap advances by one per column, so at most
      // one eviction per step; j = m-1 (just pushed, >= m - cap) survives it,
      // so the deque is never left empty.
      if (static_cast<std::int64_t>(dq[head]) < checked_index(m) - cap) ++head;
      prev_m = prev[m];
      double best = prev_m + idle;
      std::int32_t best_phi = 0;
      const auto j = checked_size(dq[head]);
      const auto phi = checked_index(m - j);
      const double candidate = prev[j] + base + slope * as_double(phi);
      if (candidate < best) {
        best = candidate;
        best_phi = static_cast<std::int32_t>(phi);
      }
      cur[m] = best;
      g[m] = best_phi;
    }
    std::swap(prev, cur);
  }

  // D_N = argmin_M a[N][M], then backtrack (Algorithm 2 steps 15-18).
  std::size_t m = 0;
  for (std::size_t candidate = 1; candidate < width; ++candidate) {
    if (prev[candidate] < prev[m]) m = candidate;
  }
  for (std::size_t i = n; i-- > 0;) {
    const std::int32_t phi = ws.choice[i * width + m];
    out.units[i] = phi;
    m -= checked_size(phi);
  }
}

Allocation solve_min_cost_dp_reference(const EmaSlotCosts& costs,
                                       std::span<const std::int64_t> caps,
                                       std::int64_t capacity_units) {
  const std::size_t n = caps.size();
  const std::int64_t m_max = dp_bound(costs, caps, capacity_units);
  Allocation alloc = Allocation::zeros(n);
  if (n == 0) return alloc;
  const auto width = checked_size(m_max) + 1;

  std::vector<double> prev(width, kInf);
  std::vector<double> cur(width, kInf);
  // g(i, M): best phi_i when the first i+1 users received M units in total.
  std::vector<std::int32_t> choice(n * width, 0);
  prev[0] = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cap = caps[i];
    const double idle = costs.idle_cost[i];
    const double base = costs.active_base[i];
    const double slope = costs.slope[i];
    std::int32_t* g = &choice[i * width];
    for (std::size_t m = 0; m < width; ++m) {
      // phi = 0 branch.
      double best = prev[m] + idle;
      std::int32_t best_phi = 0;
      // phi >= 1 branches.
      const auto phi_max = std::min(cap, checked_index(m));
      for (std::int64_t phi = 1; phi <= phi_max; ++phi) {
        const double candidate = prev[m - checked_size(phi)] + base +
                                 slope * as_double(phi);
        if (candidate < best) {
          best = candidate;
          best_phi = static_cast<std::int32_t>(phi);
        }
      }
      cur[m] = best;
      g[m] = best_phi;
    }
    std::swap(prev, cur);
  }

  // D_N = argmin_M a[N][M], then backtrack (Algorithm 2 steps 15-18).
  std::size_t m = 0;
  for (std::size_t candidate = 1; candidate < width; ++candidate) {
    if (prev[candidate] < prev[m]) m = candidate;
  }
  for (std::size_t i = n; i-- > 0;) {
    const std::int32_t phi = choice[i * width + m];
    alloc.units[i] = phi;
    m -= checked_size(phi);
  }
  return alloc;
}

EmaScheduler::EmaScheduler(EmaConfig config) : config_(config) {
  require(config_.v_weight > 0.0, "V must be positive");
}

void EmaScheduler::reset(std::size_t users) { queues_.reset(users); }

void EmaScheduler::reset_user(std::size_t user) { queues_.reset_user(user); }

Allocation EmaScheduler::allocate(const SlotContext& ctx) {
  Allocation alloc;
  allocate_into(ctx, alloc);
  return alloc;
}

void EmaScheduler::allocate_into(const SlotContext& ctx, Allocation& out) {
  require(queues_.size() == ctx.user_count(),
          "EMA not reset for this user count");
  const std::size_t n = ctx.user_count();
  compute_ema_slot_costs(ctx, queues_, config_.v_weight, costs_ws_);
  caps_ws_.resize(n);
  for (std::size_t i = 0; i < n; ++i) caps_ws_[i] = ctx.users[i].alloc_cap_units;
  {
    telemetry::ScopedTimer timer(EmaTelemetry::instance().solve_latency_us);
    solve_slot(costs_ws_, caps_ws_, ctx.capacity_units, out);
  }

  // Eq. 16 queue update with the decided allocation; frozen once a session
  // has no content left (it can never receive again, so the queue carries no
  // scheduling signal).
  for (std::size_t i = 0; i < n; ++i) {
    const UserSlotInfo& user = ctx.users[i];
    if (!user.needs_data) continue;
    const double kb = std::min(ctx.params.units_to_kb(out.units[i]), user.remaining_kb);
    queues_.update(i, ctx.params.tau_s, kb / user.bitrate_kbps);
  }

  // Observation-only: the post-update Eq. 16 queue distribution and the worst
  // queue of the slot (the user under the most rebuffering pressure).
  if (telemetry::enabled() && queues_.size() > 0) {
    auto& probes = EmaTelemetry::instance();
    probes.allocations.add();
    double max_queue = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      const double level = queues_.value(i);
      probes.queue_level_s.observe(level);
      max_queue = std::max(max_queue, level);
    }
    probes.queue_max_s.set(max_queue);
    probes.tracer.record(ctx.slot, -1, telemetry::TraceEventKind::kQueueLevel,
                         max_queue);
  }
}

void EmaScheduler::solve_slot(const EmaSlotCosts& costs,
                              std::span<const std::int64_t> caps,
                              std::int64_t capacity_units, Allocation& out) {
  solve_min_cost_dp(costs, caps, capacity_units, dp_ws_, out);
}

}  // namespace jstream
