#include "core/ema.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "radio/rrc.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scoped_timer.hpp"

namespace jstream {

namespace {

struct EmaTelemetry {
  telemetry::Counter& allocations;
  telemetry::Histogram& solve_latency_us;
  telemetry::Histogram& queue_level_s;
  telemetry::Gauge& queue_max_s;
  telemetry::SlotTracer& tracer;

  static EmaTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    // Eq. 16 queues are seconds of rebuffering pressure; negative values mean
    // buffered surplus, so the buckets straddle zero.
    static const std::vector<double> queue_edges =
        telemetry::linear_buckets(-8.0, 0.5, 33);
    static EmaTelemetry probes{registry.counter("ema.allocations"),
                               registry.histogram("ema.solve_latency_us"),
                               registry.histogram("ema.queue_level_s", queue_edges),
                               registry.gauge("ema.queue.max_s"),
                               registry.tracer()};
    return probes;
  }
};

}  // namespace

EmaSlotCosts compute_ema_slot_costs(const SlotContext& ctx,
                                    const LyapunovQueues& queues, double v_weight) {
  require(queues.size() == ctx.user_count(), "queue/user count mismatch");
  require(ctx.radio != nullptr && ctx.power != nullptr && ctx.throughput != nullptr,
          "context missing models");
  const std::size_t n = ctx.user_count();
  EmaSlotCosts costs;
  costs.idle_cost.resize(n);
  costs.active_base.resize(n);
  costs.slope.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const UserSlotInfo& user = ctx.users[i];
    // Tail increment of staying idle this slot (Eq. 4); a radio that never
    // transmitted has no tail to pay.
    double tail_mj = 0.0;
    if (user.rrc_promoted) {
      tail_mj = slot_tail_energy_mj(*ctx.radio, user.rrc_idle_s, ctx.params.tau_s);
    }
    costs.idle_cost[i] = v_weight * tail_mj;
    // Active-slot energy mirrors the transmitter's accounting: under Eq. 5 a
    // transmission slot costs P(sig)*phi*delta only; under continuous-time
    // Eq. 4 it additionally pays DCH power for the post-transfer residue,
    // i.e. Pd*tau + phi*delta*(P - Pd/v).
    double energy_per_unit = ctx.power->energy_per_kb(user.signal_dbm) * ctx.params.delta_kb;
    costs.active_base[i] = 0.0;
    if (ctx.radio->continuous_tail) {
      costs.active_base[i] = v_weight * ctx.radio->p_dch_mw * ctx.params.tau_s;
      const double v_kbps = ctx.throughput->throughput_kbps(user.signal_dbm);
      energy_per_unit -= ctx.radio->p_dch_mw / v_kbps * ctx.params.delta_kb;
    }
    const double playback_per_unit = ctx.params.delta_kb / user.bitrate_kbps;
    costs.slope[i] = v_weight * energy_per_unit - queues.value(i) * playback_per_unit;
  }
  return costs;
}

Allocation solve_min_cost_dp(const EmaSlotCosts& costs,
                             std::span<const std::int64_t> caps,
                             std::int64_t capacity_units) {
  const std::size_t n = caps.size();
  require(costs.idle_cost.size() == n && costs.slope.size() == n &&
              costs.active_base.size() == n,
          "cost/cap size mismatch");
  require(capacity_units >= 0, "capacity must be non-negative");
  Allocation alloc = Allocation::zeros(n);
  if (n == 0) return alloc;

  std::int64_t cap_sum = 0;
  for (std::int64_t c : caps) {
    require(c >= 0, "caps must be non-negative");
    cap_sum += c;
  }
  const std::int64_t m_max = std::min(capacity_units, cap_sum);
  const auto width = static_cast<std::size_t>(m_max) + 1;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(width, kInf);
  std::vector<double> cur(width, kInf);
  // g(i, M): best phi_i when the first i+1 users received M units in total.
  std::vector<std::int32_t> choice(n * width, 0);
  prev[0] = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const auto cap = static_cast<std::int64_t>(caps[i]);
    const double idle = costs.idle_cost[i];
    const double base = costs.active_base[i];
    const double slope = costs.slope[i];
    std::int32_t* g = &choice[i * width];
    for (std::size_t m = 0; m < width; ++m) {
      // phi = 0 branch.
      double best = prev[m] + idle;
      std::int32_t best_phi = 0;
      // phi >= 1 branches.
      const auto phi_max = std::min<std::int64_t>(cap, static_cast<std::int64_t>(m));
      for (std::int64_t phi = 1; phi <= phi_max; ++phi) {
        const double candidate = prev[m - static_cast<std::size_t>(phi)] + base +
                                 slope * static_cast<double>(phi);
        if (candidate < best) {
          best = candidate;
          best_phi = static_cast<std::int32_t>(phi);
        }
      }
      cur[m] = best;
      g[m] = best_phi;
    }
    std::swap(prev, cur);
  }

  // D_N = argmin_M a[N][M], then backtrack (Algorithm 2 steps 15-18).
  std::size_t m = 0;
  for (std::size_t candidate = 1; candidate < width; ++candidate) {
    if (prev[candidate] < prev[m]) m = candidate;
  }
  for (std::size_t i = n; i-- > 0;) {
    const std::int32_t phi = choice[i * width + m];
    alloc.units[i] = phi;
    m -= static_cast<std::size_t>(phi);
  }
  return alloc;
}

EmaScheduler::EmaScheduler(EmaConfig config) : config_(config) {
  require(config_.v_weight > 0.0, "V must be positive");
}

void EmaScheduler::reset(std::size_t users) { queues_.reset(users); }

Allocation EmaScheduler::allocate(const SlotContext& ctx) {
  require(queues_.size() == ctx.user_count(),
          "EMA not reset for this user count");
  const EmaSlotCosts costs = compute_ema_slot_costs(ctx, queues_, config_.v_weight);
  std::vector<std::int64_t> caps;
  caps.reserve(ctx.user_count());
  for (const auto& user : ctx.users) caps.push_back(user.alloc_cap_units);
  Allocation alloc;
  {
    telemetry::ScopedTimer timer(EmaTelemetry::instance().solve_latency_us);
    alloc = solve_slot(costs, caps, ctx.capacity_units);
  }

  // Eq. 16 queue update with the decided allocation; frozen once a session
  // has no content left (it can never receive again, so the queue carries no
  // scheduling signal).
  for (std::size_t i = 0; i < ctx.user_count(); ++i) {
    const UserSlotInfo& user = ctx.users[i];
    if (!user.needs_data) continue;
    const double kb = std::min(ctx.params.units_to_kb(alloc.units[i]), user.remaining_kb);
    queues_.update(i, ctx.params.tau_s, kb / user.bitrate_kbps);
  }

  // Observation-only: the post-update Eq. 16 queue distribution and the worst
  // queue of the slot (the user under the most rebuffering pressure).
  if (telemetry::enabled() && queues_.size() > 0) {
    auto& probes = EmaTelemetry::instance();
    probes.allocations.add();
    double max_queue = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      const double level = queues_.value(i);
      probes.queue_level_s.observe(level);
      max_queue = std::max(max_queue, level);
    }
    probes.queue_max_s.set(max_queue);
    probes.tracer.record(ctx.slot, -1, telemetry::TraceEventKind::kQueueLevel,
                         max_queue);
  }
  return alloc;
}

Allocation EmaScheduler::solve_slot(const EmaSlotCosts& costs,
                                    std::span<const std::int64_t> caps,
                                    std::int64_t capacity_units) const {
  return solve_min_cost_dp(costs, caps, capacity_units);
}

}  // namespace jstream
