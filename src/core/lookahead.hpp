// Lookahead scheduler: an oracle-assisted online policy emulating perfect
// short-term channel prediction (Proteus [24] forecasts seconds ahead;
// Bartendr [8] schedules around predicted signal peaks). It is not part of
// the paper's proposal — it serves as a comparison point quantifying what
// prediction would buy over RTMA/EMA's prediction-free designs.
//
// Policy per slot, users in most-urgent-buffer-first order:
//   * buffer below the safety level  -> transmit the catch-up need now;
//   * current per-KB price within `price_slack` of the cheapest price in the
//     prediction window -> prefetch toward the prefetch target;
//   * otherwise defer and wait for the cheaper predicted slot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gateway/scheduler.hpp"

namespace jstream {

/// Lookahead policy parameters. The defaults ride the paper scenario's
/// signal peaks: a horizon of half the sine period sees the next crest, and
/// the deep prefetch target buffers most of the inter-crest stretch so the
/// radio can sleep through it (tail cost amortized over hundreds of slots).
struct LookaheadConfig {
  std::int64_t horizon_slots = 300;  ///< prediction window length
  double safety_buffer_s = 4.0;      ///< always transmit below this level
  double prefetch_buffer_s = 240.0;  ///< fill toward this at good prices
  double price_slack = 1.35;         ///< "good" = within 35% of the window best
  double catchup_margin_s = 20.0;    ///< safety refill tops up to safety+margin
};

/// Prediction-assisted scheduler. Construct with forecasts from
/// make_signal_forecast over at least the simulation horizon.
class LookaheadScheduler final : public Scheduler {
 public:
  LookaheadScheduler(LookaheadConfig config,
                     std::vector<std::vector<double>> signal_forecast_dbm);

  [[nodiscard]] std::string name() const override { return "lookahead"; }
  void reset(std::size_t users) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;

  [[nodiscard]] const LookaheadConfig& config() const noexcept { return config_; }

 private:
  /// Cheapest predicted per-KB price for `user` in (slot, slot+horizon].
  [[nodiscard]] double best_future_price(const SlotContext& ctx, std::size_t user) const;

  LookaheadConfig config_;
  std::vector<std::vector<double>> forecast_dbm_;
};

}  // namespace jstream
