// Adaptive RTMA: a feedback controller around Algorithm 1.
//
// Plain RTMA needs the operator to pick the energy budget Phi up front
// (Section VI anchors it on a reference run of the default strategy). This
// extension retunes Phi online instead: it estimates the energy its own
// allocations cost (it knows the Eq. 3/4 models exactly), compares the
// serving-slot average against a target every window, and scales the budget
// multiplicatively. Useful when the channel mix drifts (capacity waves, churn)
// and a one-shot calibration would go stale.
#pragma once

#include <string>

#include "core/rtma.hpp"

namespace jstream {

/// Controller configuration.
struct AdaptiveRtmaConfig {
  /// Target energy per served user-slot (mJ) — what alpha * E_default anchors
  /// in the static scheme.
  double target_energy_mj = 1000.0;

  /// Slots between budget adjustments.
  std::int64_t window_slots = 50;

  /// Per-window multiplicative step bound: budget *= clamp(target/measured,
  /// 1/max_step, max_step).
  double max_step = 1.5;

  /// Budget clamp range, mJ (keeps Eq. 12 solvable).
  double min_budget_mj = 100.0;
  double max_budget_mj = 5000.0;

  /// Inner RTMA settings (its energy_budget_mj is the controller's initial
  /// budget when finite, else target_energy_mj).
  RtmaConfig rtma;
};

/// RTMA with an online energy-budget controller.
class AdaptiveRtmaScheduler final : public Scheduler {
 public:
  explicit AdaptiveRtmaScheduler(AdaptiveRtmaConfig config = {});

  [[nodiscard]] std::string name() const override { return "rtma-adaptive"; }
  void reset(std::size_t users) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;
  void allocate_into(const SlotContext& ctx, Allocation& out) override;

  /// Current budget Phi (mJ per served user-slot).
  [[nodiscard]] double current_budget_mj() const noexcept {
    return inner_.config().energy_budget_mj;
  }

  /// Serving-slot energy measured over the last completed window (mJ);
  /// zero before the first window completes.
  [[nodiscard]] double last_window_energy_mj() const noexcept {
    return last_window_energy_mj_;
  }

  [[nodiscard]] const AdaptiveRtmaConfig& config() const noexcept { return config_; }

 private:
  AdaptiveRtmaConfig config_;
  RtmaScheduler inner_;
  std::int64_t slots_in_window_ = 0;
  double window_energy_mj_ = 0.0;
  std::int64_t window_tx_user_slots_ = 0;
  double last_window_energy_mj_ = 0.0;
};

}  // namespace jstream
