// Eq. 12: conversion of a per-user-slot energy budget Phi into a signal
// strength admission threshold phi.
//
// The paper estimates the energy of serving a user in one slot as the mean of
// the full-rate transmission energy and the tail energy:
//
//   Phi = 1/2 * [ P(phi) * v(phi) * tau + tau * P_tail ]
//
// With the Eq. 24 fits, P(sig)*v(sig) decreases as the signal strengthens, so
// the slot cost is monotonically decreasing in RSSI and the budget maps to a
// unique minimum admissible signal strength. The solver below only assumes
// that monotonicity (bisection), so alternative link fits keep working.
#pragma once

#include "radio/link_model.hpp"

namespace jstream {

/// Inputs of the Eq. 12 conversion.
struct EnergyThresholdSpec {
  double budget_mj = 0.0;       ///< Phi: admissible energy per user-slot
  double tau_s = 1.0;           ///< slot length
  /// P_tail: the expected energy of one slot inside the RRC tail. The paper
  /// leaves this term unspecified; RTMA defaults it to the radio profile's
  /// tail-window average power (543.7 mW for the paper's 3G parameters).
  double tail_power_mw = 543.7;
  double min_dbm = -110.0;      ///< search range
  double max_dbm = -50.0;
};

/// Estimated energy (mJ) of serving one user at full rate for a slot at the
/// given signal strength, per Eq. 12's cost expression.
[[nodiscard]] double slot_energy_estimate_mj(const EnergyThresholdSpec& spec,
                                             const ThroughputModel& throughput,
                                             const PowerModel& power,
                                             double signal_dbm);

/// Solves Eq. 12 for phi: the weakest signal strength whose estimated slot
/// energy still fits in the budget. Returns:
///   - spec.min_dbm when even the weakest signal fits (no user is filtered);
///   - a value > spec.max_dbm when no signal fits (every user is filtered).
[[nodiscard]] double signal_threshold_dbm(const EnergyThresholdSpec& spec,
                                          const ThroughputModel& throughput,
                                          const PowerModel& power);

}  // namespace jstream
