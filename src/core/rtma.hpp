// RTMA — Rebuffering Time Minimization Algorithm (Algorithm 1, Section IV).
//
// Minimizes the average rebuffering time PC subject to the per-user-slot
// energy bound PE <= Phi (Eq. 10-11; the unconstrained problem is NP-hard via
// multi-choice knapsack). Per slot:
//
//   1. sort users by required data rate p_i ascending (cheapest smooth
//      playback first);
//   2. convert the energy budget Phi into a signal admission threshold phi
//      (Eq. 12) and skip users whose RSSI is below it;
//   3. round-robin passes: each eligible user receives up to its slot need
//      phi_need = ceil(tau * p_i / delta) per pass, until the base-station
//      capacity or every user's link bound is exhausted. Later passes let
//      users buffer ahead, keeping the bandwidth fully utilized.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gateway/scheduler.hpp"

namespace jstream {

/// RTMA configuration.
struct RtmaConfig {
  /// Phi: admissible energy per user-slot in mJ. Infinity disables the
  /// Eq. 12 signal filter (pure rebuffering minimization).
  double energy_budget_mj = std::numeric_limits<double>::infinity();

  /// P_tail used in Eq. 12. NaN selects the radio profile's DCH power.
  double tail_power_mw = std::numeric_limits<double>::quiet_NaN();

  /// Signal range for the threshold search; defaults match the paper sweep.
  double min_dbm = -110.0;
  double max_dbm = -50.0;
};

/// Algorithm 1 of the paper.
class RtmaScheduler final : public Scheduler {
 public:
  explicit RtmaScheduler(RtmaConfig config = {});

  [[nodiscard]] std::string name() const override { return "rtma"; }
  void reset(std::size_t users) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;
  void allocate_into(const SlotContext& ctx, Allocation& out) override;

  /// The Eq. 12 threshold used in the most recent slot (for diagnostics;
  /// -infinity when the budget is unconstrained).
  [[nodiscard]] double last_threshold_dbm() const noexcept { return last_threshold_dbm_; }

  [[nodiscard]] const RtmaConfig& config() const noexcept { return config_; }

  /// Retunes the energy budget Phi (mJ per served user-slot); used by the
  /// adaptive controller. Must be positive.
  void set_energy_budget(double budget_mj);

 private:
  RtmaConfig config_;
  double last_threshold_dbm_ = -std::numeric_limits<double>::infinity();
  // Per-slot workspaces (sort order, per-user needs) reused across slots so
  // the steady-state path stays allocation-free.
  std::vector<std::size_t> order_;
  std::vector<std::int64_t> need_;
};

}  // namespace jstream
