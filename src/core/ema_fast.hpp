// EMA-Fast — slope-greedy solver for EMA's per-slot problem (ablation).
//
// The reduced per-user cost is linear in phi for phi >= 1 (see EmaSlotCosts),
// so the slot problem is a knapsack over linear segments with an activation
// jump at phi = 0. The greedy picks, per user, the unconstrained best choice
// among {0, 1, cap}, then fits choices under the capacity by descending
// gain-per-unit, shrinking negative-slope users when the budget binds.
//
// This is not always exactly optimal (the activation jump makes the problem
// non-convex), but property tests show it matches the DP objective within a
// small tolerance while running in O(N log N) instead of the exact solver's
// O(N * M); bench_ablation_ema_solver quantifies the trade-off.
#pragma once

#include <string>
#include <vector>

#include "core/ema.hpp"

namespace jstream {

/// Reusable scratch for solve_min_cost_greedy (see EmaDpWorkspace for the
/// ownership pattern).
struct EmaGreedyWorkspace {
  /// One user's unconstrained best active choice.
  struct Want {
    std::size_t user = 0;
    std::int64_t phi = 0;
    double gain = 0.0;  ///< idle_cost - slope*phi: improvement over staying idle
  };
  std::vector<Want> wants;
  std::vector<std::size_t> active;
};

/// Greedy variant of the slot solver, exposed standalone for testing.
[[nodiscard]] Allocation solve_min_cost_greedy(const EmaSlotCosts& costs,
                                               std::span<const std::int64_t> caps,
                                               std::int64_t capacity_units);

/// Workspace variant: solves into `out`; allocation-free once warmed up.
void solve_min_cost_greedy(const EmaSlotCosts& costs,
                           std::span<const std::int64_t> caps,
                           std::int64_t capacity_units, EmaGreedyWorkspace& ws,
                           Allocation& out);

/// EMA with the greedy slot solver (identical queue dynamics to EmaScheduler).
class EmaFastScheduler final : public EmaScheduler {
 public:
  explicit EmaFastScheduler(EmaConfig config = {}) : EmaScheduler(config) {}

  [[nodiscard]] std::string name() const override { return "ema-fast"; }

  /// The greedy solver is a heuristic without an optimality bound, so it
  /// publishes no certificate (the base class would claim gap 0).
  [[nodiscard]] const SolveCertificate* solve_certificate() const override {
    return nullptr;
  }

 protected:
  void solve_slot(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                  std::int64_t capacity_units, Allocation& out) override {
    solve_min_cost_greedy(costs, caps, capacity_units, greedy_ws_, out);
  }

 private:
  EmaGreedyWorkspace greedy_ws_;
};

}  // namespace jstream
