// EMA-Fast — slope-greedy solver for EMA's per-slot problem (ablation).
//
// The reduced per-user cost is linear in phi for phi >= 1 (see EmaSlotCosts),
// so the slot problem is a knapsack over linear segments with an activation
// jump at phi = 0. The greedy picks, per user, the unconstrained best choice
// among {0, 1, cap}, then fits choices under the capacity by descending
// gain-per-unit, shrinking negative-slope users when the budget binds.
//
// This is not always exactly optimal (the activation jump makes the problem
// non-convex), but property tests show it matches the DP objective within a
// small tolerance while running in O(N log N) instead of O(N * M * phi_max);
// bench_ablation_ema_solver quantifies the trade-off.
#pragma once

#include <string>

#include "core/ema.hpp"

namespace jstream {

/// Greedy variant of the slot solver, exposed standalone for testing.
[[nodiscard]] Allocation solve_min_cost_greedy(const EmaSlotCosts& costs,
                                               std::span<const std::int64_t> caps,
                                               std::int64_t capacity_units);

/// EMA with the greedy slot solver (identical queue dynamics to EmaScheduler).
class EmaFastScheduler final : public EmaScheduler {
 public:
  explicit EmaFastScheduler(EmaConfig config = {}) : EmaScheduler(config) {}

  [[nodiscard]] std::string name() const override { return "ema-fast"; }

 protected:
  [[nodiscard]] Allocation solve_slot(const EmaSlotCosts& costs,
                                      std::span<const std::int64_t> caps,
                                      std::int64_t capacity_units) const override {
    return solve_min_cost_greedy(costs, caps, capacity_units);
  }
};

}  // namespace jstream
