#include "core/lyapunov.hpp"

#include "common/error.hpp"

namespace jstream {

LyapunovQueues::LyapunovQueues(std::size_t users) : queues_(users, 0.0) {}

void LyapunovQueues::reset(std::size_t users) { queues_.assign(users, 0.0); }

void LyapunovQueues::reset_user(std::size_t user) {
  require(user < queues_.size(), "unknown queue");
  queues_[user] = 0.0;
}

void LyapunovQueues::update(std::size_t user, double tau_s, double shard_playback_s) {
  require(user < queues_.size(), "unknown queue");
  require(tau_s > 0.0, "slot length must be positive");
  require(shard_playback_s >= 0.0, "shard playback time must be non-negative");
  queues_[user] += tau_s - shard_playback_s;
}

double LyapunovQueues::value(std::size_t user) const {
  require(user < queues_.size(), "unknown queue");
  return queues_[user];
}

double LyapunovQueues::lyapunov_function() const noexcept {
  double sum = 0.0;
  for (double q : queues_) sum += q * q;
  return 0.5 * sum;
}

double lyapunov_drift_bound(double tau_s, std::span<const double> t_max_s) {
  require(tau_s > 0.0, "slot length must be positive");
  double b = 0.0;
  for (double t_max : t_max_s) {
    require(t_max >= 0.0, "t_max must be non-negative");
    b += tau_s * tau_s + t_max * t_max;
  }
  return 0.5 * b;
}

}  // namespace jstream
