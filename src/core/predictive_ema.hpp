// Predictive EMA: Algorithm 2's drift-plus-penalty slot DP with an H-slot
// predicted-price deferral term in the cost model (the ROADMAP's "predictive
// scheduling against the oracle bound" item; Abou-zeid/Hassanein/Valentin,
// "Exploiting Rate Predictions in Wireless Networks").
//
// Per user i at slot n, let P_now be the per-KB price the collector reports,
// P_best = min_{1 <= h <= H} P(forecast_i(n + h)) the best price the forecast
// promises inside the horizon, and P_mean the horizon's average price — the
// rate the user would pay by pacing through the window instead of timing it.
// The slot cost's per-unit slope gains two terms:
//
//   * deferral surcharge, + V * defer_weight * (P_now - P_best) * delta when
//     P_now > P_best — the channel is predicted to improve; transmitting now
//     is charged the predicted saving of waiting for the cheapest forecast
//     slot, but only when the Eq. 3-5 buffer can ride out the wait
//     (buffer_s >= wait + safety_margin_s) — a draining client keeps the
//     plain EMA cost and the Eq. 16 queue pressure still forces service;
//   * crest credit, + V * prefetch_weight * (P_now - P_mean) * delta when
//     P_now < P_mean — this slot is cheaper than pacing through the horizon
//     would be; the credit makes the DP buy ahead through the crest, batching
//     delivery where the oracle's transportation solve would put it. The
//     credit is against the horizon MEAN, not P_best: with periodic fading a
//     window long enough to be useful always contains another crest, so
//     P_best ~= P_now at the very slots that should prefetch and a
//     best-price credit never fires (measured: it recovers ~2% of the oracle
//     headroom where the mean-referenced credit recovers over half).
//
// The surcharge empties expensive slots into the Eq. 16 queue; the credit
// releases the queue (and buys ahead of it) at the crests. Together they
// reshape WHEN the exact DP spends capacity without touching its constraint
// set — Eq. 1/2 feasibility and the rebuffering guarantee are the solver's,
// unchanged.
//
// The perturbation lives entirely in the EmaScheduler::adjust_costs hook:
// the DP stays exact for the adjusted objective (certificate gap 0), Eq. 1/2
// feasibility is enforced by the unchanged solver, and the Eq. 16 queue
// update is untouched — so the --validate invariant checker applies as-is.
// With horizon_slots == 0 the hook is inert and the scheduler is
// bit-identical to EmaScheduler (pinned by tests/core/test_predictive_ema.cpp).
//
// Forecasts come from make_signal_forecast (sim/forecast.hpp) — perfect or
// through the tunable error model; the scheduler itself is forecast-agnostic
// and lives below the sim layer, exactly like LookaheadScheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ema.hpp"

namespace jstream {

/// Predictive extension knobs on top of EmaConfig.
struct PredictiveEmaConfig {
  /// Prediction window length H. 0 (default) disables the deferral term
  /// entirely: no forecast is read and the scheduler is bit-identical to
  /// EmaScheduler.
  std::int64_t horizon_slots = 0;
  /// Fraction of the predicted per-KB saving (P_now - P_best) charged to the
  /// current slot when the forecast promises a cheaper one. 1 prices deferral
  /// at face value; smaller values trust the forecast less.
  double defer_weight = 1.0;
  /// Fraction of the below-horizon-mean discount (P_mean - P_now) credited to
  /// the current slot. Values above ~P_now / (P_mean - P_now) drive the DP to
  /// buy ahead to the Eq. 1/2 caps at clear crests, which is where the oracle
  /// headroom lives; the default is tuned on the paper scenario
  /// (bench_prediction's acceptance gate).
  double prefetch_weight = 8.0;
  /// Deferral is considered only when the client buffer covers the predicted
  /// wait plus this margin (Eq. 3-5: never schedule a stall on a forecast).
  double safety_margin_s = 8.0;
};

/// Validates ranges; throws jstream::Error with a description.
void validate(const PredictiveEmaConfig& config);

/// EMA with the predicted-price deferral term. Construct with forecasts from
/// make_signal_forecast covering at least the simulation horizon (rows may be
/// empty when horizon_slots == 0).
class PredictiveEmaScheduler final : public EmaScheduler {
 public:
  PredictiveEmaScheduler(EmaConfig ema, PredictiveEmaConfig config,
                         std::vector<std::vector<double>> signal_forecast_dbm);

  [[nodiscard]] std::string name() const override { return "ema-predictive"; }
  void reset(std::size_t users) override;

  [[nodiscard]] const PredictiveEmaConfig& predictive_config() const noexcept {
    return pred_config_;
  }

  /// The forecast price table entry for (user, slot): cheapest predicted
  /// per-KB price in (slot, slot + H], the offset (in slots ahead) achieving
  /// it, and the window's mean price (the crest-credit reference). Valid once
  /// a slot has been scheduled (the tables are built lazily from the run's
  /// PowerModel). For tests/benches.
  struct PricePrediction {
    double best_price = 0.0;
    std::int64_t best_offset = 0;
    double mean_price = 0.0;
  };
  [[nodiscard]] PricePrediction price_prediction(std::size_t user,
                                                 std::int64_t slot) const;

 protected:
  void adjust_costs(const SlotContext& ctx, EmaSlotCosts& costs) override;

 private:
  /// Precomputes best_price_/best_offset_/mean_price_ for every (user, slot)
  /// via a monotone-deque sliding-window minimum plus prefix sums over each
  /// user's forecast price trajectory — O(users x slots) once per run, so the
  /// per-slot hook is a pure table read.
  void build_price_tables(const PowerModel& power);

  PredictiveEmaConfig pred_config_;
  std::vector<std::vector<double>> forecast_dbm_;
  std::vector<double> best_price_;         ///< flat [user * table_slots_ + slot]
  std::vector<std::int32_t> best_offset_;  ///< slots ahead of the best price
  std::vector<double> mean_price_;         ///< window mean (credit reference)
  std::vector<std::int32_t> window_;       ///< deque scratch for the build
  std::size_t table_slots_ = 0;
  const PowerModel* table_power_ = nullptr;  ///< model the tables were built for
};

}  // namespace jstream
