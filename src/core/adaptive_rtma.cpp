#include "core/adaptive_rtma.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

RtmaConfig initial_inner_config(const AdaptiveRtmaConfig& config) {
  RtmaConfig inner = config.rtma;
  if (!std::isfinite(inner.energy_budget_mj)) {
    inner.energy_budget_mj = config.target_energy_mj;
  }
  return inner;
}

}  // namespace

AdaptiveRtmaScheduler::AdaptiveRtmaScheduler(AdaptiveRtmaConfig config)
    : config_(config), inner_(initial_inner_config(config)) {
  require(config_.target_energy_mj > 0.0, "target energy must be positive");
  require(config_.window_slots > 0, "window must be positive");
  require(config_.max_step > 1.0, "max step must exceed 1");
  require(config_.min_budget_mj > 0.0 &&
              config_.min_budget_mj < config_.max_budget_mj,
          "budget clamp range is invalid");
}

void AdaptiveRtmaScheduler::reset(std::size_t users) {
  inner_.reset(users);
  inner_.set_energy_budget(initial_inner_config(config_).energy_budget_mj);
  slots_in_window_ = 0;
  window_energy_mj_ = 0.0;
  window_tx_user_slots_ = 0;
  last_window_energy_mj_ = 0.0;
}

Allocation AdaptiveRtmaScheduler::allocate(const SlotContext& ctx) {
  Allocation alloc;
  allocate_into(ctx, alloc);
  return alloc;
}

// jstream: hot-path — per-slot allocation over the inner RTMA.
void AdaptiveRtmaScheduler::allocate_into(const SlotContext& ctx, Allocation& out) {
  inner_.allocate_into(ctx, out);

  // Self-estimate the transmission energy of this decision from the same
  // Eq. 3 model the transmitter applies. Phi is commensurable with the
  // per-SERVING-slot energy (see DefaultReference::trans_per_tx_slot_mj), so
  // idle users' tail energy stays out of the controller signal. The loop
  // reads the SoA lanes — `energy_per_kb` is the collector's cached
  // Definition 4 fit of the same signal, so no virtual model call per user.
  const SlotSoa& soa = ctx.soa;
  require(soa.size() == ctx.user_count(),
          "SlotContext::finalize() not called before allocate");
  for (std::size_t i = 0; i < ctx.user_count(); ++i) {
    if (out.units[i] > 0) {
      const double kb =
          std::min(ctx.params.units_to_kb(out.units[i]), soa.remaining_kb[i]);
      window_energy_mj_ += soa.energy_per_kb[i] * kb;
      ++window_tx_user_slots_;
    }
  }

  if (++slots_in_window_ >= config_.window_slots) {
    double step = config_.max_step;  // nobody served: the budget is too
                                     // strict — recover by stepping up
    if (window_tx_user_slots_ > 0) {
      const double measured =
          window_energy_mj_ / as_double(window_tx_user_slots_);
      last_window_energy_mj_ = measured;
      step = std::clamp(config_.target_energy_mj / measured, 1.0 / config_.max_step,
                        config_.max_step);
    }
    const double budget =
        std::clamp(inner_.config().energy_budget_mj * step, config_.min_budget_mj,
                   config_.max_budget_mj);
    inner_.set_energy_budget(budget);
    slots_in_window_ = 0;
    window_energy_mj_ = 0.0;
    window_tx_user_slots_ = 0;
  }
}

}  // namespace jstream
