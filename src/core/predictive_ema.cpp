#include "core/predictive_ema.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/units.hpp"
#include "radio/link_model.hpp"

namespace jstream {

void validate(const PredictiveEmaConfig& config) {
  require(config.horizon_slots >= 0, "prediction horizon must be non-negative");
  require(config.defer_weight >= 0.0, "defer weight must be non-negative");
  require(config.prefetch_weight >= 0.0, "prefetch weight must be non-negative");
  require(config.safety_margin_s >= 0.0, "safety margin must be non-negative");
}

PredictiveEmaScheduler::PredictiveEmaScheduler(
    EmaConfig ema, PredictiveEmaConfig config,
    std::vector<std::vector<double>> signal_forecast_dbm)
    : EmaScheduler(ema),
      pred_config_(config),
      forecast_dbm_(std::move(signal_forecast_dbm)) {
  validate(pred_config_);
  if (pred_config_.horizon_slots > 0) {
    require(!forecast_dbm_.empty(), "predictive EMA needs a forecast");
    for (const std::vector<double>& trace : forecast_dbm_) {
      require(!trace.empty(), "forecast rows must cover at least one slot");
      require(trace.size() == forecast_dbm_.front().size(),
              "forecast rows must share one horizon");
    }
  }
}

void PredictiveEmaScheduler::reset(std::size_t users) {
  EmaScheduler::reset(users);
  if (pred_config_.horizon_slots > 0) {
    require(forecast_dbm_.size() == users,
            "forecast population does not match the scenario");
  }
  // The price tables depend on the run's PowerModel; drop them so the first
  // scheduled slot rebuilds against whatever model this run carries.
  table_power_ = nullptr;
}

PredictiveEmaScheduler::PricePrediction PredictiveEmaScheduler::price_prediction(
    std::size_t user, std::int64_t slot) const {
  require(table_slots_ > 0 && table_power_ != nullptr,
          "price tables not built yet (schedule at least one slot)");
  require(user < forecast_dbm_.size(), "user out of range");
  const std::size_t at =
      user * table_slots_ +
      std::min(checked_size(std::max<std::int64_t>(slot, 0)), table_slots_ - 1);
  return {best_price_[at], best_offset_[at], mean_price_[at]};
}

void PredictiveEmaScheduler::build_price_tables(const PowerModel& power) {
  const std::size_t users = forecast_dbm_.size();
  table_slots_ = forecast_dbm_.front().size();
  best_price_.resize(users * table_slots_);
  best_offset_.resize(users * table_slots_);
  mean_price_.resize(users * table_slots_);
  window_.resize(table_slots_);
  const std::int64_t slots = checked_index(table_slots_);
  const std::int64_t horizon = pred_config_.horizon_slots;
  std::vector<double> prices(table_slots_);
  std::vector<double> prefix(table_slots_ + 1);

  for (std::size_t user = 0; user < users; ++user) {
    const std::vector<double>& trace = forecast_dbm_[user];
    for (std::size_t m = 0; m < table_slots_; ++m) {
      prices[m] = power.energy_per_kb(trace[m]);
    }
    const std::size_t base = user * table_slots_;
    // Beyond the last forecast sample the window clamps to it (the same
    // convention LookaheadScheduler::best_future_price uses).
    best_price_[base + table_slots_ - 1] = prices[table_slots_ - 1];
    best_offset_[base + table_slots_ - 1] = 1;
    // Monotone-deque sliding-window minimum over (n, n + H], walked right to
    // left. window_[head..tail) holds candidate indices with strictly
    // increasing prices; an older (farther) candidate priced >= a newer one
    // is dominated (the newer is cheaper AND stays in the window longer), so
    // the head is always the window minimum — ties resolve to the nearest
    // slot, the offset the safety check should measure the wait against.
    std::int64_t head = 0;
    std::int64_t tail = 0;
    for (std::int64_t n = slots - 2; n >= 0; --n) {
      const std::int64_t j = n + 1;
      while (tail > head &&
             prices[checked_size(window_[checked_size(tail - 1)])] >=
                 prices[checked_size(j)]) {
        --tail;
      }
      window_[checked_size(tail++)] = checked_i32(j);
      while (window_[checked_size(head)] > n + horizon) ++head;
      const std::int64_t at_min = window_[checked_size(head)];
      best_price_[base + checked_size(n)] = prices[checked_size(at_min)];
      best_offset_[base + checked_size(n)] = checked_i32(at_min - n);
    }
    // Window means via prefix sums: mean over (n, min(n + H, last)], the
    // price of pacing through the window instead of timing it (the crest
    // credit's reference). The last slot keeps its own price, matching the
    // best-price clamp above.
    prefix[0] = 0.0;
    for (std::size_t m = 0; m < table_slots_; ++m) prefix[m + 1] = prefix[m] + prices[m];
    mean_price_[base + table_slots_ - 1] = prices[table_slots_ - 1];
    for (std::int64_t n = slots - 2; n >= 0; --n) {
      const std::int64_t hi = std::min(n + horizon, slots - 1);
      mean_price_[base + checked_size(n)] =
          (prefix[checked_size(hi + 1)] - prefix[checked_size(n + 1)]) /
          as_double(hi - n);
    }
  }
  table_power_ = &power;
}

// jstream: hot-path — the per-slot predictive deferral term: O(N) reads of
// the prebuilt windowed-minimum price tables on the EMA allocate path; the
// lazy table build runs once per (reset, PowerModel) pair, outside the
// steady state (pinned by tests/perf/test_zero_alloc_slot.cpp).
void PredictiveEmaScheduler::adjust_costs(const SlotContext& ctx, EmaSlotCosts& costs) {
  if (pred_config_.horizon_slots <= 0) return;
  require(ctx.power != nullptr, "predictive EMA needs the slot power model");
  const std::size_t n = ctx.user_count();
  require(forecast_dbm_.size() == n, "forecast/user count mismatch");
  require(ctx.soa.size() == n, "predictive EMA needs finalized SoA slot state");
  if (table_power_ != ctx.power) build_price_tables(*ctx.power);

  const SlotSoa& soa = ctx.soa;
  const double scale = config().v_weight * ctx.params.delta_kb;
  const double tau = ctx.params.tau_s;
  const std::size_t slot =
      std::min(checked_size(std::max<std::int64_t>(ctx.slot, 0)), table_slots_ - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (!soa.needs_data(i) || soa.alloc_cap_units[i] <= 0) continue;
    const std::size_t at = i * table_slots_ + slot;
    const double p_now = soa.energy_per_kb[i];
    double adjust_per_kb = 0.0;
    // Deferral surcharge: the forecast promises a cheaper slot within H —
    // charge transmitting now the predicted saving, but only when the buffer
    // can ride out the wait (Eq. 3-5: never schedule a stall on a forecast);
    // a draining client keeps the plain EMA cost and the Eq. 16 queue still
    // forces service.
    const double save_per_kb = p_now - best_price_[at];
    if (save_per_kb > 0.0 &&
        soa.buffer_s[i] >=
            as_double(best_offset_[at]) * tau + pred_config_.safety_margin_s) {
      adjust_per_kb += pred_config_.defer_weight * save_per_kb;
    }
    // Crest credit: this slot beats pacing through the horizon — credit the
    // discount so the DP buys ahead here (see the header on why the
    // reference is the window mean, not the window minimum).
    const double crest_per_kb = p_now - mean_price_[at];
    if (crest_per_kb < 0.0) {
      adjust_per_kb += pred_config_.prefetch_weight * crest_per_kb;
    }
    costs.slope[i] += scale * adjust_per_kb;
  }
}

}  // namespace jstream
