#include "core/energy_threshold.hpp"

#include "common/error.hpp"

namespace jstream {

double slot_energy_estimate_mj(const EnergyThresholdSpec& spec,
                               const ThroughputModel& throughput,
                               const PowerModel& power, double signal_dbm) {
  const double v = throughput.throughput_kbps(signal_dbm);
  const double p = power.energy_per_kb(signal_dbm);
  return 0.5 * (p * v * spec.tau_s + spec.tau_s * spec.tail_power_mw);
}

double signal_threshold_dbm(const EnergyThresholdSpec& spec,
                            const ThroughputModel& throughput,
                            const PowerModel& power) {
  require(spec.budget_mj >= 0.0, "energy budget must be non-negative");
  require(spec.min_dbm < spec.max_dbm, "signal range is empty");
  require(spec.tau_s > 0.0, "slot length must be positive");

  const auto cost = [&](double sig) {
    return slot_energy_estimate_mj(spec, throughput, power, sig);
  };
  // Slot cost decreases as the signal strengthens (Eq. 24 fits).
  if (cost(spec.min_dbm) <= spec.budget_mj) return spec.min_dbm;
  if (cost(spec.max_dbm) > spec.budget_mj) {
    return spec.max_dbm + 1.0;  // budget infeasible at any signal strength
  }
  double lo = spec.min_dbm;  // cost(lo) > budget
  double hi = spec.max_dbm;  // cost(hi) <= budget
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cost(mid) <= spec.budget_mj) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace jstream
