// EMA — Energy Minimization Algorithm (Algorithm 2, Section V).
//
// Minimizes the average energy PE subject to the rebuffering bound PC <= Omega
// (Eq. 13-14) via Lyapunov drift-plus-penalty: each slot solves
//
//   min sum_i f(i, phi_i),
//   f(i, phi) = V * E_i(n) + PC_i(n) * (tau - t_i(n)),   t_i = delta*phi/p_i
//
// subject to constraints (1) and (2), where E_i is the Eq. 3 transmission
// energy for phi >= 1 and the Eq. 4 tail increment for phi = 0, and PC_i is
// the Eq. 16 virtual rebuffering queue. V trades energy against rebuffering
// (Theorem 1: PE <= E* + B/V, PC <= (B + V*E*)/eps).
//
// The per-slot problem is a grouped knapsack. The paper's DP (Algorithm 2
// steps 3-18) is O(N * M * phi_max); because each user's active cost is
// linear in phi, the inner phi-loop is a sliding-window minimum
//
//   min_{1 <= phi <= cap} prev[m - phi] + slope*phi
//     = slope*m + min_{m - cap <= j <= m - 1} (prev[j] - slope*j),
//
// which a monotone deque evaluates in amortized O(1) per cell, so
// `solve_min_cost_dp` is an exact O(N * M) solver (see docs/PERFORMANCE.md
// for the derivation). The paper-literal triple loop is kept as
// `solve_min_cost_dp_reference` for differential testing and the perf gate.
// EmaFastScheduler in ema_fast.hpp solves the same slot problem with a
// slope-greedy heuristic (ablation; see DESIGN.md).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/lyapunov.hpp"
#include "gateway/scheduler.hpp"

namespace jstream {

/// EMA configuration.
struct EmaConfig {
  /// Lyapunov penalty weight V (1/mJ scale). Larger V favors energy saving
  /// over rebuffering (Section V). The default keeps the average rebuffering
  /// near the default strategy's level on the paper scenario (beta ~ 1); use
  /// calibrate_v_for_rebuffer to target a specific bound.
  double v_weight = 0.05;
};

/// Per-user costs of the slot problem, with the common PC_i*tau term dropped
/// (it does not affect the argmin). The cost of transmitting is linear in phi
/// under both tail-accounting semantics (see radio/rrc.hpp):
///   cost(0)        = idle_cost[i] = V * E_tail_slot(i)
///   cost(phi >= 1) = active_base[i] + slope[i]*phi
/// with Eq. 5 accounting: active_base = 0,
///   slope = V*P(sig_i)*delta - PC_i*delta/p_i;
/// with continuous-time Eq. 4: active_base = V*Pd*tau,
///   slope = V*delta*(P(sig_i) - Pd/v(sig_i)) - PC_i*delta/p_i.
struct EmaSlotCosts {
  std::vector<double> idle_cost;
  std::vector<double> active_base;
  std::vector<double> slope;
};

/// Evaluates the reduced per-user cost of allocating `phi` units.
[[nodiscard]] inline double ema_cost(const EmaSlotCosts& costs, std::size_t user,
                                     std::int64_t phi) noexcept {
  return phi == 0 ? costs.idle_cost[user]
                  : costs.active_base[user] + costs.slope[user] * static_cast<double>(phi);
}

/// Builds the slot costs from the cross-layer snapshot and the current queues.
[[nodiscard]] EmaSlotCosts compute_ema_slot_costs(const SlotContext& ctx,
                                                  const LyapunovQueues& queues,
                                                  double v_weight);

/// Buffer-reusing variant: overwrites `out`, recycling its vectors.
void compute_ema_slot_costs(const SlotContext& ctx, const LyapunovQueues& queues,
                            double v_weight, EmaSlotCosts& out);

/// Reusable scratch for solve_min_cost_dp. A long-lived caller (EmaScheduler,
/// the perf gate) keeps one workspace so the steady-state solve performs no
/// heap allocation; buffers only ever grow.
struct EmaDpWorkspace {
  std::vector<double> prev;           ///< DP row for users [0, i)
  std::vector<double> cur;            ///< DP row including user i
  std::vector<double> window_key;     ///< deque keys prev[j] - slope*j, parallel to `deque`
  std::vector<std::int32_t> deque;    ///< monotone deque of window indices j
  std::vector<std::int32_t> choice;   ///< g(i, M): best phi_i given M total units
};

/// Exact minimizer of sum_i cost(i, phi_i) s.t. phi_i in [0, caps[i]] and
/// sum phi_i <= capacity_units (Algorithm 2's problem), via the O(N * M)
/// sliding-window-minimum DP with backtracking.
[[nodiscard]] Allocation solve_min_cost_dp(const EmaSlotCosts& costs,
                                           std::span<const std::int64_t> caps,
                                           std::int64_t capacity_units);

/// Workspace variant: solves into `out` using `ws` scratch; allocation-free
/// once both have warmed up to the instance size.
void solve_min_cost_dp(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                       std::int64_t capacity_units, EmaDpWorkspace& ws,
                       Allocation& out);

/// The paper-literal O(N * M * phi_max) DP (Algorithm 2 steps 3-18), kept as
/// the differential-testing oracle for the O(N * M) solver and as the
/// baseline the perf regression gate measures speedup against.
[[nodiscard]] Allocation solve_min_cost_dp_reference(const EmaSlotCosts& costs,
                                                     std::span<const std::int64_t> caps,
                                                     std::int64_t capacity_units);

/// Algorithm 2 of the paper, with the exact DP slot solver.
///
/// The scheduler owns per-instance workspaces (slot costs, caps, DP scratch)
/// so the steady-state allocate_into path performs zero heap allocations.
class EmaScheduler : public Scheduler {
 public:
  explicit EmaScheduler(EmaConfig config = {});

  [[nodiscard]] std::string name() const override { return "ema"; }
  void reset(std::size_t users) override;
  void reset_user(std::size_t user) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;
  void allocate_into(const SlotContext& ctx, Allocation& out) override;

  [[nodiscard]] const LyapunovQueues& queues() const noexcept { return queues_; }
  [[nodiscard]] const EmaConfig& config() const noexcept { return config_; }

  /// Exposes the Eq. 16 queues to the paper-invariant validator.
  [[nodiscard]] std::span<const double> virtual_queues() const override {
    return queues_.values();
  }

 protected:
  /// Slot-problem solver; EmaFastScheduler overrides with the greedy solver.
  /// Writes the decision into `out` (storage recycled by the caller).
  virtual void solve_slot(const EmaSlotCosts& costs,
                          std::span<const std::int64_t> caps,
                          std::int64_t capacity_units, Allocation& out);

 private:
  EmaConfig config_;
  LyapunovQueues queues_;
  EmaSlotCosts costs_ws_;
  std::vector<std::int64_t> caps_ws_;
  EmaDpWorkspace dp_ws_;
};

}  // namespace jstream
