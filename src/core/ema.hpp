// EMA — Energy Minimization Algorithm (Algorithm 2, Section V).
//
// Minimizes the average energy PE subject to the rebuffering bound PC <= Omega
// (Eq. 13-14) via Lyapunov drift-plus-penalty: each slot solves
//
//   min sum_i f(i, phi_i),
//   f(i, phi) = V * E_i(n) + PC_i(n) * (tau - t_i(n)),   t_i = delta*phi/p_i
//
// subject to constraints (1) and (2), where E_i is the Eq. 3 transmission
// energy for phi >= 1 and the Eq. 4 tail increment for phi = 0, and PC_i is
// the Eq. 16 virtual rebuffering queue. V trades energy against rebuffering
// (Theorem 1: PE <= E* + B/V, PC <= (B + V*E*)/eps).
//
// The per-slot problem is a grouped knapsack. The paper's DP (Algorithm 2
// steps 3-18) is O(N * M * phi_max); because each user's active cost is
// linear in phi, the inner phi-loop is a sliding-window minimum
//
//   min_{1 <= phi <= cap} prev[m - phi] + slope*phi
//     = slope*m + min_{m - cap <= j <= m - 1} (prev[j] - slope*j),
//
// so the row is solvable in O(M). `solve_min_cost_dp` is the production
// exact solver; it layers three bit-identical accelerations on top
// (docs/PERFORMANCE.md, "EMA at scale"):
//
//   * an identical-instance memo and a cross-slot incremental warm start
//     (row checkpoints let a solve resume below the first changed user);
//   * a tie-margin-guarded separable fast path: when every user's
//     unconstrained optimum fits under the capacity — the common case at
//     large N — the coupled DP provably decomposes per user, O(N) total;
//   * a restructured row kernel: the cost build, the separable scan, and the
//     DP rows stream over cache-line-aligned SoA lanes (common/simd.hpp) with
//     restrict-qualified pointers, and the per-row choice table narrows to
//     int16 whenever every cap fits, halving the DP's dominant store traffic.
//     (A branch-free block prefix/suffix window-minimum was evaluated and
//     lost to the deque — its running-min scans are serial dependences and
//     its auxiliary arrays triple the row's memory traffic — so the monotone
//     deque remains the window kernel inside the restructured row.)
//
// The PR2 monotone-deque solver is kept verbatim as `solve_min_cost_dp_deque`
// (the before/after baseline and differential-test anchor), and the
// paper-literal triple loop as `solve_min_cost_dp_reference`. The production
// solver matches the deque solver allocation-for-allocation down to the last
// tie-break; tests/core/test_ema_simd.cpp enforces exact unit equality over
// randomized instances, including forced exact ties.
//
// `solve_min_cost_coarse` trades bounded optimality for speed: it solves the
// DP on capacity super-units of size k (EmaConfig::coarsen_units), refines
// greedily, and certifies the result with a Lagrangian-dual lower bound; the
// certified gap is checked against the Theorem 1 drift bound B by the
// invariant checker under --validate (an eps-additive per-slot solve keeps
// PE <= E* + (B + eps)/V).
//
// EmaFastScheduler in ema_fast.hpp solves the same slot problem with a
// slope-greedy heuristic (ablation; see DESIGN.md).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/simd.hpp"
#include "core/lyapunov.hpp"
#include "gateway/scheduler.hpp"
#include "common/units.hpp"

namespace jstream {

/// EMA configuration.
struct EmaConfig {
  /// Lyapunov penalty weight V (1/mJ scale). Larger V favors energy saving
  /// over rebuffering (Section V). The default keeps the average rebuffering
  /// near the default strategy's level on the paper scenario (beta ~ 1); use
  /// calibrate_v_for_rebuffer to target a specific bound.
  double v_weight = 0.05;
  /// Capacity-unit coarsening factor k. 1 (default) solves the slot problem
  /// exactly; k > 1 solves the DP on units of k capacity grains, refines
  /// greedily, and reports a certified per-slot optimality gap through
  /// Scheduler::solve_certificate(). Off by default so golden digests stay
  /// byte-stable.
  std::int64_t coarsen_units = 1;
};

/// Per-user costs of the slot problem, with the common PC_i*tau term dropped
/// (it does not affect the argmin). The cost of transmitting is linear in phi
/// under both tail-accounting semantics (see radio/rrc.hpp):
///   cost(0)        = idle_cost[i] = V * E_tail_slot(i)
///   cost(phi >= 1) = active_base[i] + slope[i]*phi
/// with Eq. 5 accounting: active_base = 0,
///   slope = V*P(sig_i)*delta - PC_i*delta/p_i;
/// with continuous-time Eq. 4: active_base = V*Pd*tau,
///   slope = V*delta*(P(sig_i) - Pd/v(sig_i)) - PC_i*delta/p_i.
/// The three arrays are cache-line-aligned SoA lanes so the DP row setup and
/// the separable fast path stream over them linearly.
struct EmaSlotCosts {
  simd::AlignedVec<double> idle_cost;
  simd::AlignedVec<double> active_base;
  simd::AlignedVec<double> slope;
};

/// Evaluates the reduced per-user cost of allocating `phi` units.
[[nodiscard]] inline double ema_cost(const EmaSlotCosts& costs, std::size_t user,
                                     std::int64_t phi) noexcept {
  return phi == 0 ? costs.idle_cost[user]
                  : costs.active_base[user] + costs.slope[user] * as_double(phi);
}

/// Builds the slot costs from the cross-layer snapshot and the current queues.
/// Reads the SlotSoa lanes; the producer must have called ctx.finalize().
[[nodiscard]] EmaSlotCosts compute_ema_slot_costs(const SlotContext& ctx,
                                                  const LyapunovQueues& queues,
                                                  double v_weight);

/// Buffer-reusing variant: overwrites `out`, recycling its vectors.
void compute_ema_slot_costs(const SlotContext& ctx, const LyapunovQueues& queues,
                            double v_weight, EmaSlotCosts& out);

/// Reusable scratch + cross-slot warm state for solve_min_cost_dp. A
/// long-lived caller (EmaScheduler, the perf gate) keeps one workspace so the
/// steady-state solve performs no heap allocation; buffers only ever grow.
///
/// The workspace doubles as the incremental-reuse carrier: it remembers the
/// last solved instance (costs/caps/bound) plus its allocation for the
/// identical-instance memo, and — after a full DP solve — periodic row
/// checkpoints plus the per-row choice table, so the next solve can resume
/// below the first user whose inputs changed. Both reuse paths are
/// bit-identical to a cold solve by construction: the memo replays an
/// identical instance's result, and a resumed solve recomputes every row at
/// or above the first difference from checkpointed exact state.
struct EmaDpWorkspace {
  // --- per-solve scratch -------------------------------------------------
  simd::AlignedVec<double> prev;        ///< DP row for users [0, i)
  simd::AlignedVec<double> cur;         ///< DP row including user i
  simd::AlignedVec<double> window_key;  ///< sliding-window keys prev[j] - slope*j
  std::vector<std::int32_t> deque;      ///< monotone deque (indices into window_key)
  /// g(i, M): best phi_i given M total units. The narrow table halves the
  /// dominant write bandwidth of the DP and is used whenever every cap fits
  /// in 16 bits; `choice` is the wide fallback.
  std::vector<std::int16_t> choice16;
  std::vector<std::int32_t> choice;

  // --- cross-slot warm state (see file comment) --------------------------
  simd::AlignedVec<double> last_idle;      ///< previous instance: costs
  simd::AlignedVec<double> last_base;
  simd::AlignedVec<double> last_slope;
  std::vector<std::int64_t> last_caps;     ///< previous instance: caps
  std::vector<std::int64_t> last_units;    ///< previous instance: result
  std::int64_t last_m_max = -1;            ///< previous instance: DP bound
  bool has_memo = false;                   ///< last_* describe a solved instance
  /// Checkpointed DP rows of the last full solve: row r*stride holds `prev`
  /// as it entered user r*stride, flat [checkpoint][width].
  simd::AlignedVec<double> checkpoints;
  std::size_t checkpoint_stride = 0;
  bool dp_valid = false;  ///< checkpoints/choice match the memoized instance
  bool dp_narrow = false; ///< the memoized solve used the int16 choice table
  std::size_t dp_width = 0;

  /// Drops all cross-slot reuse state (memo + checkpoints); scratch buffers
  /// keep their capacity. The next solve runs cold.
  void invalidate() {
    has_memo = false;
    dp_valid = false;
  }

  // --- telemetry-visible counters (reset by the owner if desired) --------
  std::int64_t memo_hits = 0;      ///< solves answered from the memo
  std::int64_t separable_hits = 0; ///< solves answered by the separable path
  std::int64_t dp_solves = 0;      ///< solves that ran DP rows
  std::int64_t resumed_rows = 0;   ///< DP rows skipped via warm-start resume
};

/// Exact minimizer of sum_i cost(i, phi_i) s.t. phi_i in [0, caps[i]] and
/// sum phi_i <= capacity_units (Algorithm 2's problem). Bit-identical to
/// solve_min_cost_dp_deque / solve_min_cost_dp_reference, including every
/// tie-break.
[[nodiscard]] Allocation solve_min_cost_dp(const EmaSlotCosts& costs,
                                           std::span<const std::int64_t> caps,
                                           std::int64_t capacity_units);

/// Workspace variant: solves into `out` using `ws` scratch; allocation-free
/// once both have warmed up to the instance size, and able to reuse `ws`'s
/// memo/checkpoint state across consecutive calls.
void solve_min_cost_dp(const EmaSlotCosts& costs, std::span<const std::int64_t> caps,
                       std::int64_t capacity_units, EmaDpWorkspace& ws,
                       Allocation& out);

/// The PR2 monotone-deque O(N * M) solver, kept verbatim as the before/after
/// baseline for bench_perf_gate/bench_scaling_users and as a differential
/// anchor: the block solver must match it exactly. Does not touch `ws`'s
/// warm-start state beyond scratch rows (and invalidates it).
void solve_min_cost_dp_deque(const EmaSlotCosts& costs,
                             std::span<const std::int64_t> caps,
                             std::int64_t capacity_units, EmaDpWorkspace& ws,
                             Allocation& out);

/// The paper-literal O(N * M * phi_max) DP (Algorithm 2 steps 3-18), kept as
/// the differential-testing oracle for the fast solvers and as the baseline
/// the perf regression gate measures speedup against.
[[nodiscard]] Allocation solve_min_cost_dp_reference(const EmaSlotCosts& costs,
                                                     std::span<const std::int64_t> caps,
                                                     std::int64_t capacity_units);

/// Result of one certified-ε coarsened solve (see solve_min_cost_coarse).
struct EmaCoarseOutcome {
  double cost = 0.0;         ///< realized cost of the refined allocation
  double lower_bound = 0.0;  ///< Lagrangian-dual bound <= exact optimum
  double gap = 0.0;          ///< certified gap: cost - optimum <= gap
  bool exact = false;        ///< separable fast path solved it exactly (gap 0)
};

/// Workspace for solve_min_cost_coarse: the coarse instance, its DP scratch,
/// and the refinement's ordering buffers. Grow-only, like EmaDpWorkspace.
struct EmaCoarseWorkspace {
  EmaDpWorkspace dp;
  EmaSlotCosts coarse_costs;
  std::vector<std::int64_t> coarse_caps;
  Allocation coarse_alloc;
  std::vector<std::int32_t> order;
};

/// Bounded-suboptimality solver: solves the slot DP on capacity units of
/// size `k` (an O(N*M/k) problem), expands, greedily refines with strict
/// improvements, and certifies the result: the returned gap is a per-slot
/// upper bound on cost(allocation) - cost(optimum), obtained from a
/// Lagrangian weak-duality lower bound maximized by ternary search. With a
/// gap <= B every slot, Theorem 1 degrades gracefully to PE <= E* + 2B/V —
/// the invariant checker enforces exactly that budget under --validate.
EmaCoarseOutcome solve_min_cost_coarse(const EmaSlotCosts& costs,
                                       std::span<const std::int64_t> caps,
                                       std::int64_t capacity_units, std::int64_t k,
                                       EmaCoarseWorkspace& ws, Allocation& out);

/// Algorithm 2 of the paper, with the exact (or certified-ε, when
/// `EmaConfig::coarsen_units > 1`) DP slot solver.
///
/// The scheduler owns per-instance workspaces (slot costs, DP scratch,
/// coarsening scratch) so the steady-state allocate_into path performs zero
/// heap allocations.
class EmaScheduler : public Scheduler {
 public:
  explicit EmaScheduler(EmaConfig config = {});

  [[nodiscard]] std::string name() const override { return "ema"; }
  void reset(std::size_t users) override;
  void reset_user(std::size_t user) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;
  void allocate_into(const SlotContext& ctx, Allocation& out) override;

  [[nodiscard]] const LyapunovQueues& queues() const noexcept { return queues_; }
  [[nodiscard]] const EmaConfig& config() const noexcept { return config_; }

  /// Exposes the Eq. 16 queues to the paper-invariant validator.
  [[nodiscard]] std::span<const double> virtual_queues() const override {
    return queues_.values();
  }

  /// Per-slot optimality certificate: gap 0 for exact solves, the certified
  /// coarsening gap when coarsen_units > 1 (validated against the Theorem 1
  /// budget by the invariant checker).
  [[nodiscard]] const SolveCertificate* solve_certificate() const override {
    return &certificate_;
  }

  /// The exact solver's reuse counters (memo hits, separable-path solves,
  /// DP solves, warm-start resumed rows) — for benches and tests.
  [[nodiscard]] const EmaDpWorkspace& dp_workspace() const noexcept { return dp_ws_; }

 protected:
  /// Cost-model extension point, called between compute_ema_slot_costs and
  /// solve_slot with the same slot snapshot. The base scheduler leaves the
  /// costs untouched (the paper's Algorithm 2); PredictiveEmaScheduler adds
  /// its predicted-price deferral term here. Overrides must keep the per-user
  /// cost linear in phi (mutate idle_cost/active_base/slope only) so every
  /// slot solver — DP, greedy, coarsened — remains applicable, and must not
  /// touch the Eq. 16 queue update that follows the solve.
  virtual void adjust_costs(const SlotContext& ctx, EmaSlotCosts& costs);

  /// Slot-problem solver; EmaFastScheduler overrides with the greedy solver.
  /// Writes the decision into `out` (storage recycled by the caller) and
  /// maintains `certificate_`.
  virtual void solve_slot(const EmaSlotCosts& costs,
                          std::span<const std::int64_t> caps,
                          std::int64_t capacity_units, Allocation& out);

  SolveCertificate certificate_;  ///< maintained by solve_slot overrides

 private:
  EmaConfig config_;
  LyapunovQueues queues_;
  EmaSlotCosts costs_ws_;
  EmaDpWorkspace dp_ws_;
  EmaCoarseWorkspace coarse_ws_;
};

}  // namespace jstream
