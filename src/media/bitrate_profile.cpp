#include "media/bitrate_profile.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

ConstantBitrate::ConstantBitrate(double kbps) : kbps_(kbps) {
  require(kbps > 0.0, "bitrate must be positive");
}

double ConstantBitrate::bitrate_kbps(std::int64_t slot) const {
  require(slot >= 0, "slot must be non-negative");
  return kbps_;
}

PiecewiseBitrate::PiecewiseBitrate(std::vector<std::int64_t> boundaries,
                                   std::vector<double> rates)
    : boundaries_(std::move(boundaries)), rates_(std::move(rates)) {
  require(rates_.size() == boundaries_.size() + 1,
          "piecewise bitrate needs one more rate than boundaries");
  require(std::is_sorted(boundaries_.begin(), boundaries_.end()) &&
              std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
                  boundaries_.end(),
          "piecewise boundaries must be strictly increasing");
  for (double r : rates_) require(r > 0.0, "bitrate must be positive");
}

double PiecewiseBitrate::bitrate_kbps(std::int64_t slot) const {
  require(slot >= 0, "slot must be non-negative");
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), slot);
  return rates_[checked_size(it - boundaries_.begin())];
}

double PiecewiseBitrate::max_bitrate_kbps() const {
  return *std::max_element(rates_.begin(), rates_.end());
}

RandomWalkBitrate::RandomWalkBitrate(Params params, Rng rng,
                                     std::int64_t horizon_slots)
    : params_(params) {
  require(params_.min_kbps > 0.0 && params_.min_kbps < params_.max_kbps,
          "random walk bitrate range is empty");
  require(params_.step_kbps > 0.0, "step must be positive");
  require(params_.hold_slots > 0, "hold period must be positive");
  require(horizon_slots > 0, "horizon must be positive");
  const auto periods =
      checked_size((horizon_slots + params_.hold_slots - 1) /
                               params_.hold_slots);
  levels_.reserve(periods);
  double level = rng.uniform(params_.min_kbps, params_.max_kbps);
  for (std::size_t k = 0; k < periods; ++k) {
    levels_.push_back(level);
    level = std::clamp(level + rng.uniform(-params_.step_kbps, params_.step_kbps),
                       params_.min_kbps, params_.max_kbps);
  }
}

double RandomWalkBitrate::bitrate_kbps(std::int64_t slot) const {
  require(slot >= 0, "slot must be non-negative");
  const auto period = checked_size(slot / params_.hold_slots);
  return levels_[std::min(period, levels_.size() - 1)];
}

}  // namespace jstream
