// One user's video-on-demand session: total content size plus its required
// data-rate profile. The total playback time M_i (Section III-D) follows from
// integrating the bitrate profile until the content is exhausted.
#pragma once

#include <cstdint>
#include <memory>

#include "media/bitrate_profile.hpp"

namespace jstream {

/// Immutable description of one streaming session.
class VideoSession {
 public:
  /// `size_kb` is the full content size; `bitrate` the required-rate profile.
  /// `tau_s` is the slot length used to integrate M_i for non-constant
  /// profiles.
  VideoSession(double size_kb, std::shared_ptr<const BitrateProfile> bitrate,
               double tau_s = 1.0);

  /// Content size in KB.
  [[nodiscard]] double size_kb() const noexcept { return size_kb_; }

  /// Required data rate p_i(n) for slot n, KB/s.
  [[nodiscard]] double bitrate_kbps(std::int64_t slot) const;

  /// Largest p_i over the session (for Lyapunov bounds and capacity checks).
  [[nodiscard]] double max_bitrate_kbps() const;

  /// M_i: total playback duration in seconds.
  [[nodiscard]] double total_playback_s() const noexcept { return total_playback_s_; }

  /// Required rate of the content at playback position `content_time_s`
  /// (profiles are indexed on the content timeline in slot units).
  [[nodiscard]] double bitrate_at_time(double content_time_s) const;

  /// Playback seconds carried by `kb` of content starting at playback
  /// position `content_time_s`. For constant-bitrate sessions this is exactly
  /// kb / p; for VBR it integrates the profile so that delivering the whole
  /// file always yields total_playback_s() (content-timeline consistency).
  [[nodiscard]] double advance_playback(double content_time_s, double kb) const;

  [[nodiscard]] const BitrateProfile& profile() const noexcept { return *bitrate_; }

 private:
  double size_kb_;
  std::shared_ptr<const BitrateProfile> bitrate_;
  double tau_s_;
  double total_playback_s_;
};

}  // namespace jstream
