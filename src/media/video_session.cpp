#include "media/video_session.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

/// Integrates the bitrate profile slot by slot until `size_kb` is consumed,
/// returning the playback duration. For a constant profile this reduces to
/// size / bitrate exactly.
double integrate_playback_s(double size_kb, const BitrateProfile& profile,
                            double tau_s) {
  double remaining_kb = size_kb;
  double duration_s = 0.0;
  for (std::int64_t slot = 0; remaining_kb > 0.0; ++slot) {
    const double rate = profile.bitrate_kbps(slot);
    const double slot_kb = rate * tau_s;
    if (slot_kb >= remaining_kb) {
      duration_s += remaining_kb / rate;
      return duration_s;
    }
    remaining_kb -= slot_kb;
    duration_s += tau_s;
  }
  return duration_s;
}

}  // namespace

VideoSession::VideoSession(double size_kb, std::shared_ptr<const BitrateProfile> bitrate,
                           double tau_s)
    : size_kb_(size_kb), bitrate_(std::move(bitrate)), tau_s_(tau_s) {
  require(size_kb_ > 0.0, "video size must be positive");
  require(bitrate_ != nullptr, "bitrate profile must not be null");
  require(tau_s > 0.0, "slot length must be positive");
  total_playback_s_ = integrate_playback_s(size_kb_, *bitrate_, tau_s);
}

double VideoSession::bitrate_kbps(std::int64_t slot) const {
  return bitrate_->bitrate_kbps(slot);
}

double VideoSession::max_bitrate_kbps() const { return bitrate_->max_bitrate_kbps(); }

double VideoSession::bitrate_at_time(double content_time_s) const {
  require(content_time_s >= 0.0, "content time must be non-negative");
  return bitrate_->bitrate_kbps(floor_to_count(content_time_s / tau_s_));
}

double VideoSession::advance_playback(double content_time_s, double kb) const {
  require(content_time_s >= 0.0, "content time must be non-negative");
  require(kb >= 0.0, "content amount must be non-negative");
  double remaining_kb = kb;
  double position_s = content_time_s;
  while (remaining_kb > 0.0) {
    const auto slot = floor_to_count(position_s / tau_s_);
    const double rate = bitrate_->bitrate_kbps(slot);
    const double slot_end_s = as_double(slot + 1) * tau_s_;
    const double span_s = slot_end_s - position_s;
    const double span_kb = rate * span_s;
    if (span_kb >= remaining_kb) {
      position_s += remaining_kb / rate;
      break;
    }
    remaining_kb -= span_kb;
    position_s = slot_end_s;
  }
  return position_s - content_time_s;
}

}  // namespace jstream
