// Client playback-buffer model (Section III-D, Eqs. 7-8).
//
// Per-slot protocol, mirroring the paper's timing exactly:
//
//   1. begin_slot()    — computes the remaining occupancy
//                        r(n) = max(r(n-1) - tau, 0) + t(n-1)   (Eq. 7),
//                        where t(n-1) is the playback time of the shard
//                        delivered in the previous slot (shards become usable
//                        only in the slot after full reception).
//   2. rebuffer_s()    — c(n) = max(tau - r(n), 0) while m(n) < M_i, else 0
//                        (Eq. 8).
//   3. deliver(t)      — records t(n) = d(n)/p(n) for the shard allocated in
//                        this slot.
//   4. end_slot()      — advances elapsed playback m by min(tau, r, M - m).
#pragma once

namespace jstream {

/// Tolerance for declaring playback complete (seconds); absorbs the rounding
/// of summing many shard durations.
inline constexpr double kPlaybackCompletionEps_s = 1e-6;

/// Mutable playback state of one streaming client.
class PlaybackBuffer {
 public:
  /// `total_playback_s` is M_i; `tau_s` the slot length.
  PlaybackBuffer(double total_playback_s, double tau_s);

  /// Step 1: folds the previous slot's shard into the buffer (Eq. 7).
  void begin_slot();

  /// Step 2: rebuffering time of the current slot (Eq. 8). Only valid between
  /// begin_slot() and end_slot().
  [[nodiscard]] double rebuffer_s() const;

  /// Step 3: registers the playback seconds carried by this slot's shard
  /// (zero playback seconds is a valid no-transmission marker).
  void deliver(double playback_seconds);

  /// Step 4: plays out min(tau, r, M - m) seconds of content.
  void end_slot();

  /// r(n): playback seconds buffered at the beginning of the current slot.
  [[nodiscard]] double occupancy_s() const noexcept { return occupancy_s_; }

  /// m(n): elapsed playback time.
  [[nodiscard]] double elapsed_s() const noexcept { return elapsed_s_; }

  /// M_i: total playback time of the session.
  [[nodiscard]] double total_s() const noexcept { return total_s_; }

  /// True once m(n) >= M_i (playback complete; no further rebuffering).
  [[nodiscard]] bool playback_finished() const noexcept;

 private:
  double total_s_;
  double tau_s_;
  double occupancy_s_ = 0.0;       ///< r(n), valid within a slot
  double elapsed_s_ = 0.0;         ///< m(n)
  double pending_playback_s_ = 0.0; ///< t(n) of the shard delivered this slot
  bool in_slot_ = false;
};

}  // namespace jstream
