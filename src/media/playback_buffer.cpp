#include "media/playback_buffer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace jstream {

PlaybackBuffer::PlaybackBuffer(double total_playback_s, double tau_s)
    : total_s_(total_playback_s), tau_s_(tau_s) {
  require(total_s_ > 0.0, "total playback time must be positive");
  require(tau_s_ > 0.0, "slot length must be positive");
}

void PlaybackBuffer::begin_slot() {
  require(!in_slot_, "begin_slot called twice without end_slot");
  // Eq. 7: r(n) = max(r(n-1) - tau, 0) + t(n-1).
  occupancy_s_ = std::max(occupancy_s_ - tau_s_, 0.0) + pending_playback_s_;
  pending_playback_s_ = 0.0;
  in_slot_ = true;
}

double PlaybackBuffer::rebuffer_s() const {
  require(in_slot_, "rebuffer_s is only valid inside a slot");
  if (playback_finished()) return 0.0;  // Eq. 8, m(n) >= M branch
  return std::max(tau_s_ - occupancy_s_, 0.0);
}

void PlaybackBuffer::deliver(double playback_seconds) {
  require(in_slot_, "deliver is only valid inside a slot");
  require(playback_seconds >= 0.0, "playback seconds must be non-negative");
  pending_playback_s_ += playback_seconds;
}

void PlaybackBuffer::end_slot() {
  require(in_slot_, "end_slot without begin_slot");
  const double remaining = std::max(total_s_ - elapsed_s_, 0.0);
  const double played = std::min({tau_s_, occupancy_s_, remaining});
  if (played == remaining) {
    elapsed_s_ = total_s_;  // land exactly on M_i; m + (M - m) may round below M
  } else {
    elapsed_s_ += played;
  }
  in_slot_ = false;
}

bool PlaybackBuffer::playback_finished() const noexcept {
  // The delivered playback time sums hundreds of shards; accumulated rounding
  // can leave the buffer empty with elapsed_s a few ULP short of M_i. Treat
  // sub-microsecond residue as complete or such sessions would stall forever.
  return elapsed_s_ >= total_s_ - kPlaybackCompletionEps_s;
}

}  // namespace jstream
