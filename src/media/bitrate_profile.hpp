// Required video data-rate processes p_i(n) (Section III-D).
//
// The paper models the bit rate as changing over time but constant within a
// slot; its evaluation draws a constant per-user rate from U[300, 600] KB/s.
// Piecewise and bounded-random-walk profiles cover the time-varying case
// (e.g. VBR encodings or ABR ladder switches).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace jstream {

/// Required playback data rate of one video in KB/s per slot.
class BitrateProfile {
 public:
  virtual ~BitrateProfile() = default;

  /// p_i(n) in KB/s; must be positive.
  [[nodiscard]] virtual double bitrate_kbps(std::int64_t slot) const = 0;

  /// Upper bound over all slots (used for Lyapunov constant B's t_max).
  [[nodiscard]] virtual double max_bitrate_kbps() const = 0;
};

/// Constant bitrate (the paper's evaluation setting).
class ConstantBitrate final : public BitrateProfile {
 public:
  explicit ConstantBitrate(double kbps);
  [[nodiscard]] double bitrate_kbps(std::int64_t slot) const override;
  [[nodiscard]] double max_bitrate_kbps() const override { return kbps_; }

 private:
  double kbps_;
};

/// Piecewise-constant bitrate: segment k covers slots
/// [boundaries[k-1], boundaries[k]) with rate rates[k]; the final rate extends
/// to infinity. Models chapter/scene changes or ABR ladder switches.
class PiecewiseBitrate final : public BitrateProfile {
 public:
  /// `boundaries` are strictly increasing slot indices; rates.size() must be
  /// boundaries.size() + 1.
  PiecewiseBitrate(std::vector<std::int64_t> boundaries, std::vector<double> rates);
  [[nodiscard]] double bitrate_kbps(std::int64_t slot) const override;
  [[nodiscard]] double max_bitrate_kbps() const override;

 private:
  std::vector<std::int64_t> boundaries_;
  std::vector<double> rates_;
};

/// Bounded random walk re-sampled every `hold_slots`: models VBR content.
/// Deterministic given the seed; the whole trajectory is precomputed lazily.
class RandomWalkBitrate final : public BitrateProfile {
 public:
  struct Params {
    double min_kbps = 300.0;
    double max_kbps = 600.0;
    double step_kbps = 50.0;   ///< max absolute change per hold period
    std::int64_t hold_slots = 30;
  };

  RandomWalkBitrate(Params params, Rng rng, std::int64_t horizon_slots);
  [[nodiscard]] double bitrate_kbps(std::int64_t slot) const override;
  [[nodiscard]] double max_bitrate_kbps() const override { return params_.max_kbps; }

 private:
  Params params_;
  std::vector<double> levels_;  ///< one value per hold period
};

}  // namespace jstream
