#include "sim/replication.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sim/campaign.hpp"
#include "telemetry/registry.hpp"
#include "common/units.hpp"

namespace jstream {

double ReplicatedMetric::ci95_halfwidth() const noexcept {
  if (summary.count < 2) return 0.0;
  // Student-t with n-1 degrees of freedom: replication counts are typically
  // small (5-30), where the fixed normal 1.96 understates the interval.
  return student_t_975(summary.count - 1) * summary.stddev /
         std::sqrt(as_double(summary.count));
}

ReplicationResult replicate_experiment(const ExperimentSpec& spec,
                                       std::size_t replications, std::size_t threads) {
  require(replications >= 1, "need at least one replication");
  telemetry::global_registry().counter("replication.experiments").add();
  telemetry::global_registry()
      .counter("replication.replicas")
      .add(checked_index(replications));
  // One-series campaign grid: specs[rep] runs seed+rep, and every replication
  // pulls its channel trace from the shared cache (a win whenever several
  // schedulers replicate over the same scenario in one process).
  const CampaignSeries series[] = {{spec.label, spec.scheduler, spec.options}};
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(spec.scenario, series, replications);

  ReplicationResult result;
  CampaignOptions options;
  options.threads = threads;
  options.keep_series = true;
  result.runs = run_campaign(specs, options);

  const auto collect = [&](auto getter) {
    std::vector<double> values;
    values.reserve(result.runs.size());
    for (const RunMetrics& run : result.runs) values.push_back(getter(run));
    return summarize(values);
  };
  result.pe_mj.summary =
      collect([](const RunMetrics& m) { return m.avg_energy_per_user_slot_mj(); });
  result.pc_s.summary =
      collect([](const RunMetrics& m) { return m.avg_rebuffer_per_user_slot_s(); });
  result.fairness.summary =
      collect([](const RunMetrics& m) { return m.mean_fairness(); });
  result.total_energy_mj.summary =
      collect([](const RunMetrics& m) { return m.total_energy_mj(); });
  result.total_rebuffer_s.summary =
      collect([](const RunMetrics& m) { return m.total_rebuffer_s(); });
  return result;
}

}  // namespace jstream
