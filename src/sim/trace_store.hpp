// Persistent trace tier: a directory of checksummed, memory-mappable
// trace-set files keyed by trace-key fingerprint.
//
// The in-process TraceCache is byte-budgeted; campaign grids bigger than the
// budget used to regenerate every evicted channel matrix on the next touch,
// and nothing survived the process. The store is the tier below the LRU:
//
//   - spill: an evicted (or explicitly flushed) SignalTraceSet is written as
//     a binary trace-set file (signal_trace_io) named by its 64-bit trace-key
//     fingerprint. Writes are atomic-by-rename and idempotent — a key already
//     on disk is never rewritten, because equal fingerprints imply
//     bit-identical payloads (the whole generation pipeline is a pure
//     function of the key).
//   - promote: a cache miss asks the store first. A hit memory-maps the file
//     and serves the matrices zero-copy (SignalTraceSet::adopt_mapping); only
//     a validated file — magic, schema version, endianness, fingerprint, and
//     XXH64 payload checksum all good — is ever served. Anything else
//     (foreign schema, truncation, bit rot) is counted, unlinked, and
//     reported as a miss so the caller regenerates instead of crashing.
//
// The store is safe to share across threads and across processes: per-file
// atomic renames make racing writers of one key converge on one complete
// file, which is exactly how the multi-process campaign runner's shards
// (src/sim/distrib) share one warm directory.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "radio/signal_trace.hpp"

namespace jstream {

class TraceStore {
 public:
  /// Opens (and creates, including parents) the store directory.
  explicit TraceStore(std::string directory);

  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }

  /// File that would hold `fingerprint` ("trace_<16-hex>.jst" under the
  /// store directory).
  [[nodiscard]] std::string path_for(std::uint64_t fingerprint) const;

  /// True when a file for the key exists (no validation — loads validate).
  [[nodiscard]] bool contains(std::uint64_t fingerprint) const;

  /// Spills `set` under `fingerprint` unless already present. Returns true
  /// when a new file landed. Throws Error on real I/O failure (unwritable
  /// directory); never throws for "already there".
  bool put(std::uint64_t fingerprint, const SignalTraceSet& set);

  /// Promotes the key from disk: a validated file returns the mapped set and
  /// counts a promotion; a missing file returns nullptr; an invalid file
  /// (wrong magic/version/endianness/fingerprint, truncated, checksum
  /// mismatch) is unlinked, counts a rejection, and returns nullptr so the
  /// caller regenerates. `users`/`slots` are the dimensions the key demands;
  /// a file disagreeing with them is rejected too.
  [[nodiscard]] std::shared_ptr<const SignalTraceSet> try_load(
      std::uint64_t fingerprint, std::size_t users, std::int64_t slots);

  [[nodiscard]] std::uint64_t spills() const;      ///< files written by put()
  [[nodiscard]] std::uint64_t promotions() const;  ///< successful try_load()s
  [[nodiscard]] std::uint64_t rejections() const;  ///< invalid files dropped

 private:
  std::string directory_;
  mutable std::mutex mutex_;  ///< guards the counters only
  std::uint64_t spills_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t rejections_ = 0;
};

}  // namespace jstream
