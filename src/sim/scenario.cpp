#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

std::unique_ptr<SignalModel> build_signal_model(const ScenarioConfig& config,
                                                std::size_t user, Rng& user_rng) {
  switch (config.signal_kind) {
    case SignalKind::kSine: {
      SineSignalParams params = config.signal;
      params.phase_radians = user_rng.uniform(0.0, 2.0 * std::numbers::pi);
      return std::make_unique<SineSignalModel>(params, user_rng.split(0x5167));
    }
    case SignalKind::kGaussMarkov:
      return std::make_unique<GaussMarkovSignalModel>(config.gauss_markov,
                                                      user_rng.split(0x6d6b));
    case SignalKind::kTrace: {
      // Rotate the shared trace by a per-user offset so users decorrelate.
      const auto offset = checked_size(user_rng.uniform_int(
          0, checked_index(config.trace_dbm.size()) - 1));
      std::vector<double> rotated(config.trace_dbm.size());
      for (std::size_t i = 0; i < rotated.size(); ++i) {
        rotated[i] = config.trace_dbm[(i + offset) % config.trace_dbm.size()];
      }
      return std::make_unique<TraceSignalModel>(std::move(rotated));
    }
  }
  throw Error("unknown signal kind for user " + std::to_string(user));
}

std::shared_ptr<const BitrateProfile> build_bitrate_profile(
    const ScenarioConfig& config, Rng& user_rng) {
  if (!config.vbr) {
    return std::make_shared<ConstantBitrate>(
        user_rng.uniform(config.bitrate_min_kbps, config.bitrate_max_kbps));
  }
  RandomWalkBitrate::Params params;
  params.min_kbps = config.bitrate_min_kbps;
  params.max_kbps = config.bitrate_max_kbps;
  params.step_kbps = config.vbr_step_kbps;
  params.hold_slots = config.vbr_hold_slots;
  return std::make_shared<RandomWalkBitrate>(params, user_rng.split(0x7662),
                                             config.max_slots);
}

}  // namespace

ScenarioConfig paper_scenario(std::size_t users, std::uint64_t seed) {
  ScenarioConfig config;
  config.users = users;
  config.seed = seed;
  return config;
}

ScenarioConfig paper_scenario_with_data_amount(std::size_t users, double avg_data_mb,
                                               std::uint64_t seed) {
  require(avg_data_mb > 100.0, "average data amount must exceed 100 MB");
  ScenarioConfig config = paper_scenario(users, seed);
  config.video_min_mb = avg_data_mb - 100.0;
  config.video_max_mb = avg_data_mb + 100.0;
  return config;
}

void validate(const ScenarioConfig& config) {
  require(config.users > 0, "scenario needs at least one user");
  require(config.max_slots > 0, "scenario needs at least one slot");
  require(config.slot.tau_s > 0.0, "slot length must be positive");
  require(config.slot.delta_kb > 0.0, "frame size must be positive");
  require(config.capacity_kbps > 0.0, "capacity must be positive");
  require(config.backhaul_kbps >= 0.0, "backhaul must be non-negative");
  require(config.video_min_mb > 0.0 && config.video_min_mb <= config.video_max_mb,
          "video size range is invalid");
  require(config.bitrate_min_kbps > 0.0 &&
              config.bitrate_min_kbps <= config.bitrate_max_kbps,
          "bitrate range is invalid");
  require(config.arrival_spread_slots >= 0, "arrival spread must be non-negative");
  require(config.arrival_spread_slots < config.max_slots,
          "arrival spread must fit inside the horizon");
  if (config.vbr) {
    require(config.vbr_hold_slots > 0, "VBR hold period must be positive");
    require(config.vbr_step_kbps > 0.0, "VBR step must be positive");
  }
  if (config.signal_kind == SignalKind::kTrace) {
    require(!config.trace_dbm.empty(), "trace signal kind needs a trace");
  }
  if (config.capacity_kind == CapacityKind::kSine) {
    require(config.capacity_wave_fraction >= 0.0 && config.capacity_wave_fraction < 1.0,
            "capacity wave fraction must be in [0,1)");
    require(config.capacity_wave_period > 0.0, "capacity wave period must be positive");
  }
  require(config.link.throughput != nullptr && config.link.power != nullptr,
          "link model must be complete");
  validate(config.radio);
  validate(config.faults);
  validate(config.forecast);
  if (config.faults.outage_rate_per_kslot > 0.0) {
    // The fault injector re-evaluates the Definition 3/4 fits at the fade
    // depth; both throw here if the depth falls outside their positive range
    // (the paper's Eq. 24 fit turns non-positive below roughly -115 dBm).
    (void)config.link.throughput->throughput_kbps(config.faults.outage_dbm);
    (void)config.link.power->energy_per_kb(config.faults.outage_dbm);
  }
}

std::vector<UserEndpoint> build_endpoints(const ScenarioConfig& config) {
  validate(config);
  // jstream-lint: allow(rng-discipline) -- THE scenario root stream: every
  // endpoint/fault/arrival stream in a run splits from this seed.
  const Rng scenario_rng(config.seed);
  std::vector<UserEndpoint> endpoints;
  endpoints.reserve(config.users);
  for (std::size_t i = 0; i < config.users; ++i) {
    Rng user_rng = scenario_rng.split(i);
    const double size_kb =
        mb_to_kb(user_rng.uniform(config.video_min_mb, config.video_max_mb));
    auto bitrate = build_bitrate_profile(config, user_rng);
    auto signal_model = build_signal_model(config, i, user_rng);
    const std::int64_t start_slot =
        config.arrival_spread_slots > 0
            ? user_rng.uniform_int(0, config.arrival_spread_slots)
            : 0;

    VideoSession session(size_kb, std::move(bitrate), config.slot.tau_s);
    endpoints.emplace_back(std::move(signal_model), std::move(session), config.radio,
                           config.slot.tau_s, start_slot);
  }
  return endpoints;
}

std::function<double(std::int64_t)> capacity_profile(const ScenarioConfig& config) {
  switch (config.capacity_kind) {
    case CapacityKind::kConstant: {
      const double capacity = config.capacity_kbps;
      return [capacity](std::int64_t) { return capacity; };
    }
    case CapacityKind::kSine: {
      const double base = config.capacity_kbps;
      const double amplitude = config.capacity_wave_fraction * base;
      const double period = config.capacity_wave_period;
      return [base, amplitude, period](std::int64_t slot) {
        return base + amplitude * std::sin(2.0 * std::numbers::pi *
                                           as_double(slot) / period);
      };
    }
  }
  throw Error("unknown capacity kind");
}

}  // namespace jstream
