#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/lyapunov.hpp"
#include "net/base_station.hpp"
#include "sim/fault.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scoped_timer.hpp"

namespace jstream {

namespace {

struct SimulatorTelemetry {
  telemetry::Counter& runs;
  telemetry::Counter& slots_total;
  telemetry::Histogram& run_latency_us;

  static SimulatorTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static SimulatorTelemetry probes{registry.counter("sim.runs"),
                                     registry.counter("sim.slots_total"),
                                     registry.histogram("sim.run_latency_us")};
    return probes;
  }
};

}  // namespace

Simulator::Simulator(ScenarioConfig config, std::unique_ptr<Scheduler> scheduler,
                     SchedulingMode mode, std::shared_ptr<const SignalTraceSet> trace)
    : config_(std::move(config)),
      scheduler_(std::move(scheduler)),
      mode_(mode),
      trace_(std::move(trace)) {
  validate(config_);
  require(scheduler_ != nullptr, "simulator needs a scheduler");
  if (trace_ != nullptr) {
    require(trace_->users() == config_.users, "trace population mismatch");
    require(trace_->slots() >= config_.max_slots, "trace shorter than the horizon");
    require(trace_->link_derived(), "trace is missing the derived link matrices");
  }
}

RunMetrics Simulator::run(bool keep_series) {
  std::vector<UserEndpoint> endpoints = build_endpoints(config_);
  if (trace_ != nullptr) {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      endpoints[i].attach_trace(trace_.get(), i);
    }
  }
  const BaseStation bs(capacity_profile(config_));
  InfoCollector collector(config_.slot, config_.link, config_.radio);
  const double backhaul = config_.backhaul_kbps > 0.0
                              ? config_.backhaul_kbps
                              : std::numeric_limits<double>::infinity();
  Framework framework(std::move(collector), std::move(scheduler_), mode_,
                      config_.users, backhaul);
  // Degraded-cell faults: the schedule is a pure function of the config, so
  // cached-trace and live runs fault identically; an inactive config attaches
  // nothing and leaves the slot path byte-for-byte unfaulted.
  std::unique_ptr<FaultInjector> fault_injector;
  if (config_.faults.any()) {
    fault_injector = std::make_unique<FaultInjector>(
        std::make_shared<const FaultSchedule>(make_fault_schedule(config_)));
    // Mid-stream aborts ride the session-departure path: the schedule's drawn
    // slots are stamped on the endpoints, the collector raises the departed
    // flag, and the injector only does its fault-local bookkeeping.
    const FaultSchedule& schedule = fault_injector->schedule();
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      endpoints[i].depart_at(schedule.departure_slot(i));
    }
    framework.attach_fault_hook(fault_injector.get());
  }
  // Theorem 1 slack budget for certified-approximate solvers: a per-slot
  // optimality gap of at most B keeps the drift-plus-penalty chain valid with
  // PE <= E* + 2B/V, so under --validate the invariant checker rejects any
  // certificate above B (Eq. 18; t_max_i is the largest playback time one
  // slot's shard can carry at the best-case link rate).
  {
    const double v_max_kbps =
        config_.link.throughput->throughput_kbps(config_.signal.max_dbm);
    std::vector<double> t_max_s;
    t_max_s.reserve(endpoints.size());
    for (const UserEndpoint& endpoint : endpoints) {
      t_max_s.push_back(config_.slot.tau_s * v_max_kbps /
                        endpoint.session.bitrate_kbps(0));
    }
    framework.set_certified_gap_budget(
        lyapunov_drift_bound(config_.slot.tau_s, t_max_s));
  }
  MetricsCollector metrics(config_.users, keep_series);

  // After the last session ends, run a few more slots so outstanding RRC
  // tails are charged (Eq. 4 energy does not vanish when content runs out).
  const std::int64_t tail_flush_slots =
      ceil_to_count(config_.radio.tail_duration_s() / config_.slot.tau_s) + 1;
  std::int64_t idle_streak = 0;

  auto& probes = SimulatorTelemetry::instance();
  probes.runs.add();
  std::int64_t slots_run = 0;
  {
    telemetry::ScopedTimer timer(probes.run_latency_us);
    for (std::int64_t slot = 0; slot < config_.max_slots; ++slot) {
      const SlotOutcome& outcome = framework.run_slot(slot, endpoints, bs);
      metrics.record_slot(framework.last_context(), outcome);
      ++slots_run;

      if (!config_.early_stop) continue;
      // A departed user never drains its remaining content, so for early-stop
      // purposes it counts as done the moment it aborts.
      bool all_done = true;
      for (std::size_t i = 0; i < endpoints.size(); ++i) {
        if (endpoints[i].departed(slot)) continue;
        if (endpoints[i].active()) {
          all_done = false;
          break;
        }
      }
      idle_streak = all_done ? idle_streak + 1 : 0;
      if (idle_streak >= tail_flush_slots) break;
    }
  }
  probes.slots_total.add(slots_run);
  RunMetrics result = metrics.finish();
  if (const SolveCertificate* cert = framework.scheduler().solve_certificate()) {
    result.has_certificate = true;
    result.cert_exact_slots = cert->exact_slots;
    result.cert_certified_slots = cert->certified_slots;
    result.cert_gap_sum = cert->gap_sum;
    result.cert_gap_max = cert->gap_max;
  }
  return result;
}

RunMetrics simulate(const ScenarioConfig& config, std::unique_ptr<Scheduler> scheduler,
                    bool keep_series, std::shared_ptr<const SignalTraceSet> trace) {
  Simulator simulator(config, std::move(scheduler), SchedulingMode::kBaseline,
                      std::move(trace));
  return simulator.run(keep_series);
}

}  // namespace jstream
