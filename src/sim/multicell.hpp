// Multi-cell deployments. The paper's gateway "manages the resources of each
// BS independently" (Section III-A); a deployment is therefore a set of
// per-cell scenarios, each running its own Framework instance, evaluated
// concurrently. Results are reported per cell plus aggregated across the
// deployment.
#pragma once

#include <string>
#include <vector>

#include "baselines/factory.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace jstream {

/// One gateway deployment: a scenario per base station.
struct MultiCellConfig {
  std::vector<ScenarioConfig> cells;

  /// Convenience: `cells` identical copies of `base` with per-cell seeds
  /// (base.seed + cell index) so populations differ across cells.
  [[nodiscard]] static MultiCellConfig uniform(const ScenarioConfig& base,
                                               std::size_t cell_count);
};

/// Per-deployment results.
struct MultiCellResult {
  std::vector<RunMetrics> per_cell;

  [[nodiscard]] std::size_t total_users() const noexcept;
  [[nodiscard]] double total_energy_mj() const noexcept;
  [[nodiscard]] double total_rebuffer_s() const noexcept;

  /// Deployment-wide PE analogue: user-weighted mean of the per-cell
  /// per-user-slot energies.
  [[nodiscard]] double avg_energy_per_user_slot_mj() const noexcept;

  /// Deployment-wide PC analogue (same weighting).
  [[nodiscard]] double avg_rebuffer_per_user_slot_s() const noexcept;
};

/// Runs `scheduler_name` (with `options`) in every cell, one independent
/// Framework per base station, using up to `threads` workers (0 = hardware
/// concurrency). Deterministic per cell seeds.
[[nodiscard]] MultiCellResult simulate_multicell(const MultiCellConfig& config,
                                                 const std::string& scheduler_name,
                                                 const SchedulerOptions& options = {},
                                                 std::size_t threads = 0);

}  // namespace jstream
