// Campaign engine: runs a scheduler x seed grid of experiments on the thread
// pool while sharing each scenario's precomputed channel substrate across
// every scheduler and replication that needs it. Per-cell work drops from
// "generate 10000-slot traces, then simulate" to "simulate against shared
// matrices" — the trace is generated once per (scenario, seed) and served
// immutably out of a byte-budgeted LRU cache.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/sweep.hpp"
#include "sim/trace_cache.hpp"

namespace jstream {

/// One scheduler series in a campaign grid (label + factory name + options);
/// the grid crosses these with the replication seeds.
struct CampaignSeries {
  std::string label;
  std::string scheduler;
  SchedulerOptions options;
};

/// Execution knobs for run_campaign.
struct CampaignOptions {
  std::size_t threads = 0;       ///< pool size, 0 = hardware concurrency
  bool keep_series = false;      ///< retain per-slot series in each RunMetrics
  bool use_trace_cache = true;   ///< false = regenerate the trace per cell
  TraceCache* cache = nullptr;   ///< trace cache; null = global_trace_cache()
  /// Persistent trace tier (see sim/trace_store.hpp): attached to the cache
  /// for the duration of the run, so evictions spill to disk and misses
  /// promote from it; the whole resident working set is flushed to it at end
  /// of run. Null = in-memory caching only. Not owned; must outlive the run.
  TraceStore* store = nullptr;
};

/// Builds the scheduler x seed grid: for each replication `rep` (seed =
/// base.seed + rep), one spec per series. Results are rep-major —
/// `result[rep * series.size() + s]` is series `s` under seed base.seed+rep —
/// so chunked parallel execution keeps each shard on few distinct seeds and
/// the shared trace cache hot.
[[nodiscard]] std::vector<ExperimentSpec> make_campaign_grid(
    const ScenarioConfig& base, std::span<const CampaignSeries> series,
    std::size_t replications);

/// Runs every spec on the pool (order-preserving, same contract as run_sweep)
/// with the channel substrate shared through the trace cache. With
/// `use_trace_cache` off each cell generates its own trace — same results,
/// bit for bit; this is the baseline the perf gate measures against.
[[nodiscard]] std::vector<RunMetrics> run_campaign(
    std::span<const ExperimentSpec> specs, const CampaignOptions& options = {});

/// Trace identity of one campaign cell: the scenario that defines the channel
/// substrate plus the extra key component service-mode runs contribute
/// (TraceKey::session_fingerprint, 0 for batch cells).
struct CampaignCell {
  const ScenarioConfig* scenario = nullptr;
  std::uint64_t session_fingerprint = 0;
};

/// Bumps the campaign.* telemetry counters (one grid of `cells` cells).
void note_campaign_cells(std::size_t cells);

/// Generic campaign driver both the batch and service engines run on: for
/// each cell index, resolve its trace identity via `cell_of(i)` →
/// CampaignCell, serve the shared substrate out of the trace cache (or
/// regenerate per cell with `use_trace_cache` off), and run
/// `run_cell(i, trace)` on the pool. Order-preserving; results are returned
/// in cell order.
/// Attaches a persistent store to a cache for one campaign's lifetime and
/// flushes the cache's resident working set to it on the way out (so a warm
/// store holds every trace the campaign touched, not just LRU overflow).
class ScopedStoreAttachment {
 public:
  ScopedStoreAttachment(TraceCache& cache, TraceStore* store)
      : cache_(cache), store_(store) {
    if (store_ != nullptr) cache_.attach_store(store_);
  }
  ~ScopedStoreAttachment() {
    if (store_ == nullptr) return;
    try {
      cache_.spill_resident();
    } catch (...) {
      // Best-effort flush: a full disk must not mask the campaign's results.
    }
    cache_.attach_store(nullptr);
  }
  ScopedStoreAttachment(const ScopedStoreAttachment&) = delete;
  ScopedStoreAttachment& operator=(const ScopedStoreAttachment&) = delete;

 private:
  TraceCache& cache_;
  TraceStore* store_;
};

template <typename CellOf, typename RunCell>
[[nodiscard]] auto run_campaign_cells(std::size_t cells, const CampaignOptions& options,
                                      CellOf&& cell_of, RunCell&& run_cell) {
  note_campaign_cells(cells);
  TraceCache* cache = options.cache != nullptr ? options.cache : &global_trace_cache();
  const ScopedStoreAttachment attachment(
      *cache, options.use_trace_cache ? options.store : nullptr);
  ThreadPool pool(options.threads);
  return parallel_map(pool, cells, [&](std::size_t i) {
    const CampaignCell cell = cell_of(i);
    const std::shared_ptr<const SignalTraceSet> trace =
        options.use_trace_cache
            ? cache->get_or_generate(*cell.scenario, cell.session_fingerprint)
            : generate_signal_trace_set(*cell.scenario);
    return run_cell(i, trace);
  });
}

}  // namespace jstream
