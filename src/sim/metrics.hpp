// Metric collection for simulation runs: the paper's PE (Eq. 6), PC (Eq. 9),
// the Jain fairness index over per-slot shares F_i = d_i / d_need(i)
// (Section VI-A), and the transmission/tail energy split of Fig. 5b.
#pragma once

#include <cstdint>
#include <vector>

#include "gateway/data_transmitter.hpp"
#include "gateway/slot_context.hpp"

namespace jstream {

/// Aggregates for one user over a whole run.
struct UserTotals {
  double trans_mj = 0.0;
  double tail_mj = 0.0;
  double rebuffer_s = 0.0;
  double delivered_kb = 0.0;
  std::int64_t session_slots = 0;  ///< Gamma_i: slots until playback finished
  std::int64_t tx_slots = 0;       ///< slots in which this user transmitted
  bool playback_finished = false;

  [[nodiscard]] double energy_mj() const noexcept { return trans_mj + tail_mj; }
};

/// Results of one simulation run.
struct RunMetrics {
  std::int64_t slots_run = 0;
  std::vector<UserTotals> per_user;

  // Per-slot series (kept when MetricsCollector is constructed with
  // keep_series = true).
  std::vector<double> slot_fairness;       ///< Jain index over needy users
  std::vector<double> slot_energy_mj;      ///< total energy across users
  std::vector<double> rebuffer_samples_s;  ///< c_i(n) for users mid-playback

  /// Sum of E_i(n) over all users and slots, mJ.
  [[nodiscard]] double total_energy_mj() const noexcept;
  [[nodiscard]] double total_trans_mj() const noexcept;
  [[nodiscard]] double total_tail_mj() const noexcept;

  /// Sum of c_i(n) over all users and slots, seconds.
  [[nodiscard]] double total_rebuffer_s() const noexcept;

  /// PE analogue normalized per session slot: mean over users of
  /// (total energy of user i) / Gamma_i.
  [[nodiscard]] double avg_energy_per_user_slot_mj() const noexcept;

  /// Tail-energy component of the same average (Fig. 5b's black bar).
  [[nodiscard]] double avg_tail_per_user_slot_mj() const noexcept;

  /// PC analogue: mean over users of (total rebuffering of i) / Gamma_i.
  [[nodiscard]] double avg_rebuffer_per_user_slot_s() const noexcept;

  /// Mean per-slot Jain fairness index.
  [[nodiscard]] double mean_fairness() const noexcept;

  /// Fraction of users whose playback completed within the horizon.
  [[nodiscard]] double completion_rate() const noexcept;
};

/// Streams per-slot outcomes into RunMetrics.
class MetricsCollector {
 public:
  explicit MetricsCollector(std::size_t users, bool keep_series = true);

  /// Records one executed slot. `ctx` must be the context the slot ran with
  /// and `outcome` the transmitter's result.
  void record_slot(const SlotContext& ctx, const SlotOutcome& outcome);

  /// Finalizes and returns the metrics (collector may not be reused after).
  [[nodiscard]] RunMetrics finish();

 private:
  RunMetrics metrics_;
  bool keep_series_;
  std::vector<double> shares_;  ///< per-slot fairness workspace (reused)
};

}  // namespace jstream
