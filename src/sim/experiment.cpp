#include "sim/experiment.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/forecast.hpp"

namespace jstream {

std::unique_ptr<Scheduler> make_scheduler_for_scenario(const std::string& name,
                                                       const SchedulerOptions& options,
                                                       const ScenarioConfig& scenario) {
  if (name == "ema-predictive") {
    const PredictiveEmaConfig& pred = options.ema_predictive;
    std::vector<std::vector<double>> forecast;
    if (pred.horizon_slots > 0) {
      forecast =
          make_signal_forecast(scenario, scenario.max_slots, scenario.forecast);
    } else {
      // Horizon 0 never reads the forecast; empty per-user rows keep the
      // population check satisfied without replaying the channel.
      forecast.assign(scenario.users, {});
    }
    return std::make_unique<PredictiveEmaScheduler>(options.ema, pred,
                                                    std::move(forecast));
  }
  return make_scheduler(name, options);
}

RunMetrics run_experiment(const ExperimentSpec& spec, bool keep_series,
                          std::shared_ptr<const SignalTraceSet> trace) {
  Simulator simulator(spec.scenario,
                      make_scheduler_for_scenario(spec.scheduler, spec.options,
                                                  spec.scenario),
                      SchedulingMode::kBaseline, std::move(trace));
  return simulator.run(keep_series);
}

DefaultReference run_default_reference(const ScenarioConfig& scenario,
                                       TraceCache* cache) {
  const RunMetrics metrics =
      simulate(scenario, make_scheduler("default"), /*keep_series=*/false,
               cache != nullptr ? cache->get_or_generate(scenario) : nullptr);
  DefaultReference reference;
  reference.energy_per_user_slot_mj = metrics.avg_energy_per_user_slot_mj();
  reference.rebuffer_per_user_slot_s = metrics.avg_rebuffer_per_user_slot_s();
  reference.total_energy_mj = metrics.total_energy_mj();
  reference.total_rebuffer_s = metrics.total_rebuffer_s();
  double sum = 0.0;
  std::size_t counted = 0;
  for (const UserTotals& user : metrics.per_user) {
    if (user.tx_slots == 0) continue;
    sum += user.trans_mj / as_double(user.tx_slots);
    ++counted;
  }
  if (counted > 0) reference.trans_per_tx_slot_mj = sum / as_double(counted);
  return reference;
}

SchedulerOptions rtma_options_for_alpha(double alpha, const DefaultReference& reference) {
  require(alpha > 0.0, "alpha must be positive");
  SchedulerOptions options;
  options.rtma.energy_budget_mj = alpha * reference.trans_per_tx_slot_mj;
  return options;
}

double calibrate_v_for_rebuffer(const ScenarioConfig& scenario, double omega_s,
                                double v_min, double v_max, int iterations,
                                TraceCache* cache) {
  require(omega_s >= 0.0, "rebuffering bound must be non-negative");
  require(v_min > 0.0 && v_min < v_max, "V search range is invalid");
  require(iterations > 0, "need at least one iteration");

  const std::shared_ptr<const SignalTraceSet> trace =
      cache != nullptr ? cache->get_or_generate(scenario) : nullptr;
  const auto rebuffer_at = [&](double v) {
    SchedulerOptions options;
    options.ema.v_weight = v;
    const RunMetrics metrics = simulate(scenario, make_scheduler("ema-fast", options),
                                        /*keep_series=*/false, trace);
    return metrics.avg_rebuffer_per_user_slot_s();
  };

  // Rebuffering grows with V (more energy saving -> more deferral), but
  // bottoms out at an irreducible floor (cold-start stalls and the queue
  // warm-up) and stays nearly flat around it while the energy keeps falling.
  // A bound below that plateau is unreachable; relax the search target to
  // 30% above the floor so the calibration returns the knee of the curve —
  // the most energy-saving V whose rebuffering is still close to the bound.
  const double floor_s = rebuffer_at(v_min);
  const double target_s = std::max(omega_s, floor_s * 1.3);
  if (rebuffer_at(v_max) <= target_s) return v_max;
  double lo = std::log(v_min);  // feasible (== floor by construction)
  double hi = std::log(v_max);  // infeasible
  for (int iter = 0; iter < iterations; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (rebuffer_at(std::exp(mid)) <= target_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::exp(lo);
}

}  // namespace jstream
