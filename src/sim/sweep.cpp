#include "sim/sweep.hpp"

#include "common/thread_pool.hpp"

namespace jstream {

std::vector<RunMetrics> run_sweep(std::span<const ExperimentSpec> specs,
                                  std::size_t threads, bool keep_series) {
  ThreadPool pool(threads);
  return parallel_map(pool, specs.size(), [&](std::size_t i) {
    return run_experiment(specs[i], keep_series);
  });
}

}  // namespace jstream
