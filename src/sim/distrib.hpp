// Multi-process sharded campaign execution.
//
// One process per shard, where a shard is a contiguous slice of the rep-major
// campaign grid: the parent forks a worker per shard, each worker runs its
// slice through the ordinary serial campaign engine (thread pool, trace
// cache, optional persistent store) and streams its results back over a pipe
// as one versioned, checksummed binary frame; the parent validates, decodes,
// and concatenates the slices in shard order. Because the grid is rep-major
// and the shards are contiguous, concatenation IS serial order, and because
// every cell is an independent deterministic simulation, the merged
// RunMetrics are bit-identical to a serial run of the same specs — the
// differential tests and the perf gate both assert this, via the digests
// below.
//
// Fork safety: callers must invoke the distributed runners from a quiescent
// process — no live worker threads (ThreadPools in this codebase only exist
// inside run_campaign calls, so calling from the orchestrating thread between
// campaigns is safe). Workers inherit the parent's ScenarioConfig specs,
// validation flag, and attached TraceStore by address-space copy; only
// results cross process boundaries.
//
// The optional NUMA placement (DistribOptions::numa_bind) pins shard k's
// worker to NUMA node k mod nodes via sched_setaffinity, so each worker's
// trace matrices are generated, faulted, and collected on one socket's local
// memory. No-op on single-node machines and when node topology is not
// exposed under /sys.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/campaign.hpp"

namespace jstream {

/// Execution knobs for the distributed runners.
struct DistribOptions {
  /// Worker process count (= shard count). 0 picks two shards — the smallest
  /// configuration that exercises the merge; callers wanting one process per
  /// socket or per N cells choose explicitly. Clamped to the cell count.
  std::size_t processes = 0;
  /// Per-worker execution knobs, used verbatim by every worker (threads,
  /// trace cache, persistent store). A non-null `campaign.store` is shared by
  /// all workers through the filesystem: spills are atomic and idempotent, so
  /// concurrent workers cooperate instead of conflicting.
  CampaignOptions campaign;
  /// Pin shard k's worker to NUMA node k mod <nodes> (see file comment).
  bool numa_bind = false;
};

/// Contiguous half-open cell range [begin, end) owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool operator==(const ShardRange&) const noexcept = default;
};

/// Splits `cells` into at most `shards` contiguous non-empty ranges that
/// cover [0, cells) in order. Sizes differ by at most one (remainder spread
/// over the leading shards); fewer than `shards` ranges come back when there
/// are fewer cells than shards. `shards` 0 is treated as 1.
[[nodiscard]] std::vector<ShardRange> shard_ranges(std::size_t cells,
                                                   std::size_t shards);

/// Parses a /sys-style CPU list ("0-3,8,10-11") into CPU ids, in order.
/// Throws Error on malformed input. Exposed for tests; the NUMA binding path
/// feeds it /sys/devices/system/node/node<k>/cpulist.
[[nodiscard]] std::vector<int> parse_cpu_list(const std::string& text);

/// Little-endian binary encoder for result frames. Integers are fixed-width;
/// doubles travel as their IEEE-754 bit patterns, so encode/decode round
/// trips are bit-exact (the merge protocol's whole point).
class ByteWriter {
 public:
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void boolean(bool value);
  void doubles(std::span<const double> values);  ///< count + payload

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked reader over a ByteWriter payload. Throws Error on overrun
/// or (via finish()) trailing bytes — a truncated or oversized frame must
/// never decode quietly.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::vector<double> doubles();

  /// Count of bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  /// Asserts the payload was consumed exactly.
  void finish() const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

/// Canonical binary encoding of one run's metrics (every field, per-slot
/// series included). decode(encode(m)) reproduces m bit for bit.
void encode_run_metrics(ByteWriter& out, const RunMetrics& metrics);
[[nodiscard]] RunMetrics decode_run_metrics(ByteReader& in);

/// XXH64 over the canonical encoding: equal digests <=> bit-identical
/// metrics. The span overload digests the whole result vector (count mixed
/// in), which is what serial-vs-sharded comparisons assert on.
[[nodiscard]] std::uint64_t metrics_digest(const RunMetrics& metrics);
[[nodiscard]] std::uint64_t metrics_digest(std::span<const RunMetrics> metrics);

/// Low-level fork/pipe engine shared by the batch and service runners: forks
/// one worker per shard of [0, cells), calls `encode_slice(shard, range)` in
/// the child (returning the frame payload bytes), and hands the validated
/// payloads back in shard order. A worker whose encode_slice throws reports
/// the exception message in an error frame; the parent reaps every child,
/// then rethrows as Error naming the shard. Used directly only by runner
/// implementations; everyone else wants run_campaign_distributed or
/// run_service_campaign_distributed.
class ShardEncoder {
 public:
  virtual ~ShardEncoder() = default;
  [[nodiscard]] virtual std::vector<std::uint8_t> encode_slice(
      std::size_t shard, ShardRange range) = 0;
};

/// One shard's validated result frame payload, tagged with the cell range it
/// covers (as stamped in the frame header and checked by the parent).
struct ShardPayload {
  ShardRange range;
  std::vector<std::uint8_t> bytes;
};

[[nodiscard]] std::vector<ShardPayload> run_forked_shards(std::size_t cells,
                                                          std::size_t processes,
                                                          bool numa_bind,
                                                          ShardEncoder& encoder);

/// run_campaign split across worker processes; the merged result vector is
/// bit-identical to run_campaign(specs, options.campaign) (see file comment).
[[nodiscard]] std::vector<RunMetrics> run_campaign_distributed(
    std::span<const ExperimentSpec> specs, const DistribOptions& options = {});

}  // namespace jstream
