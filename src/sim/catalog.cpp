#include "sim/catalog.hpp"

#include "common/error.hpp"

namespace jstream {

std::vector<ScenarioPreset> scenario_catalog() {
  return {
      {"paper", "Section VI defaults: 3G RRC, sine RSSI, CBR 300-600 KB/s"},
      {"lte", "paper workload on the LTE two-state RRC profile"},
      {"vbr", "variable-bitrate content (bounded random walk)"},
      {"churn", "sessions arrive over the first 600 slots"},
      {"wave", "base-station capacity oscillates +-30% (period 900 slots)"},
      {"gauss-markov", "AR(1) channel instead of the sine process"},
      {"stress", "churn + VBR + capacity wave combined"},
  };
}

ScenarioConfig make_catalog_scenario(const std::string& name, std::size_t users,
                                     std::uint64_t seed) {
  ScenarioConfig config = paper_scenario(users, seed);
  if (name == "paper") return config;
  if (name == "lte") {
    config.radio = lte_profile();
    return config;
  }
  if (name == "vbr") {
    config.vbr = true;
    return config;
  }
  if (name == "churn") {
    config.arrival_spread_slots = 600;
    return config;
  }
  if (name == "wave") {
    config.capacity_kind = CapacityKind::kSine;
    config.capacity_wave_fraction = 0.3;
    config.capacity_wave_period = 900.0;
    return config;
  }
  if (name == "gauss-markov") {
    config.signal_kind = SignalKind::kGaussMarkov;
    return config;
  }
  if (name == "stress") {
    config.arrival_spread_slots = 600;
    config.vbr = true;
    config.capacity_kind = CapacityKind::kSine;
    config.capacity_wave_fraction = 0.3;
    config.capacity_wave_period = 900.0;
    return config;
  }
  throw Error("unknown scenario preset: " + name);
}

}  // namespace jstream
