#include "sim/forecast.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

std::vector<std::vector<double>> make_signal_forecast(const ScenarioConfig& config,
                                                      std::int64_t slots) {
  require(slots > 0, "forecast needs at least one slot");
  std::vector<UserEndpoint> endpoints = build_endpoints(config);
  std::vector<std::vector<double>> forecast(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    forecast[i].reserve(checked_size(slots));
    for (std::int64_t slot = 0; slot < slots; ++slot) {
      forecast[i].push_back(endpoints[i].signal->signal_dbm(slot));
    }
  }
  return forecast;
}

}  // namespace jstream
