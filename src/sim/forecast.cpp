#include "sim/forecast.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/fault.hpp"
#include "sim/scenario.hpp"

namespace jstream {

namespace {

// Forecast RNG root: disjoint from the endpoint construction streams
// (Rng(config.seed).split(i) for user indices i) and from the fault root
// (kFaultRootStream = 0xfa17...), so tuning forecast noise perturbs nothing
// about the channel, the content, or the fault windows.
constexpr std::uint64_t kForecastRootStream = 0x4fca5700'00000000ULL;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& hash, double value) noexcept {
  fnv_mix(hash, std::bit_cast<std::uint64_t>(value));
}

}  // namespace

void validate(const ForecastErrorSpec& spec) {
  require(spec.sigma_dbm >= 0.0, "forecast noise sigma must be non-negative");
  require(spec.staleness_slots >= 0, "forecast staleness must be non-negative");
}

std::uint64_t forecast_fingerprint(const ForecastErrorSpec& spec) noexcept {
  if (!spec.any_error()) return 0;
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, spec.sigma_dbm);
  fnv_mix(hash, spec.bias_dbm);
  fnv_mix(hash, static_cast<std::uint64_t>(spec.staleness_slots));
  fnv_mix(hash, static_cast<std::uint64_t>(spec.track_fault_staleness));
  fnv_mix(hash, spec.salt);
  return hash;
}

std::vector<std::vector<double>> make_signal_forecast(const ScenarioConfig& config,
                                                      std::int64_t slots) {
  require(slots > 0, "forecast needs at least one slot");
  std::vector<UserEndpoint> endpoints = build_endpoints(config);
  std::vector<std::vector<double>> forecast(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    forecast[i].reserve(checked_size(slots));
    for (std::int64_t slot = 0; slot < slots; ++slot) {
      forecast[i].push_back(endpoints[i].signal->signal_dbm(slot));
    }
  }
  return forecast;
}

std::vector<std::vector<double>> make_signal_forecast(const ScenarioConfig& config,
                                                      std::int64_t slots,
                                                      const ForecastErrorSpec& spec) {
  validate(spec);
  std::vector<std::vector<double>> forecast = make_signal_forecast(config, slots);
  if (!spec.any_error()) return forecast;

  // Predictor lag: shift each trajectory right by staleness_slots, holding
  // the first sample over the warm-up stretch.
  if (spec.staleness_slots > 0) {
    const std::int64_t lag = std::min(spec.staleness_slots, slots);
    for (std::vector<double>& trace : forecast) {
      std::copy_backward(trace.begin(), trace.end() - lag, trace.end());
      std::fill(trace.begin(), trace.begin() + lag, trace.front());
    }
  }

  // Fault coupling: inside a stale-feedback window the predictor's input feed
  // is frozen, so every in-window slot forecasts the last pre-window value
  // (post-lag). Scenarios without stale windows are untouched.
  if (spec.track_fault_staleness && config.faults.staleness_rate_per_kslot > 0.0) {
    const FaultSchedule schedule = make_fault_schedule(config);
    for (std::size_t user = 0; user < forecast.size(); ++user) {
      std::vector<double>& trace = forecast[user];
      for (const FaultInterval& window : schedule.stale_windows(user)) {
        const std::int64_t begin = std::clamp<std::int64_t>(window.begin, 0, slots);
        const std::int64_t end = std::clamp<std::int64_t>(window.end, 0, slots);
        if (begin >= end) continue;
        const double frozen = trace[checked_size(std::max<std::int64_t>(begin - 1, 0))];
        std::fill(trace.begin() + begin, trace.begin() + end, frozen);
      }
    }
  }

  // Observation noise + miscalibration, clamped to the legal signal range so
  // downstream link-model fits stay in their positive domain.
  if (spec.sigma_dbm > 0.0 || spec.bias_dbm != 0.0) {
    const Rng forecast_root = Rng(config.seed).split(kForecastRootStream + spec.salt);
    for (std::size_t user = 0; user < forecast.size(); ++user) {
      Rng user_rng = forecast_root.split(user);
      for (double& sample : forecast[user]) {
        const double noise =
            spec.sigma_dbm > 0.0 ? user_rng.gaussian(0.0, spec.sigma_dbm) : 0.0;
        sample = std::clamp(sample + spec.bias_dbm + noise, kMinSignalDbm,
                            kMaxSignalDbm);
      }
    }
  }
  return forecast;
}

}  // namespace jstream
