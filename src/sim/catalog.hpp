// Named scenario presets: one-line access to the evaluation settings the
// repository ships (the paper's, plus the extension scenarios). Used by the
// CLI example and handy for downstream experimentation.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace jstream {

/// One catalog entry.
struct ScenarioPreset {
  std::string name;
  std::string description;
};

/// All preset names with one-line descriptions.
[[nodiscard]] std::vector<ScenarioPreset> scenario_catalog();

/// Builds a preset by name (see scenario_catalog()):
///   "paper"        — Section VI defaults (3G, sine RSSI, CBR)
///   "lte"          — paper workload on the LTE RRC profile
///   "vbr"          — variable-bitrate content
///   "churn"        — sessions arrive over the first 600 slots
///   "wave"         — base-station capacity oscillates +-30%
///   "gauss-markov" — AR(1) channel instead of the sine
///   "stress"       — churn + VBR + capacity wave combined
/// Throws jstream::Error for unknown names.
[[nodiscard]] ScenarioConfig make_catalog_scenario(const std::string& name,
                                                   std::size_t users = 40,
                                                   std::uint64_t seed = 42);

}  // namespace jstream
