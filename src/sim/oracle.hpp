// Offline energy oracle: a lower-bound *estimate* for the minimum achievable
// transmission energy E* of a scenario (the quantity Theorem 1's bounds are
// stated against).
//
// With full knowledge of every user's signal trajectory, delivering a byte in
// slot n costs P(sig_i(n)) per KB, a byte of content at playback position t
// must arrive no later than its deadline (startup delay + t), and slots are
// capacity- and link-limited. Minimizing total cost is a transportation
// problem; the oracle solves it with a cheapest-(user,slot)-first greedy: a
// unit of content may be served in any slot up to its deadline, so scanning
// (user, slot) pairs by ascending per-KB price and assigning each user's
// latest-deadline-first pending units never strands demand unnecessarily.
// The result is a certified *feasible* schedule, hence an upper bound on the
// true optimum and a sound comparator for online schedulers; tail energy is
// accounted from the resulting transmission gaps (Eq. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scenario.hpp"

namespace jstream {

/// Oracle schedule outcome.
struct OracleResult {
  double total_trans_mj = 0.0;
  double total_tail_mj = 0.0;
  std::vector<double> per_user_trans_mj;
  std::vector<double> per_user_tail_mj;
  std::int64_t horizon_slots = 0;  ///< slots the oracle scheduled over
  bool feasible = true;            ///< every unit met its deadline
  /// Units whose deadline window had no link/capacity room left (the online
  /// schedulers stall on these too); priced at their window's cheapest rate
  /// so the byte bill stays complete.
  std::int64_t stranded_units = 0;

  [[nodiscard]] double total_energy_mj() const noexcept {
    return total_trans_mj + total_tail_mj;
  }

  /// E* analogue normalized like RunMetrics::avg_energy_per_user_slot_mj
  /// (per user per playback slot).
  [[nodiscard]] double avg_energy_per_user_slot_mj(
      const std::vector<double>& session_playback_s) const;
};

/// Oracle parameters.
struct OracleSpec {
  /// Startup allowance: content at playback position t must arrive by slot
  /// startup_slots + floor(t / tau). One slot reproduces the simulator's
  /// cold-start (shards become usable the slot after delivery).
  std::int64_t startup_slots = 1;
};

/// Computes the offline schedule for `config`'s population (signals replayed
/// deterministically from the scenario seed). Throws jstream::Error when the
/// scenario itself is invalid.
[[nodiscard]] OracleResult offline_energy_bound(const ScenarioConfig& config,
                                                const OracleSpec& spec = {});

}  // namespace jstream
