#include "sim/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace jstream {

double RunMetrics::total_energy_mj() const noexcept {
  return total_trans_mj() + total_tail_mj();
}

double RunMetrics::total_trans_mj() const noexcept {
  double total = 0.0;
  for (const auto& u : per_user) total += u.trans_mj;
  return total;
}

double RunMetrics::total_tail_mj() const noexcept {
  double total = 0.0;
  for (const auto& u : per_user) total += u.tail_mj;
  return total;
}

double RunMetrics::total_rebuffer_s() const noexcept {
  double total = 0.0;
  for (const auto& u : per_user) total += u.rebuffer_s;
  return total;
}

double RunMetrics::avg_energy_per_user_slot_mj() const noexcept {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& u : per_user) {
    const auto slots = std::max<std::int64_t>(u.session_slots, 1);
    sum += u.energy_mj() / static_cast<double>(slots);
  }
  return sum / static_cast<double>(per_user.size());
}

double RunMetrics::avg_tail_per_user_slot_mj() const noexcept {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& u : per_user) {
    const auto slots = std::max<std::int64_t>(u.session_slots, 1);
    sum += u.tail_mj / static_cast<double>(slots);
  }
  return sum / static_cast<double>(per_user.size());
}

double RunMetrics::avg_rebuffer_per_user_slot_s() const noexcept {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& u : per_user) {
    const auto slots = std::max<std::int64_t>(u.session_slots, 1);
    sum += u.rebuffer_s / static_cast<double>(slots);
  }
  return sum / static_cast<double>(per_user.size());
}

double RunMetrics::mean_fairness() const noexcept {
  if (slot_fairness.empty()) return 1.0;
  double sum = 0.0;
  for (double f : slot_fairness) sum += f;
  return sum / static_cast<double>(slot_fairness.size());
}

double RunMetrics::completion_rate() const noexcept {
  if (per_user.empty()) return 0.0;
  const auto done = std::count_if(per_user.begin(), per_user.end(),
                                  [](const UserTotals& u) { return u.playback_finished; });
  return static_cast<double>(done) / static_cast<double>(per_user.size());
}

MetricsCollector::MetricsCollector(std::size_t users, bool keep_series)
    : keep_series_(keep_series) {
  // Zero users is a legal degenerate run: every aggregate below guards its
  // divisions, so summarization and export of an empty run stay well-defined.
  metrics_.per_user.resize(users);
}

void MetricsCollector::record_slot(const SlotContext& ctx, const SlotOutcome& outcome) {
  const std::size_t n = metrics_.per_user.size();
  require(ctx.user_count() == n && outcome.units.size() == n,
          "slot record size mismatch");
  ++metrics_.slots_run;

  double slot_energy = 0.0;
  shares_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    UserTotals& user = metrics_.per_user[i];
    const UserSlotInfo& info = ctx.users[i];
    user.trans_mj += outcome.trans_mj[i];
    user.tail_mj += outcome.tail_mj[i];
    user.delivered_kb += outcome.kb[i];
    if (outcome.units[i] > 0) ++user.tx_slots;
    slot_energy += outcome.trans_mj[i] + outcome.tail_mj[i];

    // A departed user's session is over without finishing: it stops accruing
    // session slots and stall time the moment it aborts.
    const bool in_playback = info.arrived && !info.playback_done && !info.departed;
    if (in_playback) {
      user.rebuffer_s += outcome.rebuffer_s[i];
      ++user.session_slots;
      if (keep_series_) metrics_.rebuffer_samples_s.push_back(outcome.rebuffer_s[i]);
    } else if (info.playback_done && !info.departed) {
      user.playback_finished = true;
    }
    if (outcome.need_kb[i] > 0.0) {
      shares_.push_back(outcome.kb[i] / outcome.need_kb[i]);
    }
  }
  if (keep_series_) {
    metrics_.slot_energy_mj.push_back(slot_energy);
    // A slot where every demanding user is starved (all shares zero — e.g.
    // everyone outaged) is uniformly unfair to no one: jain_index defines it
    // as 1.0. A slot with no demand at all contributes no sample.
    if (!shares_.empty()) metrics_.slot_fairness.push_back(jain_index(shares_));
  }
}

RunMetrics MetricsCollector::finish() { return std::move(metrics_); }

}  // namespace jstream
