#include "sim/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace jstream {

double RunMetrics::total_energy_mj() const noexcept {
  return total_trans_mj() + total_tail_mj();
}

double RunMetrics::total_trans_mj() const noexcept {
  double total = 0.0;
  for (const auto& u : per_user) total += u.trans_mj;
  return total;
}

double RunMetrics::total_tail_mj() const noexcept {
  double total = 0.0;
  for (const auto& u : per_user) total += u.tail_mj;
  return total;
}

double RunMetrics::total_rebuffer_s() const noexcept {
  double total = 0.0;
  for (const auto& u : per_user) total += u.rebuffer_s;
  return total;
}

double RunMetrics::avg_energy_per_user_slot_mj() const noexcept {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& u : per_user) {
    const auto slots = std::max<std::int64_t>(u.session_slots, 1);
    sum += u.energy_mj() / as_double(slots);
  }
  return sum / as_double(per_user.size());
}

double RunMetrics::avg_tail_per_user_slot_mj() const noexcept {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& u : per_user) {
    const auto slots = std::max<std::int64_t>(u.session_slots, 1);
    sum += u.tail_mj / as_double(slots);
  }
  return sum / as_double(per_user.size());
}

double RunMetrics::avg_rebuffer_per_user_slot_s() const noexcept {
  if (per_user.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& u : per_user) {
    const auto slots = std::max<std::int64_t>(u.session_slots, 1);
    sum += u.rebuffer_s / as_double(slots);
  }
  return sum / as_double(per_user.size());
}

double RunMetrics::mean_fairness() const noexcept {
  if (slot_fairness.empty()) return 1.0;
  double sum = 0.0;
  for (double f : slot_fairness) sum += f;
  return sum / as_double(slot_fairness.size());
}

double RunMetrics::completion_rate() const noexcept {
  if (per_user.empty()) return 0.0;
  const auto done = std::count_if(per_user.begin(), per_user.end(),
                                  [](const UserTotals& u) { return u.playback_finished; });
  return as_double(done) / as_double(per_user.size());
}

MetricsCollector::MetricsCollector(std::size_t users, bool keep_series)
    : keep_series_(keep_series) {
  // Zero users is a legal degenerate run: every aggregate below guards its
  // divisions, so summarization and export of an empty run stay well-defined.
  metrics_.per_user.resize(users);
}

void MetricsCollector::record_slot(const SlotContext& ctx, const SlotOutcome& outcome) {
  const std::size_t n = metrics_.per_user.size();
  require(ctx.user_count() == n && outcome.units.size() == n,
          "slot record size mismatch");
  ++metrics_.slots_run;

  double slot_energy = 0.0;
  shares_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    UserTotals& user = metrics_.per_user[i];
    const UserSlotInfo& info = ctx.users[i];
    user.trans_mj += outcome.trans_mj[i];
    user.tail_mj += outcome.tail_mj[i];
    user.delivered_kb += outcome.kb[i];
    if (outcome.units[i] > 0) ++user.tx_slots;
    slot_energy += outcome.trans_mj[i] + outcome.tail_mj[i];

    // A departed user's session is over without finishing: it stops accruing
    // session slots and stall time the moment it aborts.
    const bool in_playback = info.arrived && !info.playback_done && !info.departed;
    if (in_playback) {
      user.rebuffer_s += outcome.rebuffer_s[i];
      ++user.session_slots;
      if (keep_series_) metrics_.rebuffer_samples_s.push_back(outcome.rebuffer_s[i]);
    } else if (info.playback_done && !info.departed) {
      user.playback_finished = true;
    }
    if (outcome.need_kb[i] > 0.0) {
      shares_.push_back(outcome.kb[i] / outcome.need_kb[i]);
    }
  }
  if (keep_series_) {
    metrics_.slot_energy_mj.push_back(slot_energy);
    // A slot where every demanding user is starved (all shares zero — e.g.
    // everyone outaged) is uniformly unfair to no one: jain_index defines it
    // as 1.0. A slot with no demand at all contributes no sample.
    if (!shares_.empty()) metrics_.slot_fairness.push_back(jain_index(shares_));
  }
}

RunMetrics MetricsCollector::finish() { return std::move(metrics_); }

double ServiceMetrics::mean_concurrency() const noexcept {
  return measured_slots == 0 ? 0.0
                             : concurrency_sum / as_double(measured_slots);
}

double ServiceMetrics::admit_rate() const noexcept {
  return offered == 0 ? 1.0
                      : as_double(admitted) / as_double(offered);
}

double ServiceMetrics::session_completion_rate() const noexcept {
  const std::int64_t ended = completed + aborted;
  return ended == 0 ? 0.0
                    : as_double(completed) / as_double(ended);
}

double ServiceMetrics::mean_rebuffer_per_user_slot_s() const noexcept {
  return active_user_slots == 0
             ? 0.0
             : rebuffer_sum_s / as_double(active_user_slots);
}

double ServiceMetrics::mean_energy_per_user_slot_mj() const noexcept {
  return active_user_slots == 0
             ? 0.0
             : energy_sum_mj / as_double(active_user_slots);
}

double ServiceMetrics::mean_session_rebuffer_s() const noexcept {
  return sessions_measured == 0
             ? 0.0
             : session_rebuffer_sum_s / as_double(sessions_measured);
}

double ServiceMetrics::mean_session_energy_mj() const noexcept {
  return sessions_measured == 0
             ? 0.0
             : session_energy_sum_mj / as_double(sessions_measured);
}

double ServiceMetrics::mean_session_slots() const noexcept {
  return sessions_measured == 0
             ? 0.0
             : as_double(session_length_slots_sum) /
                   as_double(sessions_measured);
}

ServiceMetricsCollector::ServiceMetricsCollector(std::size_t capacity_slots,
                                                 std::int64_t warmup_slots,
                                                 bool keep_records)
    : keep_records_(keep_records),
      session_rebuffer_s_(capacity_slots, 0.0),
      session_energy_mj_(capacity_slots, 0.0),
      session_start_(capacity_slots, 0),
      session_arrival_index_(capacity_slots, -1) {
  require(warmup_slots >= 0, "warmup must be non-negative");
  metrics_.warmup_slots = warmup_slots;
  metrics_.capacity_slots = capacity_slots;
}

void ServiceMetricsCollector::on_session_start(std::size_t user_slot,
                                               std::int64_t slot,
                                               std::int64_t arrival_index) {
  require(user_slot < session_rebuffer_s_.size(), "unknown population slot");
  ++metrics_.admitted;
  session_rebuffer_s_[user_slot] = 0.0;
  session_energy_mj_[user_slot] = 0.0;
  session_start_[user_slot] = slot;
  session_arrival_index_[user_slot] = arrival_index;
}

void ServiceMetricsCollector::on_session_end(std::size_t user_slot,
                                             std::int64_t end_slot,
                                             double delivered_kb, bool completed) {
  require(user_slot < session_rebuffer_s_.size(), "unknown population slot");
  ++(completed ? metrics_.completed : metrics_.aborted);
  // Only sessions that lived entirely inside the measured window join the
  // steady-state distributions; warmup-era sessions still count in the flow
  // totals above.
  if (session_start_[user_slot] >= metrics_.warmup_slots) {
    ++metrics_.sessions_measured;
    metrics_.session_rebuffer_sum_s += session_rebuffer_s_[user_slot];
    metrics_.session_energy_sum_mj += session_energy_mj_[user_slot];
    metrics_.session_delivered_sum_kb += delivered_kb;
    metrics_.session_length_slots_sum += end_slot - session_start_[user_slot];
    if (keep_records_) {
      metrics_.records.push_back(SessionRecord{
          user_slot, session_arrival_index_[user_slot], session_start_[user_slot],
          end_slot, delivered_kb, session_rebuffer_s_[user_slot],
          session_energy_mj_[user_slot], completed});
    }
  }
  session_arrival_index_[user_slot] = -1;
}

void ServiceMetricsCollector::record_slot(std::int64_t slot,
                                          std::size_t active_sessions,
                                          const SlotOutcome& outcome) {
  const std::size_t n = session_rebuffer_s_.size();
  require(outcome.rebuffer_s.size() == n && outcome.trans_mj.size() == n &&
              outcome.tail_mj.size() == n,
          "service slot record size mismatch");
  ++metrics_.slots_run;
  double slot_rebuffer = 0.0;
  double slot_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double energy = outcome.trans_mj[i] + outcome.tail_mj[i];
    session_rebuffer_s_[i] += outcome.rebuffer_s[i];
    session_energy_mj_[i] += energy;
    slot_rebuffer += outcome.rebuffer_s[i];
    slot_energy += energy;
  }
  if (slot < metrics_.warmup_slots) return;
  ++metrics_.measured_slots;
  metrics_.concurrency_sum += as_double(active_sessions);
  metrics_.peak_concurrency = std::max(metrics_.peak_concurrency, active_sessions);
  metrics_.rebuffer_sum_s += slot_rebuffer;
  metrics_.active_user_slots += checked_index(active_sessions);
  metrics_.energy_sum_mj += slot_energy;
}

ServiceMetrics ServiceMetricsCollector::finish(std::size_t in_flight) {
  metrics_.in_flight_at_end = checked_index(in_flight);
  return std::move(metrics_);
}

}  // namespace jstream
