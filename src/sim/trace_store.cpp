#include "sim/trace_store.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "radio/signal_trace_io.hpp"
#include "telemetry/registry.hpp"

namespace jstream {

namespace {

struct TraceStoreTelemetry {
  telemetry::Counter& spills;
  telemetry::Counter& promotions;
  telemetry::Counter& rejections;

  static TraceStoreTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static TraceStoreTelemetry probes{registry.counter("trace_store.spills"),
                                      registry.counter("trace_store.promotions"),
                                      registry.counter("trace_store.rejections")};
    return probes;
  }
};

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

}  // namespace

TraceStore::TraceStore(std::string directory) : directory_(std::move(directory)) {
  require(!directory_.empty(), "trace store needs a directory");
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  require(!ec && std::filesystem::is_directory(directory_),
          "trace store directory is not usable: " + directory_);
}

std::string TraceStore::path_for(std::uint64_t fingerprint) const {
  return directory_ + "/trace_" + hex16(fingerprint) + ".jst";
}

bool TraceStore::contains(std::uint64_t fingerprint) const {
  std::error_code ec;
  return std::filesystem::exists(path_for(fingerprint), ec) && !ec;
}

bool TraceStore::put(std::uint64_t fingerprint, const SignalTraceSet& set) {
  // Idempotent: equal fingerprints imply bit-identical payloads, so the first
  // complete file wins and later writers skip the (48 MB-per-entry) I/O.
  // Racing writers that both miss this check still converge — save_trace_set
  // renames a complete temp file into place atomically.
  if (contains(fingerprint)) return false;
  save_trace_set(path_for(fingerprint), set, fingerprint);
  {
    const std::lock_guard lock(mutex_);
    ++spills_;
  }
  if (telemetry::enabled()) TraceStoreTelemetry::instance().spills.add();
  return true;
}

std::shared_ptr<const SignalTraceSet> TraceStore::try_load(
    std::uint64_t fingerprint, std::size_t users, std::int64_t slots) {
  const std::string path = path_for(fingerprint);
  {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) return nullptr;
  }
  try {
    std::shared_ptr<const SignalTraceSet> set = load_trace_set(path, fingerprint);
    if (set->users() != users || set->slots() != slots) {
      throw TraceFileError("trace set dimensions disagree with the key: " + path);
    }
    {
      const std::lock_guard lock(mutex_);
      ++promotions_;
    }
    if (telemetry::enabled()) TraceStoreTelemetry::instance().promotions.add();
    return set;
  } catch (const TraceFileError&) {
    // Foreign schema, truncation, bit rot, or a filename collision: drop the
    // file so the regenerated set can land cleanly, and report a miss.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    {
      const std::lock_guard lock(mutex_);
      ++rejections_;
    }
    if (telemetry::enabled()) TraceStoreTelemetry::instance().rejections.add();
    return nullptr;
  }
}

std::uint64_t TraceStore::spills() const {
  const std::lock_guard lock(mutex_);
  return spills_;
}

std::uint64_t TraceStore::promotions() const {
  const std::lock_guard lock(mutex_);
  return promotions_;
}

std::uint64_t TraceStore::rejections() const {
  const std::lock_guard lock(mutex_);
  return rejections_;
}

}  // namespace jstream
