#include "sim/multicell.hpp"

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "common/units.hpp"

namespace jstream {

MultiCellConfig MultiCellConfig::uniform(const ScenarioConfig& base,
                                         std::size_t cell_count) {
  require(cell_count > 0, "deployment needs at least one cell");
  MultiCellConfig config;
  config.cells.reserve(cell_count);
  for (std::size_t cell = 0; cell < cell_count; ++cell) {
    ScenarioConfig scenario = base;
    scenario.seed = base.seed + cell;
    config.cells.push_back(std::move(scenario));
  }
  return config;
}

std::size_t MultiCellResult::total_users() const noexcept {
  std::size_t total = 0;
  for (const auto& cell : per_cell) total += cell.per_user.size();
  return total;
}

double MultiCellResult::total_energy_mj() const noexcept {
  double total = 0.0;
  for (const auto& cell : per_cell) total += cell.total_energy_mj();
  return total;
}

double MultiCellResult::total_rebuffer_s() const noexcept {
  double total = 0.0;
  for (const auto& cell : per_cell) total += cell.total_rebuffer_s();
  return total;
}

double MultiCellResult::avg_energy_per_user_slot_mj() const noexcept {
  const std::size_t users = total_users();
  if (users == 0) return 0.0;
  double weighted = 0.0;
  for (const auto& cell : per_cell) {
    weighted += cell.avg_energy_per_user_slot_mj() *
                as_double(cell.per_user.size());
  }
  return weighted / as_double(users);
}

double MultiCellResult::avg_rebuffer_per_user_slot_s() const noexcept {
  const std::size_t users = total_users();
  if (users == 0) return 0.0;
  double weighted = 0.0;
  for (const auto& cell : per_cell) {
    weighted += cell.avg_rebuffer_per_user_slot_s() *
                as_double(cell.per_user.size());
  }
  return weighted / as_double(users);
}

MultiCellResult simulate_multicell(const MultiCellConfig& config,
                                   const std::string& scheduler_name,
                                   const SchedulerOptions& options,
                                   std::size_t threads) {
  require(!config.cells.empty(), "deployment needs at least one cell");
  for (const auto& cell : config.cells) validate(cell);
  ThreadPool pool(threads);
  MultiCellResult result;
  result.per_cell = parallel_map(pool, config.cells.size(), [&](std::size_t cell) {
    // Each cell gets its own scheduler instance: framework state must not
    // leak between base stations. The scenario-aware factory lets predictive
    // series run per-cell (each cell's forecast follows its own seed).
    return simulate(config.cells[cell],
                    make_scheduler_for_scenario(scheduler_name, options,
                                                config.cells[cell]),
                    /*keep_series=*/false);
  });
  return result;
}

}  // namespace jstream
