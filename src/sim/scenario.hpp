// Scenario construction: turns the paper's Section VI parameters (or any
// variation of them) into a population of user endpoints plus the shared
// radio/link configuration. Beyond the paper's static setting, scenarios can
// stagger session arrivals (dynamic user traffic), switch the RSSI process,
// use VBR bitrates, and vary the base-station capacity over time.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gateway/user_endpoint.hpp"
#include "media/bitrate_profile.hpp"
#include "net/transmission.hpp"
#include "radio/link_model.hpp"
#include "radio/radio_profile.hpp"
#include "radio/signal_model.hpp"
#include "sim/fault.hpp"
#include "sim/forecast.hpp"

namespace jstream {

/// Which RSSI process drives each user.
enum class SignalKind {
  kSine,         ///< the paper's sine + AWGN with per-user phase (default)
  kGaussMarkov,  ///< AR(1) channel with per-user stream
  kTrace,        ///< shared recorded trace with per-user offset
};

/// How the base-station capacity evolves over time.
enum class CapacityKind {
  kConstant,  ///< S(n) = capacity_kbps (the paper's setting)
  kSine,      ///< diurnal-style load wave around capacity_kbps
};

/// Full description of one simulation configuration.
struct ScenarioConfig {
  std::size_t users = 40;
  std::int64_t max_slots = 10000;  ///< Gamma; runs may stop early (see below)
  std::uint64_t seed = 42;

  SlotParams slot;                    ///< tau = 1 s, delta = 100 KB by default
  double capacity_kbps = 20000.0;     ///< S: 20 MB/s at the base station
  double backhaul_kbps = 0.0;         ///< gateway-to-origin rate; 0 = unlimited

  double video_min_mb = 250.0;        ///< content size range (uniform)
  double video_max_mb = 500.0;
  double bitrate_min_kbps = 300.0;    ///< required data rate range (uniform)
  double bitrate_max_kbps = 600.0;

  /// Variable-bitrate content: when true, each session's required rate walks
  /// within [bitrate_min, bitrate_max] (RandomWalkBitrate) instead of staying
  /// constant.
  bool vbr = false;
  std::int64_t vbr_hold_slots = 30;   ///< walk re-sampling period
  double vbr_step_kbps = 50.0;        ///< max change per period

  /// Dynamic user traffic: session i starts at a uniform slot in
  /// [0, arrival_spread_slots]. 0 = everyone starts at slot 0 (paper setting).
  std::int64_t arrival_spread_slots = 0;

  /// RSSI process selection plus per-kind parameters.
  SignalKind signal_kind = SignalKind::kSine;
  SineSignalParams signal;                       ///< kSine (phase randomized)
  GaussMarkovSignalModel::Params gauss_markov;   ///< kGaussMarkov
  std::vector<double> trace_dbm;                 ///< kTrace (shared, offset per user)

  /// Base-station capacity dynamics.
  CapacityKind capacity_kind = CapacityKind::kConstant;
  double capacity_wave_fraction = 0.3;   ///< kSine amplitude as a fraction of S
  double capacity_wave_period = 900.0;   ///< kSine period in slots

  RadioProfile radio = paper_3g_profile();
  LinkModel link = make_paper_link_model();

  /// Degraded-cell fault intensities (outages, capacity dips, departures,
  /// stale feedback — see sim/fault.hpp). Default: all off, the paper's
  /// benign cell; with every intensity at zero the run is bit-identical to a
  /// config without faults. The schedule is derived from this plus `seed` on
  /// RNG streams independent of the endpoint streams, so enabling faults
  /// changes nothing about the channel or the content.
  FaultConfig faults;

  /// Forecast error model for prediction-assisted schedulers (see
  /// sim/forecast.hpp). Default: perfect forecasts. Like faults, the noise is
  /// drawn on RNG streams independent of the endpoint streams, and an
  /// inactive spec is the identity — it never alters the channel substrate,
  /// only what a predictive scheduler believes about it.
  ForecastErrorSpec forecast;

  /// Stop once every session has finished (plus a tail-flush margin) instead
  /// of idling to max_slots. Keeps metrics focused on session activity.
  bool early_stop = true;
};

/// The paper's evaluation scenario for `users` users.
[[nodiscard]] ScenarioConfig paper_scenario(std::size_t users = 40,
                                            std::uint64_t seed = 42);

/// Variant for the Fig. 4b / 8b sweeps: video sizes drawn from
/// U[avg - 100 MB, avg + 100 MB] around the requested average data amount.
[[nodiscard]] ScenarioConfig paper_scenario_with_data_amount(std::size_t users,
                                                             double avg_data_mb,
                                                             std::uint64_t seed = 42);

/// Materializes the per-user endpoints (signal stream, session, buffer, RRC,
/// arrival slot) deterministically from config.seed.
[[nodiscard]] std::vector<UserEndpoint> build_endpoints(const ScenarioConfig& config);

/// Capacity profile S(n) in KB/s implied by the configuration.
[[nodiscard]] std::function<double(std::int64_t)> capacity_profile(
    const ScenarioConfig& config);

/// Validates a configuration; throws jstream::Error with a description.
void validate(const ScenarioConfig& config);

}  // namespace jstream
