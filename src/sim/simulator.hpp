// The slotted simulation engine: builds a scenario's endpoints, wires the
// gateway framework around a scheduler, and runs the per-slot loop while
// streaming outcomes into a MetricsCollector.
#pragma once

#include <memory>

#include "gateway/framework.hpp"
#include "radio/signal_trace.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace jstream {

/// Runs one scheduler over one scenario.
class Simulator {
 public:
  /// Takes ownership of the scheduler. `mode` is recorded on the framework
  /// for introspection; it does not alter behaviour. `trace` optionally
  /// supplies the precomputed channel substrate (campaign engine): when set
  /// it must cover the scenario (same population, >= max_slots slots, link
  /// matrices derived) and the run reads signals from it instead of driving
  /// the per-endpoint SignalModels — bit-identical results either way.
  Simulator(ScenarioConfig config, std::unique_ptr<Scheduler> scheduler,
            SchedulingMode mode = SchedulingMode::kBaseline,
            std::shared_ptr<const SignalTraceSet> trace = nullptr);

  /// Runs to completion: until max_slots, or (with early_stop) until every
  /// session has finished and the RRC tails have been flushed. `keep_series`
  /// controls whether per-slot series are retained in the result.
  [[nodiscard]] RunMetrics run(bool keep_series = true);

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }

 private:
  ScenarioConfig config_;
  std::unique_ptr<Scheduler> scheduler_;
  SchedulingMode mode_;
  std::shared_ptr<const SignalTraceSet> trace_;
};

/// Convenience wrapper: build, run, and return metrics in one call.
[[nodiscard]] RunMetrics simulate(const ScenarioConfig& config,
                                  std::unique_ptr<Scheduler> scheduler,
                                  bool keep_series = true,
                                  std::shared_ptr<const SignalTraceSet> trace = nullptr);

}  // namespace jstream
