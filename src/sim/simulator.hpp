// The slotted simulation engine: builds a scenario's endpoints, wires the
// gateway framework around a scheduler, and runs the per-slot loop while
// streaming outcomes into a MetricsCollector.
#pragma once

#include <memory>

#include "gateway/framework.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace jstream {

/// Runs one scheduler over one scenario.
class Simulator {
 public:
  /// Takes ownership of the scheduler. `mode` is recorded on the framework
  /// for introspection; it does not alter behaviour.
  Simulator(ScenarioConfig config, std::unique_ptr<Scheduler> scheduler,
            SchedulingMode mode = SchedulingMode::kBaseline);

  /// Runs to completion: until max_slots, or (with early_stop) until every
  /// session has finished and the RRC tails have been flushed. `keep_series`
  /// controls whether per-slot series are retained in the result.
  [[nodiscard]] RunMetrics run(bool keep_series = true);

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }

 private:
  ScenarioConfig config_;
  std::unique_ptr<Scheduler> scheduler_;
  SchedulingMode mode_;
};

/// Convenience wrapper: build, run, and return metrics in one call.
[[nodiscard]] RunMetrics simulate(const ScenarioConfig& config,
                                  std::unique_ptr<Scheduler> scheduler,
                                  bool keep_series = true);

}  // namespace jstream
