// Parallel execution of experiment batches. Each ExperimentSpec is an
// independent simulation, so sweeps scale linearly with available cores.
#pragma once

#include <span>
#include <vector>

#include "sim/experiment.hpp"

namespace jstream {

/// Runs every spec (order-preserving results) on a thread pool with `threads`
/// workers (0 = hardware concurrency). `keep_series` as in run_experiment.
[[nodiscard]] std::vector<RunMetrics> run_sweep(std::span<const ExperimentSpec> specs,
                                                std::size_t threads = 0,
                                                bool keep_series = false);

}  // namespace jstream
