#include "sim/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "radio/rrc.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

struct UserPlan {
  std::vector<std::int64_t> unit_deadline;  ///< non-decreasing (content order)
  std::vector<double> unit_kb;              ///< delta, except a partial tail unit
  std::set<std::size_t> unassigned;         ///< unit indices still pending
  std::vector<std::int64_t> tx_slots;       ///< slots with at least one unit
  std::int64_t start_slot = 0;
};

}  // namespace

double OracleResult::avg_energy_per_user_slot_mj(
    const std::vector<double>& session_playback_s) const {
  require(session_playback_s.size() == per_user_trans_mj.size(),
          "session duration count mismatch");
  if (per_user_trans_mj.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < per_user_trans_mj.size(); ++i) {
    const double slots = std::max(session_playback_s[i], 1.0);
    sum += (per_user_trans_mj[i] + per_user_tail_mj[i]) / slots;
  }
  return sum / as_double(per_user_trans_mj.size());
}

OracleResult offline_energy_bound(const ScenarioConfig& config, const OracleSpec& spec) {
  validate(config);
  require(spec.startup_slots >= 0, "startup allowance must be non-negative");
  std::vector<UserEndpoint> endpoints = build_endpoints(config);
  const std::size_t n_users = endpoints.size();
  const double tau = config.slot.tau_s;
  const double delta = config.slot.delta_kb;

  // Unit deadlines from the content timeline: a unit must arrive before the
  // slot in which its first byte plays (startup allowance included).
  std::vector<UserPlan> plans(n_users);
  std::int64_t horizon = 1;
  for (std::size_t i = 0; i < n_users; ++i) {
    UserPlan& plan = plans[i];
    plan.start_slot = endpoints[i].start_slot;
    const VideoSession& session = endpoints[i].session;
    double remaining_kb = session.size_kb();
    double content_time = 0.0;
    while (remaining_kb > 0.0) {
      const double kb = std::min(delta, remaining_kb);
      const std::int64_t deadline =
          plan.start_slot + spec.startup_slots +
          floor_to_count(content_time / tau);
      plan.unit_deadline.push_back(deadline);
      plan.unit_kb.push_back(kb);
      content_time += session.advance_playback(content_time, kb);
      remaining_kb -= kb;
    }
    for (std::size_t u = 0; u < plan.unit_kb.size(); ++u) plan.unassigned.insert(u);
    if (!plan.unit_deadline.empty()) {
      horizon = std::max(horizon, plan.unit_deadline.back() + 1);
    }
  }

  // Record signals and per-slot bounds over the horizon.
  const auto horizon_sz = checked_size(horizon);
  std::vector<std::vector<double>> price(n_users);   // mJ/KB per slot
  std::vector<std::vector<std::int64_t>> link(n_users);
  for (std::size_t i = 0; i < n_users; ++i) {
    price[i].resize(horizon_sz);
    link[i].resize(horizon_sz);
    for (std::int64_t slot = 0; slot < horizon; ++slot) {
      const double sig = endpoints[i].signal->signal_dbm(slot);
      price[i][checked_size(slot)] =
          config.link.power->energy_per_kb(sig);
      link[i][checked_size(slot)] =
          config.slot.link_units(config.link.throughput->throughput_kbps(sig));
    }
  }
  const auto capacity = capacity_profile(config);
  std::vector<std::int64_t> capacity_left(horizon_sz);
  for (std::int64_t slot = 0; slot < horizon; ++slot) {
    capacity_left[checked_size(slot)] =
        config.slot.capacity_units(capacity(slot));
  }

  // Cheapest-(user, slot) first assignment.
  struct Pair {
    double price;
    std::uint32_t user;
    std::int64_t slot;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n_users * horizon_sz);
  for (std::size_t i = 0; i < n_users; ++i) {
    const std::int64_t last_deadline = plans[i].unit_deadline.back();
    for (std::int64_t slot = plans[i].start_slot; slot <= last_deadline; ++slot) {
      pairs.push_back({price[i][checked_size(slot)],
                       static_cast<std::uint32_t>(i), slot});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.price < b.price; });

  OracleResult result;
  result.horizon_slots = horizon;
  result.per_user_trans_mj.assign(n_users, 0.0);
  result.per_user_tail_mj.assign(n_users, 0.0);

  for (const Pair& pair : pairs) {
    UserPlan& plan = plans[pair.user];
    if (plan.unassigned.empty()) continue;
    const auto slot_sz = checked_size(pair.slot);
    std::int64_t room =
        std::min(link[pair.user][slot_sz], capacity_left[slot_sz]);
    if (room <= 0) continue;
    // First pending unit whose deadline admits this slot: deadlines are
    // non-decreasing in the unit index, so binary-search the index floor.
    const auto& deadlines = plan.unit_deadline;
    const auto first_ok_index = checked_size(
        std::lower_bound(deadlines.begin(), deadlines.end(), pair.slot) -
        deadlines.begin());
    auto it = plan.unassigned.lower_bound(first_ok_index);
    bool used = false;
    while (room > 0 && it != plan.unassigned.end()) {
      const std::size_t unit = *it;
      result.per_user_trans_mj[pair.user] += pair.price * plan.unit_kb[unit];
      it = plan.unassigned.erase(it);
      --room;
      --capacity_left[slot_sz];
      used = true;
    }
    if (used) plan.tx_slots.push_back(pair.slot);
  }

  // Feasibility and Eq. 4 tails from the realized gaps. Stranded units (no
  // room anywhere in their window — the online schedulers stall on these) are
  // priced at their window's cheapest rate to keep the byte bill complete.
  for (std::size_t i = 0; i < n_users; ++i) {
    UserPlan& plan = plans[i];
    if (!plan.unassigned.empty()) {
      result.feasible = false;
      for (std::size_t unit : plan.unassigned) {
        double best_price = std::numeric_limits<double>::infinity();
        for (std::int64_t slot = plan.start_slot; slot <= plan.unit_deadline[unit];
             ++slot) {
          best_price = std::min(best_price, price[i][checked_size(slot)]);
        }
        result.per_user_trans_mj[i] += best_price * plan.unit_kb[unit];
        ++result.stranded_units;
      }
    }
    if (plan.tx_slots.empty()) continue;
    std::sort(plan.tx_slots.begin(), plan.tx_slots.end());
    for (std::size_t k = 1; k < plan.tx_slots.size(); ++k) {
      const std::int64_t gap = plan.tx_slots[k] - plan.tx_slots[k - 1] - 1;
      if (gap > 0) {
        result.per_user_tail_mj[i] +=
            tail_energy_mj(config.radio, as_double(gap) * tau);
      }
    }
    // Trailing tail after the final transmission.
    result.per_user_tail_mj[i] += config.radio.max_tail_energy_mj();
  }
  for (std::size_t i = 0; i < n_users; ++i) {
    result.total_trans_mj += result.per_user_trans_mj[i];
    result.total_tail_mj += result.per_user_tail_mj[i];
  }
  return result;
}

}  // namespace jstream
