// Perfect-prediction helpers: extract the deterministic signal trajectories a
// scenario will produce, for oracle-assisted schedulers (core/lookahead.hpp)
// and offline analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scenario.hpp"

namespace jstream {

/// Per-user signal forecasts for `slots` slots, replayed deterministically
/// from the scenario seed (identical to what the simulator will feed the same
/// population).
[[nodiscard]] std::vector<std::vector<double>> make_signal_forecast(
    const ScenarioConfig& config, std::int64_t slots);

}  // namespace jstream
