// Signal forecasting: the deterministic per-user signal trajectories a
// scenario will produce (perfect prediction), plus a tunable forecast error
// model for studying how prediction quality degrades a predictive scheduler
// (core/predictive_ema.hpp, core/lookahead.hpp) against the offline oracle
// bound (sim/oracle.hpp).
//
// The error model is seed-pure: noisy forecasts are a deterministic function
// of (ScenarioConfig, ForecastErrorSpec), drawn from Rng streams split off a
// dedicated forecast root so enabling forecast noise never perturbs the
// endpoint construction streams (scenario_rng.split(i)) or the fault streams
// (kFaultRootStream). A zero-error spec is bit-identical to
// make_signal_forecast(config, slots) and consumes no random draws.
#pragma once

#include <cstdint>
#include <vector>

namespace jstream {

struct ScenarioConfig;

/// Forecast error model for one scenario. All knobs default to off; a
/// default-constructed spec yields the perfect forecast, bit for bit.
struct ForecastErrorSpec {
  /// I.i.d. Gaussian observation noise (dB) added per user x slot.
  double sigma_dbm = 0.0;
  /// Constant miscalibration offset (dB) added to every prediction.
  double bias_dbm = 0.0;
  /// Predictor lag: the forecast of slot n reports the true signal of slot
  /// n - staleness_slots (clamped at 0), modelling a pipeline that republishes
  /// measurements `staleness_slots` late.
  std::int64_t staleness_slots = 0;
  /// Couples the forecaster to the fault layer's stale-feedback family
  /// (FaultConfig::staleness_*): during a user's stale window the predictor's
  /// input feed freezes, so every in-window slot forecasts the last pre-window
  /// value. No-op when the scenario draws no stale windows.
  bool track_fault_staleness = false;
  /// Mixed into the forecast RNG stream: two specs differing only in salt
  /// draw independent noise over the same channel.
  std::uint64_t salt = 0;

  /// True when any knob can alter the perfect forecast; an inactive spec is
  /// the identity.
  [[nodiscard]] bool any_error() const noexcept {
    return sigma_dbm > 0.0 || bias_dbm != 0.0 || staleness_slots > 0 ||
           track_fault_staleness;
  }
};

/// Validates ranges; throws jstream::Error with a description.
void validate(const ForecastErrorSpec& spec);

/// FNV-1a over every ForecastErrorSpec field, 0 when the spec is inactive.
/// Part of the TraceKey (sim/trace_cache.hpp): a campaign sweeping forecast
/// error shares channel matrices only between cells whose forecasts agree,
/// and an inactive spec keys identically to a scenario predating the field.
[[nodiscard]] std::uint64_t forecast_fingerprint(const ForecastErrorSpec& spec) noexcept;

/// Per-user signal forecasts for `slots` slots, replayed deterministically
/// from the scenario seed (identical to what the simulator will feed the same
/// population).
[[nodiscard]] std::vector<std::vector<double>> make_signal_forecast(
    const ScenarioConfig& config, std::int64_t slots);

/// Noisy variant: applies `spec`'s staleness lag, fault-stale freezing, bias,
/// and Gaussian noise (in that order) on top of the perfect replay, clamping
/// to the legal signal range. An inactive spec returns the perfect forecast
/// bit-identically without consuming random draws.
[[nodiscard]] std::vector<std::vector<double>> make_signal_forecast(
    const ScenarioConfig& config, std::int64_t slots, const ForecastErrorSpec& spec);

}  // namespace jstream
