// Result reporting: turn RunMetrics into human-readable summaries and CSV
// exports. Shared by the examples and usable by downstream tooling.
#pragma once

#include <string>

#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace jstream {

/// One-paragraph headline summary of a run (PE, PC, fairness, completion).
[[nodiscard]] std::string summarize_run(const std::string& label,
                                        const RunMetrics& metrics);

/// Full text report: headline plus a per-user table (delivered, energy split,
/// stalls, session length).
[[nodiscard]] std::string render_report(const std::string& label,
                                        const RunMetrics& metrics);

/// Exports a run into `directory`:
///   <prefix>_users.csv  — one row per user (totals)
///   <prefix>_slots.csv  — per-slot series (when the run kept them)
/// Creates the directory if needed; throws jstream::Error on I/O failure.
void export_run_csv(const std::string& directory, const std::string& prefix,
                    const RunMetrics& metrics);

/// One-paragraph headline summary of a service-mode run: session flow
/// (offered/admitted/completed/aborted), steady-state concurrency, and the
/// per-user-slot stall/energy averages over the measured window.
[[nodiscard]] std::string summarize_service(const std::string& label,
                                            const ServiceMetrics& metrics);

/// Exports a service run into `directory`:
///   <prefix>_service.csv   — one row of flow counters and steady-state averages
///   <prefix>_sessions.csv  — one row per measured session (when records kept)
void export_service_csv(const std::string& directory, const std::string& prefix,
                        const ServiceMetrics& metrics);

}  // namespace jstream
