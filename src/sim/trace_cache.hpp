// Seed-keyed LRU cache of precomputed signal-trace sets.
//
// A campaign grid (schedulers x seeds over one scenario) replays the same
// channel trajectory once per cell; the cache collapses that to one
// generation per (scenario, seed) and hands every cell the same immutable
// std::shared_ptr<const SignalTraceSet>. Keys capture exactly the
// ScenarioConfig fields that influence the signal matrix — the population,
// horizon, seed, RSSI process parameters, the VBR flag (it changes the
// per-user RNG draw order ahead of the signal-model construction), and a
// behavioural fingerprint of the link model (probed, not pointer-compared,
// so two configs holding separately-constructed paper link models share
// entries). Fault intensities also join the key, as a fingerprint that is 0
// when faults are inactive: they never alter the matrices (faults apply at
// collect time, post-trace), but the isolation guarantees a faulted campaign
// and an unfaulted one can never serve each other's entries.
// Entries are evicted least-recently-used once the resident-byte
// budget is exceeded; the most recent entry is always retained. Concurrent
// lookups are safe: the first shard to miss generates while the map lock is
// released, and racing shards block on a shared future instead of
// duplicating the work.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "radio/signal_trace.hpp"
#include "sim/scenario.hpp"

namespace jstream {

/// Identity of one cached trace set. Two configs with equal keys produce
/// bit-identical SignalTraceSets.
struct TraceKey {
  std::size_t users = 0;
  std::int64_t slots = 0;
  std::uint64_t seed = 0;
  SignalKind kind = SignalKind::kSine;
  bool vbr = false;
  SineSignalParams sine;
  GaussMarkovSignalModel::Params gauss_markov;
  std::uint64_t trace_hash = 0;      ///< FNV over trace_dbm bit patterns
  std::uint64_t link_fingerprint = 0;  ///< hash of link-fit probes
  /// fault_fingerprint(config.faults): 0 when faults are inactive. Faults are
  /// applied at collect time, so the matrices of a faulted and an unfaulted
  /// run are bit-identical — the key still separates them so a faulted
  /// campaign can never alias (or be aliased by) an unfaulted entry.
  std::uint64_t fault_fingerprint = 0;
  /// arrival_fingerprint(...) of the service layer's arrival process: 0 for
  /// batch runs and zero-arrival service configs (which ARE the batch run,
  /// bit for bit, so sharing the entry is correct). Like faults, arrivals
  /// never alter the matrices — the channel substrate belongs to the
  /// population slot, not the session occupying it — but the key isolates
  /// service-mode campaigns from batch ones.
  std::uint64_t session_fingerprint = 0;
  /// forecast_fingerprint(config.forecast): 0 when the forecast error spec is
  /// inactive (perfect forecasts share entries with prediction-free runs —
  /// the matrices are identical and so is every scheduler's view of them).
  /// A noisy spec isolates its campaign cells: forecast noise never alters
  /// the matrices either, but two cells sweeping different error levels must
  /// not serve each other's entries.
  std::uint64_t forecast_fingerprint = 0;

  [[nodiscard]] bool operator==(const TraceKey& other) const noexcept;
};

/// Stable 64-bit identity of a trace key: an FNV-1a fold over every key
/// field. This is the fingerprint the persistent tier (TraceStore) names
/// files by and stamps into trace-set headers, so its value is part of the
/// on-disk contract — changing the fold invalidates every stored file (bump
/// kTraceSetFileVersion if that ever becomes necessary). Fields added after
/// the format shipped (forecast_fingerprint) fold in only when nonzero, so
/// every pre-existing key — and every `.jst` file named from one — keeps its
/// fingerprint byte-identical.
[[nodiscard]] std::uint64_t trace_key_fingerprint(const TraceKey& key) noexcept;

/// Hash functor for unordered_map<TraceKey, ...>.
struct TraceKeyHash {
  [[nodiscard]] std::size_t operator()(const TraceKey& key) const noexcept;
};

/// Extracts the trace identity of a scenario (see TraceKey).
/// `session_fingerprint` joins the key for service-mode runs (0 = batch).
[[nodiscard]] TraceKey make_trace_key(const ScenarioConfig& config,
                                      std::uint64_t session_fingerprint = 0);

/// Generates the full trace set for a scenario: builds the per-user signal
/// models exactly as build_endpoints does (same RNG stream order), walks
/// them over [0, max_slots), and derives the link matrices. Bit-identical to
/// the incremental per-slot path by construction.
[[nodiscard]] std::shared_ptr<const SignalTraceSet> generate_signal_trace_set(
    const ScenarioConfig& config);

class TraceStore;

/// Thread-safe byte-budgeted LRU cache over generate_signal_trace_set, with
/// an optional persistent tier underneath (attach_store): evicted entries
/// spill to disk and misses promote from disk (zero-copy mmap) before
/// falling back to regeneration.
class TraceCache {
 public:
  /// `max_bytes` budgets the resident trace matrices (estimate_bytes per
  /// entry); the most recently used entry is never evicted, so a single
  /// oversized scenario still caches. Default: 1 GiB.
  explicit TraceCache(std::size_t max_bytes = kDefaultMaxBytes);

  /// Returns the cached set for the config's trace key, generating it on a
  /// miss. Concurrent callers for the same key share one generation.
  /// Propagates generation failures (and forgets the entry so later calls
  /// retry). With a store attached, a miss consults the store before
  /// generating, and entries evicted by the insertion spill to the store.
  [[nodiscard]] std::shared_ptr<const SignalTraceSet> get_or_generate(
      const ScenarioConfig& config, std::uint64_t session_fingerprint = 0);

  /// Attaches (or detaches, with nullptr) the persistent tier. The store must
  /// outlive the cache or the next attach_store call. Not owned.
  void attach_store(TraceStore* store);
  [[nodiscard]] TraceStore* store() const;

  /// Spills every resident, fully-generated entry to the attached store (no
  /// eviction). Campaigns call this at end of run so a warm store holds the
  /// whole working set, not just what happened to overflow the LRU budget.
  /// No-op without a store.
  void spill_resident();

  [[nodiscard]] std::size_t max_bytes() const;
  void set_max_bytes(std::size_t max_bytes);

  [[nodiscard]] std::size_t size() const;            ///< resident entries
  [[nodiscard]] std::size_t resident_bytes() const;  ///< estimate over entries
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;
  /// Misses served by running the generation pipeline (a warm-store campaign
  /// should report zero of these).
  [[nodiscard]] std::uint64_t generations() const;
  /// Misses served zero-copy from the attached store.
  [[nodiscard]] std::uint64_t promotions() const;
  void clear();

  static constexpr std::size_t kDefaultMaxBytes = std::size_t{1} << 30;

 private:
  using TraceFuture = std::shared_future<std::shared_ptr<const SignalTraceSet>>;

  struct Entry {
    TraceKey key;
    TraceFuture future;
    std::size_t bytes = 0;  ///< estimate_bytes at insert time
  };

  /// One evicted entry queued for a spill outside the lock.
  struct SpillItem {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const SignalTraceSet> set;
  };

  /// Drops LRU entries until the budget holds (keeps >= 1 entry). Caller
  /// must hold mutex_. When a store is attached, victims whose generation
  /// already completed are collected into `spill` — the caller writes them
  /// after releasing the lock (a spill is tens of MB of I/O; holding the
  /// cache mutex across it would serialize every concurrent shard).
  void evict_locked(std::vector<SpillItem>& spill);

  /// Writes queued victims to `store`. Called without mutex_ held.
  static void spill_items(TraceStore& store, const std::vector<SpillItem>& items);

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<TraceKey, std::list<Entry>::iterator, TraceKeyHash> index_;
  std::size_t max_bytes_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t generations_ = 0;
  std::uint64_t promotions_ = 0;
  TraceStore* store_ = nullptr;  ///< persistent tier; not owned
};

/// Process-wide cache shared by the campaign runner and the bench harness.
[[nodiscard]] TraceCache& global_trace_cache();

}  // namespace jstream
