#include "sim/trace_cache.hpp"

#include <bit>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "sim/trace_store.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scoped_timer.hpp"

namespace jstream {

namespace {

struct TraceCacheTelemetry {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& evictions;
  telemetry::Counter& promotions;
  telemetry::Histogram& generate_latency_us;

  static TraceCacheTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static TraceCacheTelemetry probes{
        registry.counter("trace_cache.hits"), registry.counter("trace_cache.misses"),
        registry.counter("trace_cache.evictions"),
        registry.counter("trace_cache.promotions"),
        registry.histogram("trace_cache.generate_latency_us")};
    return probes;
  }
};

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& hash, double value) noexcept {
  fnv_mix(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t hash_trace(const std::vector<double>& trace) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (double sample : trace) fnv_mix(hash, sample);
  return hash;
}

// Behavioural fingerprint: two link models that answer identically at the
// probe signals produce bit-identical derived matrices over the clamped
// signal range, so they can share cache entries even when the shared_ptr
// identities differ (every paper_scenario() builds a fresh LinkModel).
std::uint64_t link_fingerprint(const LinkModel& link) {
  require(link.throughput != nullptr && link.power != nullptr,
          "link model must be complete");
  std::uint64_t hash = kFnvOffset;
  for (double dbm : {-110.0, -95.0, -80.0, -65.0, -50.0}) {
    fnv_mix(hash, link.throughput->throughput_kbps(dbm));
    fnv_mix(hash, link.power->energy_per_kb(dbm));
  }
  return hash;
}

bool same(const SineSignalParams& a, const SineSignalParams& b) noexcept {
  return a.min_dbm == b.min_dbm && a.max_dbm == b.max_dbm &&
         a.period_slots == b.period_slots && a.phase_radians == b.phase_radians &&
         a.noise_stddev_db == b.noise_stddev_db;
}

bool same(const GaussMarkovSignalModel::Params& a,
          const GaussMarkovSignalModel::Params& b) noexcept {
  return a.mean_dbm == b.mean_dbm && a.rho == b.rho &&
         a.noise_stddev_db == b.noise_stddev_db && a.min_dbm == b.min_dbm &&
         a.max_dbm == b.max_dbm;
}

}  // namespace

bool TraceKey::operator==(const TraceKey& other) const noexcept {
  return users == other.users && slots == other.slots && seed == other.seed &&
         kind == other.kind && vbr == other.vbr && same(sine, other.sine) &&
         same(gauss_markov, other.gauss_markov) && trace_hash == other.trace_hash &&
         link_fingerprint == other.link_fingerprint &&
         fault_fingerprint == other.fault_fingerprint &&
         session_fingerprint == other.session_fingerprint &&
         forecast_fingerprint == other.forecast_fingerprint;
}

std::uint64_t trace_key_fingerprint(const TraceKey& key) noexcept {
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, static_cast<std::uint64_t>(key.users));
  fnv_mix(hash, static_cast<std::uint64_t>(key.slots));
  fnv_mix(hash, key.seed);
  fnv_mix(hash, static_cast<std::uint64_t>(key.kind));
  fnv_mix(hash, static_cast<std::uint64_t>(key.vbr));
  fnv_mix(hash, key.sine.min_dbm);
  fnv_mix(hash, key.sine.max_dbm);
  fnv_mix(hash, key.sine.period_slots);
  fnv_mix(hash, key.sine.phase_radians);
  fnv_mix(hash, key.sine.noise_stddev_db);
  fnv_mix(hash, key.gauss_markov.mean_dbm);
  fnv_mix(hash, key.gauss_markov.rho);
  fnv_mix(hash, key.gauss_markov.noise_stddev_db);
  fnv_mix(hash, key.gauss_markov.min_dbm);
  fnv_mix(hash, key.gauss_markov.max_dbm);
  fnv_mix(hash, key.trace_hash);
  fnv_mix(hash, key.link_fingerprint);
  fnv_mix(hash, key.fault_fingerprint);
  fnv_mix(hash, key.session_fingerprint);
  // Post-format fields fold in only when active: an inactive forecast spec
  // leaves the fingerprint — and therefore every existing TraceStore file
  // name — byte-identical to the pre-field fold (see the header contract).
  if (key.forecast_fingerprint != 0) fnv_mix(hash, key.forecast_fingerprint);
  return hash;
}

std::size_t TraceKeyHash::operator()(const TraceKey& key) const noexcept {
  // jstream-lint: allow(checked-narrowing) -- hash fold, not an index: the
  // 64-bit fingerprint truncates to whatever width unordered_map buckets use.
  return static_cast<std::size_t>(trace_key_fingerprint(key));
}

TraceKey make_trace_key(const ScenarioConfig& config,
                        std::uint64_t session_fingerprint) {
  TraceKey key;
  key.users = config.users;
  key.slots = config.max_slots;
  key.seed = config.seed;
  key.kind = config.signal_kind;
  // VBR switches the bitrate builder from a uniform() draw to a pure split,
  // shifting every RNG draw that follows it (including the sine phase), so
  // it is part of the trace identity even though bitrates are not.
  key.vbr = config.vbr;
  key.sine = config.signal;
  key.gauss_markov = config.gauss_markov;
  key.trace_hash = config.signal_kind == SignalKind::kTrace
                       ? hash_trace(config.trace_dbm)
                       : 0;
  key.link_fingerprint = link_fingerprint(config.link);
  key.fault_fingerprint = fault_fingerprint(config.faults);
  key.session_fingerprint = session_fingerprint;
  key.forecast_fingerprint = forecast_fingerprint(config.forecast);
  return key;
}

std::shared_ptr<const SignalTraceSet> generate_signal_trace_set(
    const ScenarioConfig& config) {
  auto& probes = TraceCacheTelemetry::instance();
  telemetry::ScopedTimer timer(probes.generate_latency_us);
  // build_endpoints constructs every user's SignalModel with exactly the
  // per-user RNG stream the incremental path would use; walking those models
  // slot-by-slot reproduces its values bit-for-bit.
  std::vector<UserEndpoint> endpoints = build_endpoints(config);
  auto set = std::make_shared<SignalTraceSet>(config.users, config.max_slots);
  for (std::size_t user = 0; user < endpoints.size(); ++user) {
    set->fill_user(user, *endpoints[user].signal);
  }
  set->derive_link(config.link);
  return set;
}

TraceCache::TraceCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

std::shared_ptr<const SignalTraceSet> TraceCache::get_or_generate(
    const ScenarioConfig& config, std::uint64_t session_fingerprint) {
  auto& probes = TraceCacheTelemetry::instance();
  const TraceKey key = make_trace_key(config, session_fingerprint);
  TraceFuture future;
  std::promise<std::shared_ptr<const SignalTraceSet>> promise;
  bool generate = false;
  TraceStore* store = nullptr;
  std::vector<SpillItem> spill;
  {
    const std::lock_guard lock(mutex_);
    store = store_;
    const auto found = index_.find(key);
    if (found != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, found->second);
      future = found->second->future;
    } else {
      ++misses_;
      generate = true;
      future = promise.get_future().share();
      lru_.push_front(Entry{key, future,
                            SignalTraceSet::estimate_bytes(config.users,
                                                           config.max_slots)});
      resident_bytes_ += lru_.front().bytes;
      index_.emplace(key, lru_.begin());
      evict_locked(spill);
    }
  }
  if (store != nullptr) spill_items(*store, spill);
  if (telemetry::enabled()) {
    (generate ? probes.misses : probes.hits).add();
  }
  if (generate) {
    try {
      std::shared_ptr<const SignalTraceSet> set;
      // Persistent tier first: a warm store serves the matrices zero-copy out
      // of the page cache instead of rerunning the generation pipeline.
      if (store != nullptr) {
        set = store->try_load(trace_key_fingerprint(key), config.users,
                              config.max_slots);
      }
      const bool promoted = set != nullptr;
      if (!promoted) set = generate_signal_trace_set(config);
      promise.set_value(set);
      {
        const std::lock_guard lock(mutex_);
        ++(promoted ? promotions_ : generations_);
      }
      if (promoted && telemetry::enabled()) probes.promotions.add();
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Forget the poisoned entry so a later call retries; waiters already
      // holding the future still observe the exception.
      const std::lock_guard lock(mutex_);
      const auto found = index_.find(key);
      if (found != index_.end()) {
        resident_bytes_ -= found->second->bytes;
        lru_.erase(found->second);
        index_.erase(found);
      }
      throw;
    }
  }
  return future.get();
}

void TraceCache::attach_store(TraceStore* store) {
  const std::lock_guard lock(mutex_);
  store_ = store;
}

TraceStore* TraceCache::store() const {
  const std::lock_guard lock(mutex_);
  return store_;
}

void TraceCache::spill_resident() {
  TraceStore* store = nullptr;
  std::vector<SpillItem> items;
  {
    const std::lock_guard lock(mutex_);
    store = store_;
    if (store == nullptr) return;
    items.reserve(lru_.size());
    for (const Entry& entry : lru_) {
      if (entry.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        continue;  // generation still in flight on another thread
      }
      std::shared_ptr<const SignalTraceSet> set;
      try {
        set = entry.future.get();
      } catch (...) {
        continue;  // poisoned entry; nothing to persist
      }
      if (set != nullptr) {
        items.push_back(SpillItem{trace_key_fingerprint(entry.key), set});
      }
    }
  }
  spill_items(*store, items);
}

std::size_t TraceCache::max_bytes() const {
  const std::lock_guard lock(mutex_);
  return max_bytes_;
}

void TraceCache::set_max_bytes(std::size_t max_bytes) {
  TraceStore* store = nullptr;
  std::vector<SpillItem> spill;
  {
    const std::lock_guard lock(mutex_);
    store = store_;
    max_bytes_ = max_bytes;
    evict_locked(spill);
  }
  if (store != nullptr) spill_items(*store, spill);
}

void TraceCache::evict_locked(std::vector<SpillItem>& spill) {
  auto& probes = TraceCacheTelemetry::instance();
  while (lru_.size() > 1 && resident_bytes_ > max_bytes_) {
    const Entry& victim = lru_.back();
    // Spill completed victims so the persistent tier can answer the next
    // miss. An entry whose generation is still in flight is dropped without
    // spilling — its future holder finishes the work; by then the entry is
    // gone from the index, and spill_resident at end of run will not see it
    // either, which only costs a regeneration on some future cold miss.
    if (store_ != nullptr &&
        victim.future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
      std::shared_ptr<const SignalTraceSet> set;
      try {
        set = victim.future.get();
      } catch (...) {
        set = nullptr;  // poisoned entry; nothing to persist
      }
      if (set != nullptr) {
        spill.push_back(SpillItem{trace_key_fingerprint(victim.key), set});
      }
    }
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    if (telemetry::enabled()) probes.evictions.add();
  }
}

void TraceCache::spill_items(TraceStore& store,
                             const std::vector<SpillItem>& items) {
  for (const SpillItem& item : items) {
    store.put(item.fingerprint, *item.set);
  }
}

std::size_t TraceCache::size() const {
  const std::lock_guard lock(mutex_);
  return lru_.size();
}

std::size_t TraceCache::resident_bytes() const {
  const std::lock_guard lock(mutex_);
  return resident_bytes_;
}

std::uint64_t TraceCache::hits() const {
  const std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t TraceCache::misses() const {
  const std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t TraceCache::evictions() const {
  const std::lock_guard lock(mutex_);
  return evictions_;
}

std::uint64_t TraceCache::generations() const {
  const std::lock_guard lock(mutex_);
  return generations_;
}

std::uint64_t TraceCache::promotions() const {
  const std::lock_guard lock(mutex_);
  return promotions_;
}

void TraceCache::clear() {
  const std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
  resident_bytes_ = 0;
}

TraceCache& global_trace_cache() {
  static TraceCache cache;
  return cache;
}

}  // namespace jstream
