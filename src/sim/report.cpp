#include "sim/report.hpp"

#include <filesystem>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace jstream {

std::string summarize_run(const std::string& label, const RunMetrics& metrics) {
  std::ostringstream out;
  out << label << ": " << metrics.slots_run << " slots, "
      << format_double(100.0 * metrics.completion_rate(), 1) << "% sessions complete; "
      << "PE " << format_double(metrics.avg_energy_per_user_slot_mj(), 1)
      << " mJ/user-slot (tail "
      << format_double(metrics.avg_tail_per_user_slot_mj(), 1) << "), PC "
      << format_double(1000.0 * metrics.avg_rebuffer_per_user_slot_s(), 1)
      << " ms/user-slot, fairness "
      << format_double(metrics.mean_fairness(), 3) << "; totals: "
      << format_double(metrics.total_energy_mj() / 1e6, 2) << " kJ, "
      << format_double(metrics.total_rebuffer_s(), 0) << " s stalled.";
  return out.str();
}

std::string render_report(const std::string& label, const RunMetrics& metrics) {
  std::ostringstream out;
  out << summarize_run(label, metrics) << "\n\n";
  Table table("per-user totals",
              {"user", "delivered (MB)", "trans (J)", "tail (J)", "stalls (s)",
               "tx slots", "session slots", "done"});
  for (std::size_t i = 0; i < metrics.per_user.size(); ++i) {
    const UserTotals& user = metrics.per_user[i];
    table.row({std::to_string(i), format_double(user.delivered_kb / 1000.0, 1),
               format_double(user.trans_mj / 1000.0, 2),
               format_double(user.tail_mj / 1000.0, 2),
               format_double(user.rebuffer_s, 1), std::to_string(user.tx_slots),
               std::to_string(user.session_slots),
               user.playback_finished ? "yes" : "no"});
  }
  out << table.render();
  return out.str();
}

void export_run_csv(const std::string& directory, const std::string& prefix,
                    const RunMetrics& metrics) {
  std::filesystem::create_directories(directory);
  {
    CsvWriter users(directory + "/" + prefix + "_users.csv",
                    {"user", "delivered_kb", "trans_mj", "tail_mj", "rebuffer_s",
                     "tx_slots", "session_slots", "playback_finished"});
    for (std::size_t i = 0; i < metrics.per_user.size(); ++i) {
      const UserTotals& user = metrics.per_user[i];
      users.row(std::vector<std::string>{
          std::to_string(i), format_double(user.delivered_kb, 3),
          format_double(user.trans_mj, 3), format_double(user.tail_mj, 3),
          format_double(user.rebuffer_s, 3), std::to_string(user.tx_slots),
          std::to_string(user.session_slots),
          user.playback_finished ? "1" : "0"});
    }
  }
  if (!metrics.slot_energy_mj.empty()) {
    CsvWriter slots(directory + "/" + prefix + "_slots.csv",
                    {"slot", "energy_mj", "fairness"});
    for (std::size_t n = 0; n < metrics.slot_energy_mj.size(); ++n) {
      const std::string fairness =
          n < metrics.slot_fairness.size()
              ? format_double(metrics.slot_fairness[n], 5)
              : "";
      slots.row(std::vector<std::string>{
          std::to_string(n), format_double(metrics.slot_energy_mj[n], 3), fairness});
    }
  }
}

std::string summarize_service(const std::string& label,
                              const ServiceMetrics& metrics) {
  std::ostringstream out;
  out << label << ": " << metrics.slots_run << " slots (" << metrics.measured_slots
      << " measured), sessions " << metrics.offered << " offered / "
      << metrics.admitted << " admitted / " << metrics.rejected << " rejected / "
      << metrics.blocked << " blocked, " << metrics.completed << " completed + "
      << metrics.aborted << " aborted (" << metrics.in_flight_at_end
      << " in flight); concurrency "
      << format_double(metrics.mean_concurrency(), 1) << " mean / "
      << metrics.peak_concurrency << " peak; PC "
      << format_double(1000.0 * metrics.mean_rebuffer_per_user_slot_s(), 1)
      << " ms/user-slot, PE "
      << format_double(metrics.mean_energy_per_user_slot_mj(), 1)
      << " mJ/user-slot.";
  return out.str();
}

void export_service_csv(const std::string& directory, const std::string& prefix,
                        const ServiceMetrics& metrics) {
  std::filesystem::create_directories(directory);
  {
    CsvWriter summary(
        directory + "/" + prefix + "_service.csv",
        {"slots_run", "warmup_slots", "measured_slots", "capacity_slots", "offered",
         "admitted", "rejected", "blocked", "completed", "aborted",
         "in_flight_at_end", "mean_concurrency", "peak_concurrency",
         "rebuffer_per_user_slot_s", "energy_per_user_slot_mj",
         "mean_session_rebuffer_s", "mean_session_energy_mj", "mean_session_slots"});
    summary.row(std::vector<std::string>{
        std::to_string(metrics.slots_run), std::to_string(metrics.warmup_slots),
        std::to_string(metrics.measured_slots),
        std::to_string(metrics.capacity_slots), std::to_string(metrics.offered),
        std::to_string(metrics.admitted), std::to_string(metrics.rejected),
        std::to_string(metrics.blocked), std::to_string(metrics.completed),
        std::to_string(metrics.aborted), std::to_string(metrics.in_flight_at_end),
        format_double(metrics.mean_concurrency(), 3),
        std::to_string(metrics.peak_concurrency),
        format_double(metrics.mean_rebuffer_per_user_slot_s(), 6),
        format_double(metrics.mean_energy_per_user_slot_mj(), 6),
        format_double(metrics.mean_session_rebuffer_s(), 6),
        format_double(metrics.mean_session_energy_mj(), 6),
        format_double(metrics.mean_session_slots(), 3)});
  }
  if (!metrics.records.empty()) {
    CsvWriter sessions(directory + "/" + prefix + "_sessions.csv",
                       {"arrival_index", "user_slot", "start_slot", "end_slot",
                        "delivered_kb", "rebuffer_s", "energy_mj", "completed"});
    for (const SessionRecord& record : metrics.records) {
      sessions.row(std::vector<std::string>{
          std::to_string(record.arrival_index), std::to_string(record.user_slot),
          std::to_string(record.start_slot), std::to_string(record.end_slot),
          format_double(record.delivered_kb, 3), format_double(record.rebuffer_s, 3),
          format_double(record.energy_mj, 3), record.completed ? "1" : "0"});
    }
  }
}

}  // namespace jstream
