// Deterministic fault injection: degraded-cell perturbations derived purely
// from the scenario configuration and seed.
//
// The paper's evaluation assumes a benign cell — everyone stays for the whole
// run and the gateway sees fresh per-slot signal reports. Production cells do
// not behave like that, so this layer injects four fault families:
//
//   (a) deep-fade outage bursts   per-user windows that override the RSSI
//                                 process with a fade-depth signal (the
//                                 Definition 3/4 fits are re-evaluated at the
//                                 depth, so throughput collapses and per-KB
//                                 energy spikes, but both stay positive);
//   (b) capacity degradation      base-station windows scaling S(n), i.e.
//                                 the constraint Eq. 2 bound;
//   (c) mid-stream departures     a user aborts its session at a drawn slot
//                                 (the complement of arrival_spread_slots)
//                                 and yields zero allocation from then on;
//   (d) feedback staleness        windows during which the scheduler is
//                                 served the user's last fresh link report;
//                                 grants are clipped back to the true link
//                                 before transmission.
//
// Determinism guarantees (see docs/ROBUSTNESS.md):
//   - the schedule is a pure function of ScenarioConfig + seed;
//   - the fault RNG streams are split off independently of the endpoint
//     construction streams, so enabling faults never perturbs video sizes,
//     bitrates, signal phases, or arrivals;
//   - each fault family draws from its own stream, so tuning one family's
//     intensity leaves the other families' windows untouched;
//   - zero intensity produces an inactive schedule and the Simulator attaches
//     no hook: outcomes are bit-identical to the unfaulted path.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "gateway/fault_hook.hpp"

namespace jstream {

struct ScenarioConfig;

/// Fault intensities for one scenario. All families default to off; a
/// default-constructed config is exactly the paper's benign cell.
struct FaultConfig {
  /// (a) Deep-fade outages: expected bursts per user per 1000 slots; each
  /// burst lasts uniform [outage_min_slots, outage_max_slots] slots during
  /// which the user's signal reads outage_dbm. The depth must stay inside the
  /// link fits' positive range (the paper's Eq. 24 fit turns non-positive
  /// below roughly -115 dBm).
  double outage_rate_per_kslot = 0.0;
  std::int64_t outage_min_slots = 5;
  std::int64_t outage_max_slots = 30;
  double outage_dbm = -112.0;

  /// (b) Capacity degradation: expected windows per 1000 slots scaling the
  /// Eq. 2 capacity by capacity_scale while they last.
  double capacity_rate_per_kslot = 0.0;
  std::int64_t capacity_min_slots = 20;
  std::int64_t capacity_max_slots = 120;
  double capacity_scale = 0.5;

  /// (c) Departures: each user aborts with this probability, at a slot drawn
  /// uniform in [departure_min_slot, horizon - 1].
  double departure_fraction = 0.0;
  std::int64_t departure_min_slot = 1;

  /// (d) Feedback staleness: expected stale windows per user per 1000 slots;
  /// lengths uniform in [staleness_min_slots, staleness_max_slots].
  double staleness_rate_per_kslot = 0.0;
  std::int64_t staleness_min_slots = 3;
  std::int64_t staleness_max_slots = 20;

  /// Mixed into the fault RNG stream: two scenarios that differ only in salt
  /// replay the same channel under different fault draws.
  std::uint64_t salt = 0;

  /// True when any family can fire; an inactive config is the identity.
  [[nodiscard]] bool any() const noexcept {
    return outage_rate_per_kslot > 0.0 || capacity_rate_per_kslot > 0.0 ||
           departure_fraction > 0.0 || staleness_rate_per_kslot > 0.0;
  }
};

/// Validates ranges; throws jstream::Error with a description.
void validate(const FaultConfig& config);

/// FNV-1a over every FaultConfig field, 0 when the config is inactive. Part
/// of the TraceKey, so a faulted campaign can never alias an unfaulted cache
/// entry (or another fault config's) even though the channel matrices match.
[[nodiscard]] std::uint64_t fault_fingerprint(const FaultConfig& config) noexcept;

/// Half-open slot window [begin, end).
struct FaultInterval {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] bool contains(std::int64_t slot) const noexcept {
    return slot >= begin && slot < end;
  }
  [[nodiscard]] bool operator==(const FaultInterval&) const noexcept = default;
};

/// The materialized fault plan for one run: per-user outage and staleness
/// windows, per-user departure slots, and base-station capacity windows.
/// Queries are O(log windows) and allocation-free — they run on the per-slot
/// path. Windows are appended in increasing, non-overlapping order (enforced).
class FaultSchedule {
 public:
  static constexpr std::int64_t kNeverDeparts =
      std::numeric_limits<std::int64_t>::max();

  FaultSchedule() = default;
  FaultSchedule(std::size_t users, std::int64_t horizon, double outage_dbm);

  /// Appends one window per call; begins must strictly increase past the
  /// previous window's end. Windows are clamped to the horizon by the caller.
  void add_outage(std::size_t user, FaultInterval burst);
  void add_stale_window(std::size_t user, FaultInterval window);
  void add_capacity_window(FaultInterval window, double scale);
  void set_departure(std::size_t user, std::int64_t slot);

  [[nodiscard]] std::size_t users() const noexcept { return per_user_.size(); }
  [[nodiscard]] std::int64_t horizon() const noexcept { return horizon_; }
  [[nodiscard]] double outage_dbm() const noexcept { return outage_dbm_; }

  /// True when the schedule contains at least one window or departure.
  [[nodiscard]] bool active() const noexcept { return active_; }

  [[nodiscard]] bool outaged(std::size_t user, std::int64_t slot) const noexcept;
  [[nodiscard]] bool stale(std::size_t user, std::int64_t slot) const noexcept;
  [[nodiscard]] std::int64_t departure_slot(std::size_t user) const noexcept;
  [[nodiscard]] bool departed(std::size_t user, std::int64_t slot) const noexcept {
    return slot >= departure_slot(user);
  }
  /// Eq. 2 multiplier for this slot; 1.0 outside every window.
  [[nodiscard]] double capacity_scale(std::int64_t slot) const noexcept;

  /// Introspection for tests and the fault sweep bench.
  [[nodiscard]] std::span<const FaultInterval> outages(std::size_t user) const;
  [[nodiscard]] std::span<const FaultInterval> stale_windows(std::size_t user) const;
  [[nodiscard]] std::span<const FaultInterval> capacity_windows() const noexcept;
  [[nodiscard]] std::int64_t total_outage_slots() const noexcept;
  [[nodiscard]] std::int64_t total_stale_slots() const noexcept;
  [[nodiscard]] std::size_t departures() const noexcept;

 private:
  struct PerUser {
    std::vector<FaultInterval> outages;
    std::vector<FaultInterval> stale;
    std::int64_t departure_slot = kNeverDeparts;
  };

  std::vector<PerUser> per_user_;
  std::vector<FaultInterval> capacity_windows_;
  std::vector<double> capacity_scales_;  ///< parallel to capacity_windows_
  std::int64_t horizon_ = 0;
  double outage_dbm_ = -112.0;
  bool active_ = false;
};

/// Generates the schedule for a scenario: a pure function of the config (the
/// fault RNG is split from config.seed on streams disjoint from the per-user
/// endpoint streams). An inactive config yields an inactive schedule without
/// consuming any random draws.
[[nodiscard]] FaultSchedule make_fault_schedule(const ScenarioConfig& config);

/// SlotFaultHook implementation applying a FaultSchedule to the slot path.
/// All workspaces are sized at construction; degrade/reconcile perform zero
/// heap allocations (pinned by tests/perf/test_zero_alloc_slot.cpp).
class FaultInjector final : public SlotFaultHook {
 public:
  explicit FaultInjector(std::shared_ptr<const FaultSchedule> schedule);

  void degrade_context(SlotContext& ctx) override;
  void reconcile_allocation(SlotContext& ctx, Allocation& alloc) override;

  [[nodiscard]] const FaultSchedule& schedule() const noexcept { return *schedule_; }

 private:
  /// Link fields as the collector reported them, cached either as the ground
  /// truth displaced by a stale view (truth_) or as the freshest report to
  /// serve during the next stale window (last_fresh_).
  struct LinkSnapshot {
    double signal_dbm = 0.0;
    double throughput_kbps = 0.0;
    double energy_per_kb = 0.0;
    std::int64_t link_units = 0;
    std::int64_t alloc_cap_units = 0;
    bool valid = false;
  };

  std::shared_ptr<const FaultSchedule> schedule_;
  std::vector<LinkSnapshot> truth_;
  std::vector<LinkSnapshot> last_fresh_;
  std::vector<unsigned char> stale_now_;
  std::vector<unsigned char> departure_counted_;
};

}  // namespace jstream
