// Experiment harness: named (scenario, scheduler) runs, plus the reference
// helpers the paper's evaluation uses — RTMA's energy budget is set to
// Phi = alpha * E_default (Section VI-A) and EMA's rebuffering bound to
// Omega = beta * R_default (Section VI-B), where E_default / R_default come
// from a reference run of the default strategy. Because EMA exposes the
// Lyapunov weight V rather than Omega directly, `calibrate_v_for_rebuffer`
// searches for the largest V (most energy saving) whose rebuffering still
// meets the bound — this is the tuning knob the paper describes as "beta can
// be tuned".
#pragma once

#include <string>

#include "baselines/factory.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_cache.hpp"

namespace jstream {

/// One experiment: a scenario run under a named scheduler.
struct ExperimentSpec {
  std::string label;       ///< series name in reports
  std::string scheduler;   ///< factory name
  ScenarioConfig scenario;
  SchedulerOptions options;
};

/// Scenario-aware scheduler factory: resolves the names whose construction
/// needs the scenario itself — "ema-predictive" derives its signal forecast
/// from the scenario seed through the scenario's forecast error spec
/// (make_signal_forecast, sim/forecast.hpp) — and delegates every other name
/// to make_scheduler. Campaign cells, golden runs, and run_experiment all
/// route through this, so predictive series drop into any grid.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler_for_scenario(
    const std::string& name, const SchedulerOptions& options,
    const ScenarioConfig& scenario);

/// Runs one spec and returns its metrics. When `trace` is set the run reads
/// the channel from the precomputed substrate (see Simulator); results are
/// bit-identical either way.
[[nodiscard]] RunMetrics run_experiment(const ExperimentSpec& spec,
                                        bool keep_series = true,
                                        std::shared_ptr<const SignalTraceSet> trace =
                                            nullptr);

/// Reference quantities from a default-strategy run over `scenario`.
struct DefaultReference {
  double energy_per_user_slot_mj = 0.0;  ///< E_default (PE analogue)
  double rebuffer_per_user_slot_s = 0.0; ///< R_default (PC analogue)
  double total_energy_mj = 0.0;
  double total_rebuffer_s = 0.0;

  /// Mean transmission energy of a slot in which the default actually served
  /// a user. This is the quantity Eq. 12's Phi is commensurable with (the
  /// estimated cost of serving one user for one slot); the session-slot
  /// average above is diluted by idle slots and sits far below Eq. 12's
  /// range, so RTMA's alpha is applied to this serving-slot energy.
  double trans_per_tx_slot_mj = 0.0;
};

/// Runs the default scheduler over `scenario` and extracts the references.
/// With `cache` set, the reference run pulls its channel trace from the cache
/// so later campaign runs over the same scenario reuse the entry.
[[nodiscard]] DefaultReference run_default_reference(const ScenarioConfig& scenario,
                                                     TraceCache* cache = nullptr);

/// RTMA options with Phi = alpha * E_default (per user-slot, mJ).
[[nodiscard]] SchedulerOptions rtma_options_for_alpha(double alpha,
                                                      const DefaultReference& reference);

/// Finds the largest Lyapunov weight V whose average rebuffering stays within
/// `omega_s` (per user-slot seconds) on `scenario`, by log-space bisection
/// over `iterations` simulation runs between v_min and v_max. The probe runs
/// use the ema-fast solver (same queue dynamics, O(N log N) per slot) so
/// calibration stays cheap; the calibrated V is then used with either solver.
/// With `cache` set, every probe simulation reuses one cached channel trace
/// instead of regenerating it per probe (the bisection runs ~a dozen sims
/// over the identical scenario).
[[nodiscard]] double calibrate_v_for_rebuffer(const ScenarioConfig& scenario,
                                              double omega_s, double v_min = 1e-4,
                                              double v_max = 10.0, int iterations = 10,
                                              TraceCache* cache = nullptr);

}  // namespace jstream
