#include "sim/campaign.hpp"

#include "common/thread_pool.hpp"
#include "telemetry/registry.hpp"
#include "common/units.hpp"

namespace jstream {

std::vector<ExperimentSpec> make_campaign_grid(const ScenarioConfig& base,
                                               std::span<const CampaignSeries> series,
                                               std::size_t replications) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(series.size() * replications);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    for (const CampaignSeries& s : series) {
      ExperimentSpec spec;
      spec.label = s.label;
      spec.scheduler = s.scheduler;
      spec.scenario = base;
      spec.scenario.seed = base.seed + rep;
      spec.options = s.options;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

void note_campaign_cells(std::size_t cells) {
  telemetry::global_registry().counter("campaign.runs").add();
  telemetry::global_registry()
      .counter("campaign.cells")
      .add(checked_index(cells));
}

std::vector<RunMetrics> run_campaign(std::span<const ExperimentSpec> specs,
                                     const CampaignOptions& options) {
  return run_campaign_cells(
      specs.size(), options,
      [&](std::size_t i) { return CampaignCell{&specs[i].scenario, 0}; },
      [&](std::size_t i, std::shared_ptr<const SignalTraceSet> trace) {
        return run_experiment(specs[i], options.keep_series, std::move(trace));
      });
}

}  // namespace jstream
