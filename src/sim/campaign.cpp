#include "sim/campaign.hpp"

#include "common/thread_pool.hpp"
#include "telemetry/registry.hpp"

namespace jstream {

std::vector<ExperimentSpec> make_campaign_grid(const ScenarioConfig& base,
                                               std::span<const CampaignSeries> series,
                                               std::size_t replications) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(series.size() * replications);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    for (const CampaignSeries& s : series) {
      ExperimentSpec spec;
      spec.label = s.label;
      spec.scheduler = s.scheduler;
      spec.scenario = base;
      spec.scenario.seed = base.seed + rep;
      spec.options = s.options;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<RunMetrics> run_campaign(std::span<const ExperimentSpec> specs,
                                     const CampaignOptions& options) {
  telemetry::global_registry().counter("campaign.runs").add();
  telemetry::global_registry()
      .counter("campaign.cells")
      .add(static_cast<std::int64_t>(specs.size()));
  TraceCache* cache = options.cache != nullptr ? options.cache : &global_trace_cache();
  ThreadPool pool(options.threads);
  return parallel_map(pool, specs.size(), [&](std::size_t i) {
    const ExperimentSpec& spec = specs[i];
    const std::shared_ptr<const SignalTraceSet> trace =
        options.use_trace_cache ? cache->get_or_generate(spec.scenario)
                                : generate_signal_trace_set(spec.scenario);
    return run_experiment(spec, options.keep_series, trace);
  });
}

}  // namespace jstream
