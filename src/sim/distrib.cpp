#include "sim/distrib.hpp"

#include <sched.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <exception>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/units.hpp"
#include "telemetry/registry.hpp"

namespace jstream {

namespace {

// ---------------------------------------------------------------------------
// Frame protocol. One frame per worker: a fixed 48-byte header followed by
// `payload_bytes` of payload. kResult payloads are the shard's encoded
// results; kError payloads are the UTF-8 what() of the exception that killed
// the slice. The header travels through the same ByteWriter/ByteReader
// little-endian encoding as the payloads.
// ---------------------------------------------------------------------------

// "JSTDFRM1" read as a little-endian u64.
constexpr std::uint64_t kFrameMagic = 0x314D5246'4454534AULL;
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::uint32_t kFrameKindResult = 1;
constexpr std::uint32_t kFrameKindError = 2;
constexpr std::size_t kFrameHeaderBytes = 48;

struct FrameHeader {
  std::uint32_t kind = kFrameKindResult;
  std::uint64_t cell_begin = 0;
  std::uint64_t cell_count = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
};

/// u64 frame field -> size_t count/index, rejecting values that cannot be a
/// cell count (hardened against corrupt or truncated frames).
std::size_t size_from_u64(std::uint64_t value) {
  require(value <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max()),
          "frame count field out of range");
  return checked_size(std::bit_cast<std::int64_t>(value));
}

std::vector<std::uint8_t> encode_frame_header(const FrameHeader& header) {
  ByteWriter out;
  out.u64(kFrameMagic);
  out.u32(kFrameVersion);
  out.u32(header.kind);
  out.u64(header.cell_begin);
  out.u64(header.cell_count);
  out.u64(header.payload_bytes);
  out.u64(header.payload_checksum);
  return out.take();
}

FrameHeader decode_frame_header(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  require(in.u64() == kFrameMagic, "shard frame: bad magic");
  require(in.u32() == kFrameVersion, "shard frame: unsupported version");
  FrameHeader header;
  header.kind = in.u32();
  require(header.kind == kFrameKindResult || header.kind == kFrameKindError,
          "shard frame: unknown kind");
  header.cell_begin = in.u64();
  header.cell_count = in.u64();
  header.payload_bytes = in.u64();
  header.payload_checksum = in.u64();
  in.finish();
  return header;
}

// Full-buffer pipe I/O with EINTR handling. write_all returns false on any
// unrecoverable error (the parent died; nothing useful left to do in the
// child). read_all returns false on EOF-before-n (the child died mid-frame).
bool write_all(int fd, const std::uint8_t* data, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += wrote;
    n -= static_cast<std::uint64_t>(wrote);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t got = ::read(fd, data, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    data += got;
    n -= static_cast<std::uint64_t>(got);
  }
  return true;
}

// ---------------------------------------------------------------------------
// NUMA placement. Topology comes from /sys (no libnuma dependency); binding
// is best-effort — a machine that hides the topology, or a cpuset that
// forbids the target CPUs, degrades to unpinned workers, never to failure.
// ---------------------------------------------------------------------------

std::vector<std::vector<int>> numa_topology() {
  std::vector<std::vector<int>> nodes;
  for (int node = 0;; ++node) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(node) + "/cpulist";
    std::ifstream in(path);
    if (!in) break;
    std::string text;
    std::getline(in, text);
    try {
      nodes.push_back(parse_cpu_list(text));
    } catch (const Error&) {
      return {};  // unparseable topology: treat as unknown
    }
  }
  return nodes;
}

void bind_to_numa_node(std::size_t shard) {
  const std::vector<std::vector<int>> nodes = numa_topology();
  if (nodes.size() < 2) return;  // single-node or unknown: nothing to place
  const std::vector<int>& cpus = nodes[shard % nodes.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  int usable = 0;
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      ++usable;
    }
  }
  if (usable == 0) return;
  (void)::sched_setaffinity(0, sizeof(set), &set);
}

// ---------------------------------------------------------------------------
// Worker / parent halves of the fork.
// ---------------------------------------------------------------------------

void run_worker(int fd, std::size_t shard, ShardRange range,
                ShardEncoder& encoder) noexcept {
  FrameHeader header;
  header.cell_begin = static_cast<std::uint64_t>(range.begin);
  header.cell_count = static_cast<std::uint64_t>(range.size());
  std::vector<std::uint8_t> payload;
  try {
    payload = encoder.encode_slice(shard, range);
    header.kind = kFrameKindResult;
  } catch (const std::exception& error) {
    const char* what = error.what();
    payload.assign(what, what + std::strlen(what));
    header.kind = kFrameKindError;
  } catch (...) {
    const std::string what = "unknown exception";
    payload.assign(what.begin(), what.end());
    header.kind = kFrameKindError;
  }
  header.payload_bytes = static_cast<std::uint64_t>(payload.size());
  header.payload_checksum = xxh64(payload.data(), payload.size());
  const std::vector<std::uint8_t> head = encode_frame_header(header);
  bool ok = write_all(fd, head.data(), head.size());
  ok = ok && write_all(fd, payload.data(), payload.size());
  ::close(fd);
  // _exit, not exit: a forked worker must not run the parent's atexit chain
  // or flush duplicated stdio buffers.
  ::_exit(ok && header.kind == kFrameKindResult ? 0 : 1);
}

/// Reads and validates one shard's frame. Returns false (with `error` set)
/// instead of throwing so the parent can keep draining and reaping the other
/// shards before reporting.
bool read_shard_frame(int fd, ShardRange expected, std::vector<std::uint8_t>& payload,
                      std::string& error) {
  std::uint8_t head[kFrameHeaderBytes];
  if (!read_all(fd, head, sizeof(head))) {
    error = "worker exited without a complete frame";
    return false;
  }
  FrameHeader header;
  try {
    header = decode_frame_header({head, sizeof(head)});
  } catch (const Error& bad) {
    error = bad.what();
    return false;
  }
  payload.resize(size_from_u64(header.payload_bytes));
  if (!read_all(fd, payload.data(), payload.size())) {
    error = "worker frame payload truncated";
    return false;
  }
  if (xxh64(payload.data(), payload.size()) != header.payload_checksum) {
    error = "worker frame payload checksum mismatch";
    return false;
  }
  if (header.kind == kFrameKindError) {
    error = "worker reported: " +
            std::string(payload.begin(), payload.end());
    return false;
  }
  if (size_from_u64(header.cell_begin) != expected.begin ||
      size_from_u64(header.cell_count) != expected.size()) {
    error = "worker frame covers the wrong cell range";
    return false;
  }
  return true;
}

}  // namespace

std::vector<ShardRange> shard_ranges(std::size_t cells, std::size_t shards) {
  if (shards == 0) shards = 1;
  if (shards > cells) shards = cells;
  std::vector<ShardRange> ranges;
  ranges.reserve(shards);
  std::size_t begin = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const std::size_t size = cells / shards + (shard < cells % shards ? 1 : 0);
    ranges.push_back(ShardRange{begin, begin + size});
    begin += size;
  }
  return ranges;
}

std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // One comma-separated token: "N" or "N-M", surrounded by optional space.
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    std::size_t lo = pos;
    while (lo < end && std::isspace(static_cast<unsigned char>(text[lo])) != 0) ++lo;
    std::size_t hi = end;
    while (hi > lo && std::isspace(static_cast<unsigned char>(text[hi - 1])) != 0) --hi;
    if (lo < hi) {
      const std::string token = text.substr(lo, hi - lo);
      const std::size_t dash = token.find('-');
      try {
        if (dash == std::string::npos) {
          std::size_t used = 0;
          const int cpu = std::stoi(token, &used);
          require(used == token.size() && cpu >= 0, "bad cpu list token: " + token);
          cpus.push_back(cpu);
        } else {
          std::size_t used_first = 0;
          std::size_t used_last = 0;
          const std::string first_text = token.substr(0, dash);
          const std::string last_text = token.substr(dash + 1);
          const int first = std::stoi(first_text, &used_first);
          const int last = std::stoi(last_text, &used_last);
          require(used_first == first_text.size() && used_last == last_text.size() &&
                      first >= 0 && last >= first,
                  "bad cpu list range: " + token);
          for (int cpu = first; cpu <= last; ++cpu) cpus.push_back(cpu);
        }
      } catch (const std::invalid_argument&) {
        throw Error("bad cpu list token: " + token);
      } catch (const std::out_of_range&) {
        throw Error("bad cpu list token: " + token);
      }
    }
    pos = end + 1;
  }
  return cpus;
}

std::vector<ShardPayload> run_forked_shards(std::size_t cells, std::size_t processes,
                                            bool numa_bind, ShardEncoder& encoder) {
  require(cells > 0, "distributed run needs at least one cell");
  const std::vector<ShardRange> ranges =
      shard_ranges(cells, processes == 0 ? 2 : processes);
  telemetry::global_registry().counter("distrib.runs").add();
  telemetry::global_registry()
      .counter("distrib.shards")
      .add(checked_index(ranges.size()));

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
  };
  std::vector<Worker> workers;
  workers.reserve(ranges.size());

  // Fork every worker before reading any frame: a pipe holds ~64 KB, so a
  // worker with a bigger payload blocks in write until the parent drains it,
  // and the parent drains in shard order — all shards still *compute*
  // concurrently, only the streaming back is ordered.
  for (std::size_t shard = 0; shard < ranges.size(); ++shard) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      for (const Worker& w : workers) ::close(w.fd);
      for (const Worker& w : workers) ::waitpid(w.pid, nullptr, 0);
      throw Error("distributed run: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      for (const Worker& w : workers) ::close(w.fd);
      for (const Worker& w : workers) ::waitpid(w.pid, nullptr, 0);
      throw Error("distributed run: fork() failed");
    }
    if (pid == 0) {
      // Worker: release the parent halves of every pipe created so far, pin
      // if asked, run the slice, stream the frame, and _exit.
      for (const Worker& w : workers) ::close(w.fd);
      ::close(fds[0]);
      if (numa_bind) bind_to_numa_node(shard);
      run_worker(fds[1], shard, ranges[shard], encoder);  // does not return
    }
    ::close(fds[1]);
    workers.push_back(Worker{pid, fds[0]});
  }

  std::vector<ShardPayload> payloads(ranges.size());
  std::string first_error;
  std::size_t first_error_shard = 0;
  for (std::size_t shard = 0; shard < ranges.size(); ++shard) {
    payloads[shard].range = ranges[shard];
    std::string error;
    if (!read_shard_frame(workers[shard].fd, ranges[shard], payloads[shard].bytes,
                          error) &&
        first_error.empty()) {
      first_error = error;
      first_error_shard = shard;
    }
    ::close(workers[shard].fd);
  }
  for (std::size_t shard = 0; shard < ranges.size(); ++shard) {
    int status = 0;
    const pid_t reaped = ::waitpid(workers[shard].pid, &status, 0);
    const bool clean = reaped == workers[shard].pid && WIFEXITED(status) &&
                       WEXITSTATUS(status) == 0;
    if (!clean && first_error.empty()) {
      first_error = "worker terminated abnormally";
      first_error_shard = shard;
    }
  }
  if (!first_error.empty()) {
    throw Error("distributed run: shard " + std::to_string(first_error_shard) +
                " failed: " + first_error);
  }
  return payloads;
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader.
// ---------------------------------------------------------------------------

void ByteWriter::u32(std::uint32_t value) {
  const std::size_t at = buffer_.size();
  buffer_.resize(at + sizeof(value));
  std::memcpy(buffer_.data() + at, &value, sizeof(value));
}

void ByteWriter::u64(std::uint64_t value) {
  const std::size_t at = buffer_.size();
  buffer_.resize(at + sizeof(value));
  std::memcpy(buffer_.data() + at, &value, sizeof(value));
}

void ByteWriter::i64(std::int64_t value) { u64(std::bit_cast<std::uint64_t>(value)); }

void ByteWriter::f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

void ByteWriter::boolean(bool value) { u64(value ? 1 : 0); }

void ByteWriter::doubles(std::span<const double> values) {
  u64(static_cast<std::uint64_t>(values.size()));
  if (values.empty()) return;
  const std::size_t at = buffer_.size();
  const std::size_t bytes = values.size() * sizeof(double);
  buffer_.resize(at + bytes);
  std::memcpy(buffer_.data() + at, values.data(), bytes);
}

std::uint32_t ByteReader::u32() {
  require(remaining() >= sizeof(std::uint32_t), "frame truncated");
  std::uint32_t value = 0;
  std::memcpy(&value, data_.data() + offset_, sizeof(value));
  offset_ += sizeof(value);
  return value;
}

std::uint64_t ByteReader::u64() {
  require(remaining() >= sizeof(std::uint64_t), "frame truncated");
  std::uint64_t value = 0;
  std::memcpy(&value, data_.data() + offset_, sizeof(value));
  offset_ += sizeof(value);
  return value;
}

std::int64_t ByteReader::i64() { return std::bit_cast<std::int64_t>(u64()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

bool ByteReader::boolean() {
  const std::uint64_t value = u64();
  require(value <= 1, "frame boolean field out of range");
  return value != 0;
}

std::vector<double> ByteReader::doubles() {
  const std::size_t count = size_from_u64(u64());
  require(count <= remaining() / sizeof(double), "frame truncated");
  std::vector<double> values(count);
  if (count > 0) {
    std::memcpy(values.data(), data_.data() + offset_, count * sizeof(double));
    offset_ += count * sizeof(double);
  }
  return values;
}

void ByteReader::finish() const {
  require(remaining() == 0, "frame has trailing bytes");
}

// ---------------------------------------------------------------------------
// RunMetrics encoding + digests.
// ---------------------------------------------------------------------------

void encode_run_metrics(ByteWriter& out, const RunMetrics& metrics) {
  out.i64(metrics.slots_run);
  out.u64(static_cast<std::uint64_t>(metrics.per_user.size()));
  for (const UserTotals& user : metrics.per_user) {
    out.f64(user.trans_mj);
    out.f64(user.tail_mj);
    out.f64(user.rebuffer_s);
    out.f64(user.delivered_kb);
    out.i64(user.session_slots);
    out.i64(user.tx_slots);
    out.boolean(user.playback_finished);
  }
  out.boolean(metrics.has_certificate);
  out.i64(metrics.cert_exact_slots);
  out.i64(metrics.cert_certified_slots);
  out.f64(metrics.cert_gap_sum);
  out.f64(metrics.cert_gap_max);
  out.doubles(metrics.slot_fairness);
  out.doubles(metrics.slot_energy_mj);
  out.doubles(metrics.rebuffer_samples_s);
}

RunMetrics decode_run_metrics(ByteReader& in) {
  RunMetrics metrics;
  metrics.slots_run = in.i64();
  const std::size_t users = size_from_u64(in.u64());
  // Each serialized user occupies 7 fixed-width fields; reject counts the
  // remaining payload cannot possibly hold before reserving.
  require(users <= in.remaining() / (7 * sizeof(std::uint64_t)),
          "frame truncated");
  metrics.per_user.resize(users);
  for (UserTotals& user : metrics.per_user) {
    user.trans_mj = in.f64();
    user.tail_mj = in.f64();
    user.rebuffer_s = in.f64();
    user.delivered_kb = in.f64();
    user.session_slots = in.i64();
    user.tx_slots = in.i64();
    user.playback_finished = in.boolean();
  }
  metrics.has_certificate = in.boolean();
  metrics.cert_exact_slots = in.i64();
  metrics.cert_certified_slots = in.i64();
  metrics.cert_gap_sum = in.f64();
  metrics.cert_gap_max = in.f64();
  metrics.slot_fairness = in.doubles();
  metrics.slot_energy_mj = in.doubles();
  metrics.rebuffer_samples_s = in.doubles();
  return metrics;
}

std::uint64_t metrics_digest(const RunMetrics& metrics) {
  ByteWriter out;
  encode_run_metrics(out, metrics);
  return xxh64(out.bytes().data(), out.bytes().size());
}

std::uint64_t metrics_digest(std::span<const RunMetrics> metrics) {
  ByteWriter out;
  out.u64(static_cast<std::uint64_t>(metrics.size()));
  for (const RunMetrics& m : metrics) encode_run_metrics(out, m);
  return xxh64(out.bytes().data(), out.bytes().size());
}

// ---------------------------------------------------------------------------
// Batch runner.
// ---------------------------------------------------------------------------

namespace {

class BatchShardEncoder final : public ShardEncoder {
 public:
  BatchShardEncoder(std::span<const ExperimentSpec> specs,
                    const CampaignOptions& campaign)
      : specs_(specs), campaign_(campaign) {}

  std::vector<std::uint8_t> encode_slice(std::size_t /*shard*/,
                                         ShardRange range) override {
    const std::vector<RunMetrics> results =
        run_campaign(specs_.subspan(range.begin, range.size()), campaign_);
    ByteWriter out;
    for (const RunMetrics& metrics : results) encode_run_metrics(out, metrics);
    return out.take();
  }

 private:
  std::span<const ExperimentSpec> specs_;
  const CampaignOptions& campaign_;
};

}  // namespace

std::vector<RunMetrics> run_campaign_distributed(std::span<const ExperimentSpec> specs,
                                                 const DistribOptions& options) {
  if (specs.empty()) return {};
  BatchShardEncoder encoder(specs, options.campaign);
  const std::vector<ShardPayload> payloads =
      run_forked_shards(specs.size(), options.processes, options.numa_bind, encoder);
  std::vector<RunMetrics> merged(specs.size());
  for (const ShardPayload& shard : payloads) {
    ByteReader in(shard.bytes);
    for (std::size_t i = shard.range.begin; i < shard.range.end; ++i) {
      merged[i] = decode_run_metrics(in);
    }
    in.finish();
  }
  return merged;
}

}  // namespace jstream
