#include "sim/fault.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/scenario.hpp"
#include "telemetry/registry.hpp"

namespace jstream {

namespace {

struct FaultTelemetry {
  telemetry::Counter& schedules;
  telemetry::Counter& outage_user_slots;
  telemetry::Counter& stale_user_slots;
  telemetry::Counter& stale_clipped_units;
  telemetry::Counter& departures;
  telemetry::Counter& capacity_degraded_slots;

  static FaultTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static FaultTelemetry probes{registry.counter("fault.schedules"),
                                 registry.counter("fault.outage_user_slots"),
                                 registry.counter("fault.stale_user_slots"),
                                 registry.counter("fault.stale_clipped_units"),
                                 registry.counter("fault.departures"),
                                 registry.counter("fault.capacity_degraded_slots")};
    return probes;
  }
};

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& hash, double value) noexcept {
  fnv_mix(hash, std::bit_cast<std::uint64_t>(value));
}

// Stream ids for the fault RNG tree. The root stream sits far above any
// per-user endpoint stream (those are the user indices), and every family
// draws from its own child so tuning one family never shifts another's
// windows.
constexpr std::uint64_t kFaultRootStream = 0xfa170000'00000000ULL;
constexpr std::uint64_t kOutageStream = 0x0a00000000ULL;
constexpr std::uint64_t kStaleStream = 0x0b00000000ULL;
constexpr std::uint64_t kDepartureStream = 0x0c00000000ULL;
constexpr std::uint64_t kCapacityStream = 0x0d00000000ULL;

/// True when `slot` falls inside one of the sorted, non-overlapping windows.
bool hit(std::span<const FaultInterval> windows, std::int64_t slot) noexcept {
  const auto it = std::upper_bound(
      windows.begin(), windows.end(), slot,
      [](std::int64_t s, const FaultInterval& w) { return s < w.end; });
  return it != windows.end() && it->begin <= slot;
}

/// Walks the horizon starting a window with probability rate/1000 per clean
/// slot; lengths are uniform in [min_len, max_len], clamped to the horizon,
/// with at least one clean slot between consecutive windows.
template <typename Emit>
void draw_windows(Rng rng, double rate_per_kslot, std::int64_t min_len,
                  std::int64_t max_len, std::int64_t horizon, Emit&& emit) {
  if (rate_per_kslot <= 0.0) return;
  const double p_start = rate_per_kslot / 1000.0;
  std::int64_t slot = 0;
  while (slot < horizon) {
    if (rng.uniform() < p_start) {
      const std::int64_t end = std::min(horizon, slot + rng.uniform_int(min_len, max_len));
      emit(FaultInterval{slot, end});
      slot = end + 1;
    } else {
      ++slot;
    }
  }
}

void require_window_range(double rate, std::int64_t min_len, std::int64_t max_len,
                          const char* family) {
  require(rate >= 0.0, std::string(family) + " fault rate must be non-negative");
  require(min_len >= 1 && min_len <= max_len,
          std::string(family) + " fault window length range is invalid");
}

}  // namespace

void validate(const FaultConfig& config) {
  require_window_range(config.outage_rate_per_kslot, config.outage_min_slots,
                       config.outage_max_slots, "outage");
  require_window_range(config.capacity_rate_per_kslot, config.capacity_min_slots,
                       config.capacity_max_slots, "capacity");
  require_window_range(config.staleness_rate_per_kslot, config.staleness_min_slots,
                       config.staleness_max_slots, "staleness");
  require(std::isfinite(config.outage_dbm), "outage fade depth must be finite");
  require(config.capacity_scale >= 0.0 && config.capacity_scale <= 1.0,
          "capacity degradation scale must be in [0, 1]");
  require(config.departure_fraction >= 0.0 && config.departure_fraction <= 1.0,
          "departure fraction must be in [0, 1]");
  require(config.departure_min_slot >= 0,
          "earliest departure slot must be non-negative");
}

std::uint64_t fault_fingerprint(const FaultConfig& config) noexcept {
  if (!config.any()) return 0;
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, config.outage_rate_per_kslot);
  fnv_mix(hash, static_cast<std::uint64_t>(config.outage_min_slots));
  fnv_mix(hash, static_cast<std::uint64_t>(config.outage_max_slots));
  fnv_mix(hash, config.outage_dbm);
  fnv_mix(hash, config.capacity_rate_per_kslot);
  fnv_mix(hash, static_cast<std::uint64_t>(config.capacity_min_slots));
  fnv_mix(hash, static_cast<std::uint64_t>(config.capacity_max_slots));
  fnv_mix(hash, config.capacity_scale);
  fnv_mix(hash, config.departure_fraction);
  fnv_mix(hash, static_cast<std::uint64_t>(config.departure_min_slot));
  fnv_mix(hash, config.staleness_rate_per_kslot);
  fnv_mix(hash, static_cast<std::uint64_t>(config.staleness_min_slots));
  fnv_mix(hash, static_cast<std::uint64_t>(config.staleness_max_slots));
  fnv_mix(hash, config.salt);
  return hash != 0 ? hash : 1;  // 0 is reserved for "faults inactive"
}

FaultSchedule::FaultSchedule(std::size_t users, std::int64_t horizon,
                             double outage_dbm)
    : per_user_(users), horizon_(horizon), outage_dbm_(outage_dbm) {
  require(horizon > 0, "fault schedule needs a positive horizon");
}

namespace {

void append_window(std::vector<FaultInterval>& windows, FaultInterval window,
                   std::int64_t horizon, const char* family) {
  require(window.begin >= 0 && window.begin < window.end && window.end <= horizon,
          std::string(family) + " fault window outside [0, horizon)");
  require(windows.empty() || window.begin >= windows.back().end,
          std::string(family) + " fault windows must be appended in order");
  windows.push_back(window);
}

}  // namespace

void FaultSchedule::add_outage(std::size_t user, FaultInterval burst) {
  require(user < per_user_.size(), "outage user out of range");
  append_window(per_user_[user].outages, burst, horizon_, "outage");
  active_ = true;
}

void FaultSchedule::add_stale_window(std::size_t user, FaultInterval window) {
  require(user < per_user_.size(), "staleness user out of range");
  append_window(per_user_[user].stale, window, horizon_, "staleness");
  active_ = true;
}

void FaultSchedule::add_capacity_window(FaultInterval window, double scale) {
  require(scale >= 0.0 && scale <= 1.0, "capacity window scale must be in [0, 1]");
  append_window(capacity_windows_, window, horizon_, "capacity");
  capacity_scales_.push_back(scale);
  active_ = true;
}

void FaultSchedule::set_departure(std::size_t user, std::int64_t slot) {
  require(user < per_user_.size(), "departure user out of range");
  require(slot >= 0 && slot < horizon_, "departure slot outside the horizon");
  per_user_[user].departure_slot = slot;
  active_ = true;
}

bool FaultSchedule::outaged(std::size_t user, std::int64_t slot) const noexcept {
  return user < per_user_.size() && hit(per_user_[user].outages, slot);
}

bool FaultSchedule::stale(std::size_t user, std::int64_t slot) const noexcept {
  return user < per_user_.size() && hit(per_user_[user].stale, slot);
}

std::int64_t FaultSchedule::departure_slot(std::size_t user) const noexcept {
  return user < per_user_.size() ? per_user_[user].departure_slot : kNeverDeparts;
}

double FaultSchedule::capacity_scale(std::int64_t slot) const noexcept {
  const auto it = std::upper_bound(
      capacity_windows_.begin(), capacity_windows_.end(), slot,
      [](std::int64_t s, const FaultInterval& w) { return s < w.end; });
  if (it == capacity_windows_.end() || it->begin > slot) return 1.0;
  return capacity_scales_[checked_size(it - capacity_windows_.begin())];
}

std::span<const FaultInterval> FaultSchedule::outages(std::size_t user) const {
  require(user < per_user_.size(), "outage user out of range");
  return per_user_[user].outages;
}

std::span<const FaultInterval> FaultSchedule::stale_windows(std::size_t user) const {
  require(user < per_user_.size(), "staleness user out of range");
  return per_user_[user].stale;
}

std::span<const FaultInterval> FaultSchedule::capacity_windows() const noexcept {
  return capacity_windows_;
}

std::int64_t FaultSchedule::total_outage_slots() const noexcept {
  std::int64_t total = 0;
  for (const PerUser& user : per_user_) {
    for (const FaultInterval& w : user.outages) total += w.end - w.begin;
  }
  return total;
}

std::int64_t FaultSchedule::total_stale_slots() const noexcept {
  std::int64_t total = 0;
  for (const PerUser& user : per_user_) {
    for (const FaultInterval& w : user.stale) total += w.end - w.begin;
  }
  return total;
}

std::size_t FaultSchedule::departures() const noexcept {
  std::size_t count = 0;
  for (const PerUser& user : per_user_) {
    if (user.departure_slot != kNeverDeparts) ++count;
  }
  return count;
}

FaultSchedule make_fault_schedule(const ScenarioConfig& config) {
  validate(config.faults);
  const FaultConfig& faults = config.faults;
  FaultSchedule schedule(config.users, config.max_slots, faults.outage_dbm);
  if (!faults.any()) return schedule;

  // Independent of the endpoint construction streams (those are
  // scenario_rng.split(i) for user indices i), so enabling faults perturbs
  // nothing about the channel, content, or arrivals.
  const Rng fault_root = Rng(config.seed).split(kFaultRootStream + faults.salt);
  for (std::size_t user = 0; user < config.users; ++user) {
    draw_windows(fault_root.split(kOutageStream + user), faults.outage_rate_per_kslot,
                 faults.outage_min_slots, faults.outage_max_slots, config.max_slots,
                 [&](FaultInterval burst) { schedule.add_outage(user, burst); });
    draw_windows(fault_root.split(kStaleStream + user), faults.staleness_rate_per_kslot,
                 faults.staleness_min_slots, faults.staleness_max_slots,
                 config.max_slots,
                 [&](FaultInterval window) { schedule.add_stale_window(user, window); });
    if (faults.departure_fraction > 0.0) {
      Rng departure_rng = fault_root.split(kDepartureStream + user);
      if (departure_rng.uniform() < faults.departure_fraction) {
        const std::int64_t earliest =
            std::min(faults.departure_min_slot, config.max_slots - 1);
        schedule.set_departure(
            user, departure_rng.uniform_int(earliest, config.max_slots - 1));
      }
    }
  }
  draw_windows(fault_root.split(kCapacityStream), faults.capacity_rate_per_kslot,
               faults.capacity_min_slots, faults.capacity_max_slots, config.max_slots,
               [&](FaultInterval window) {
                 schedule.add_capacity_window(window, faults.capacity_scale);
               });
  if (telemetry::enabled()) FaultTelemetry::instance().schedules.add();
  return schedule;
}

FaultInjector::FaultInjector(std::shared_ptr<const FaultSchedule> schedule)
    : schedule_(std::move(schedule)) {
  require(schedule_ != nullptr, "fault injector needs a schedule");
  const std::size_t users = schedule_->users();
  truth_.resize(users);
  last_fresh_.resize(users);
  stale_now_.assign(users, 0);
  departure_counted_.assign(users, 0);
}

void FaultInjector::degrade_context(SlotContext& ctx) {
  require(ctx.user_count() == schedule_->users(),
          "fault schedule population differs from the slot context");
  auto& probes = FaultTelemetry::instance();
  const bool telemetry_on = telemetry::enabled();
  const std::int64_t slot = ctx.slot;

  // (b) Base-station degradation scales the constraint Eq. 2 bound before
  // the scheduler sees it, so every policy's decision is feasible for the
  // degraded cell by construction.
  const double scale = schedule_->capacity_scale(slot);
  if (scale < 1.0) {
    ctx.capacity_units = floor_to_count(as_double(ctx.capacity_units) * scale);
    if (telemetry_on) probes.capacity_degraded_slots.add();
  }

  for (std::size_t i = 0; i < ctx.user_count(); ++i) {
    UserSlotInfo& info = ctx.users[i];
    stale_now_[i] = 0;

    // (c) Departure: the session aborted — no demand, zero allocation cap, and
    // schedulers with per-user state (EMA's Eq. 16 virtual queues, RTMA's
    // rotation) see a user that simply never needs data again. The abort slot
    // itself lives on the endpoint (the Simulator stamps the schedule's drawn
    // slots into UserEndpoint::departure_slot), so fault aborts and
    // session-layer departures flow through the same collector-set flag; the
    // injector only handles the fault-local bookkeeping.
    if (info.departed) {
      last_fresh_[i].valid = false;
      if (departure_counted_[i] == 0) {
        departure_counted_[i] = 1;
        if (telemetry_on) probes.departures.add();
      }
      continue;
    }
    if (!info.arrived) continue;

    // (a) Deep fade: the physical channel truth changes — both Definition
    // 3/4 fits are re-evaluated at the fade depth (positive but collapsed
    // throughput, inflated per-KB energy), and the Eq. 1 cap shrinks with
    // them. This is not a reporting artifact, so it is never undone.
    if (schedule_->outaged(i, slot)) {
      info.signal_dbm = schedule_->outage_dbm();
      info.throughput_kbps = ctx.throughput->throughput_kbps(info.signal_dbm);
      info.energy_per_kb = ctx.power->energy_per_kb(info.signal_dbm);
      info.link_units = ctx.params.link_units(info.throughput_kbps);
      const std::int64_t remaining_units =
          ceil_to_count(info.remaining_kb / ctx.params.delta_kb);
      info.alloc_cap_units =
          std::max<std::int64_t>(0, std::min(info.link_units, remaining_units));
      if (telemetry_on) probes.outage_user_slots.add();
    }

    // (d) Staleness: the gateway lost this slot's feedback, so the scheduler
    // is served the last fresh link report (gateway-side state — remaining
    // content, buffer, bitrate — is still the truth). The displaced truth is
    // stashed and restored in reconcile_allocation. Until a first fresh
    // report exists there is nothing stale to serve.
    if (schedule_->stale(i, slot) && last_fresh_[i].valid) {
      truth_[i] = LinkSnapshot{info.signal_dbm,  info.throughput_kbps,
                               info.energy_per_kb, info.link_units,
                               info.alloc_cap_units, true};
      const LinkSnapshot& seen = last_fresh_[i];
      info.signal_dbm = seen.signal_dbm;
      info.throughput_kbps = seen.throughput_kbps;
      info.energy_per_kb = seen.energy_per_kb;
      info.link_units = seen.link_units;
      const std::int64_t remaining_units =
          ceil_to_count(info.remaining_kb / ctx.params.delta_kb);
      info.alloc_cap_units =
          std::max<std::int64_t>(0, std::min(seen.link_units, remaining_units));
      stale_now_[i] = 1;
      if (telemetry_on) probes.stale_user_slots.add();
    } else {
      last_fresh_[i] = LinkSnapshot{info.signal_dbm,  info.throughput_kbps,
                                    info.energy_per_kb, info.link_units,
                                    info.alloc_cap_units, true};
      truth_[i].valid = false;
    }
  }
}

void FaultInjector::reconcile_allocation(SlotContext& ctx, Allocation& alloc) {
  require(ctx.user_count() == schedule_->users() &&
              alloc.units.size() == schedule_->users(),
          "fault schedule population differs from the allocation");
  auto& probes = FaultTelemetry::instance();
  const bool telemetry_on = telemetry::enabled();
  for (std::size_t i = 0; i < ctx.user_count(); ++i) {
    if (stale_now_[i] == 0) continue;
    stale_now_[i] = 0;
    UserSlotInfo& info = ctx.users[i];
    const LinkSnapshot& truth = truth_[i];
    info.signal_dbm = truth.signal_dbm;
    info.throughput_kbps = truth.throughput_kbps;
    info.energy_per_kb = truth.energy_per_kb;
    info.link_units = truth.link_units;
    info.alloc_cap_units = truth.alloc_cap_units;
    // The PHY cannot carry more than the true link allows: a grant made
    // against an optimistic stale report is clipped, which only ever reduces
    // the total, so constraint Eq. 2 keeps holding.
    if (alloc.units[i] > truth.alloc_cap_units) {
      if (telemetry_on) {
        probes.stale_clipped_units.add(alloc.units[i] - truth.alloc_cap_units);
      }
      alloc.units[i] = truth.alloc_cap_units;
    }
  }
}

}  // namespace jstream
