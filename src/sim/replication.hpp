// Multi-seed replication: runs one experiment across R seeds and reports the
// distribution of each headline metric. Single-seed figures can mislead in a
// stochastic simulation; the bench binaries accept --reps to wrap their
// points in this harness.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sim/experiment.hpp"

namespace jstream {

/// Distribution of one run-level metric across replications.
struct ReplicatedMetric {
  Summary summary;

  /// Half-width of the ~95% normal confidence interval of the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;
};

/// Replication results for the headline metrics.
struct ReplicationResult {
  std::vector<RunMetrics> runs;  ///< one per seed, in seed order
  ReplicatedMetric pe_mj;        ///< avg energy per user-slot
  ReplicatedMetric pc_s;         ///< avg rebuffering per user-slot
  ReplicatedMetric fairness;     ///< mean Jain index
  ReplicatedMetric total_energy_mj;
  ReplicatedMetric total_rebuffer_s;
};

/// Runs `spec` with seeds spec.scenario.seed + 0 .. replications-1 (parallel
/// over `threads` workers) and aggregates. Requires replications >= 1.
[[nodiscard]] ReplicationResult replicate_experiment(const ExperimentSpec& spec,
                                                     std::size_t replications,
                                                     std::size_t threads = 0);

}  // namespace jstream
