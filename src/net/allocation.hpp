// Per-slot data-unit allocations and feasibility checking.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace jstream {

/// Result of one scheduler invocation: phi_i(n) data units per user.
struct Allocation {
  std::vector<std::int64_t> units;  ///< one entry per user, non-negative

  [[nodiscard]] std::int64_t total_units() const noexcept;
  [[nodiscard]] std::size_t user_count() const noexcept { return units.size(); }

  /// Zeroed allocation for `users` users.
  [[nodiscard]] static Allocation zeros(std::size_t users);
};

/// Outcome of validating an allocation against constraints (1) and (2).
struct FeasibilityReport {
  bool feasible = true;
  std::string violation;  ///< human-readable description of the first violation
};

/// Checks an allocation against the per-user link bounds (constraint (1)) and
/// the base-station capacity in units (constraint (2)). `link_unit_caps` must
/// have one entry per user.
[[nodiscard]] FeasibilityReport check_feasible(const Allocation& allocation,
                                               std::span<const std::int64_t> link_unit_caps,
                                               std::int64_t capacity_units);

/// Throwing variant of check_feasible for use at module boundaries.
void require_feasible(const Allocation& allocation,
                      std::span<const std::int64_t> link_unit_caps,
                      std::int64_t capacity_units);

}  // namespace jstream
