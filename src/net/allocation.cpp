#include "net/allocation.hpp"

#include "common/error.hpp"

namespace jstream {

std::int64_t Allocation::total_units() const noexcept {
  std::int64_t total = 0;
  for (std::int64_t u : units) total += u;
  return total;
}

Allocation Allocation::zeros(std::size_t users) {
  Allocation a;
  a.units.assign(users, 0);
  return a;
}

FeasibilityReport check_feasible(const Allocation& allocation,
                                 std::span<const std::int64_t> link_unit_caps,
                                 std::int64_t capacity_units) {
  FeasibilityReport report;
  if (allocation.units.size() != link_unit_caps.size()) {
    report.feasible = false;
    report.violation = "allocation size does not match user count";
    return report;
  }
  std::int64_t total = 0;
  for (std::size_t i = 0; i < allocation.units.size(); ++i) {
    const std::int64_t phi = allocation.units[i];
    if (phi < 0) {
      report.feasible = false;
      report.violation = "negative allocation for user " + std::to_string(i);
      return report;
    }
    if (phi > link_unit_caps[i]) {
      report.feasible = false;
      report.violation = "constraint (1) violated for user " + std::to_string(i) + ": " +
                         std::to_string(phi) + " > " + std::to_string(link_unit_caps[i]);
      return report;
    }
    total += phi;
  }
  if (total > capacity_units) {
    report.feasible = false;
    report.violation = "constraint (2) violated: " + std::to_string(total) + " > " +
                       std::to_string(capacity_units);
  }
  return report;
}

void require_feasible(const Allocation& allocation,
                      std::span<const std::int64_t> link_unit_caps,
                      std::int64_t capacity_units) {
  const FeasibilityReport report =
      check_feasible(allocation, link_unit_caps, capacity_units);
  require(report.feasible, "infeasible allocation: " + report.violation);
}

}  // namespace jstream
