#include "net/base_station.hpp"

#include "common/error.hpp"

namespace jstream {

BaseStation::BaseStation(double capacity_kbps) {
  require(capacity_kbps > 0.0, "BS capacity must be positive");
  profile_ = [capacity_kbps](std::int64_t) { return capacity_kbps; };
}

BaseStation::BaseStation(std::function<double(std::int64_t)> profile)
    : profile_(std::move(profile)) {
  require(static_cast<bool>(profile_), "capacity profile must be callable");
}

double BaseStation::capacity_kbps(std::int64_t slot) const {
  require(slot >= 0, "slot must be non-negative");
  const double capacity = profile_(slot);
  require(capacity > 0.0, "capacity profile returned non-positive value");
  return capacity;
}

std::int64_t BaseStation::capacity_units(std::int64_t slot,
                                         const SlotParams& params) const {
  return params.capacity_units(capacity_kbps(slot));
}

}  // namespace jstream
