// Base-station serving capacity S(n) (Section III-B).
//
// The paper's evaluation uses a constant 20 MB/s; a time-varying profile is
// supported so load changes at the BS (one of the unpredictability sources
// the introduction cites) can be simulated.
#pragma once

#include <cstdint>
#include <functional>

#include "net/transmission.hpp"

namespace jstream {

/// Downlink serving capacity of one base station.
class BaseStation {
 public:
  /// Constant capacity in KB/s (paper default: 20 MB/s = 20000 KB/s).
  explicit BaseStation(double capacity_kbps);

  /// Time-varying capacity: `profile(slot)` must return KB/s > 0.
  explicit BaseStation(std::function<double(std::int64_t)> profile);

  /// S(n) in KB/s.
  [[nodiscard]] double capacity_kbps(std::int64_t slot) const;

  /// Constraint (2) bound in data units for the given slot grid.
  [[nodiscard]] std::int64_t capacity_units(std::int64_t slot,
                                            const SlotParams& params) const;

 private:
  std::function<double(std::int64_t)> profile_;
};

}  // namespace jstream
