// Slotted transmission parameters (Section III-B).
//
// Time is slotted (length tau); the physical layer moves data in fixed-size
// frames of delta KB, so per-slot allocations are integer unit counts phi:
// d_i(n) = phi_i(n) * delta (Definition 1). The paper does not publish delta;
// the library default is 100 KB (see DESIGN.md).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace jstream {

/// Slot length and frame size shared by every module.
struct SlotParams {
  double tau_s = 1.0;      ///< slot duration, seconds
  double delta_kb = 100.0; ///< frame / data-unit size, KB

  /// Constraint (1) bound: units one user's link supports in a slot,
  /// floor(tau * v / delta).
  [[nodiscard]] std::int64_t link_units(double throughput_kbps) const noexcept {
    return floor_to_count(tau_s * throughput_kbps / delta_kb);
  }

  /// Constraint (2) bound: units the base station supports in a slot,
  /// floor(tau * S / delta).
  [[nodiscard]] std::int64_t capacity_units(double capacity_kbps) const noexcept {
    return floor_to_count(tau_s * capacity_kbps / delta_kb);
  }

  /// RTMA's per-slot need (Algorithm 1 step 3): ceil(tau * p / delta).
  [[nodiscard]] std::int64_t need_units(double bitrate_kbps) const noexcept {
    return ceil_to_count(tau_s * bitrate_kbps / delta_kb);
  }

  /// Bytes-to-playback-time conversion helper: seconds of playback carried by
  /// `units` data units at `bitrate_kbps` (t_i(n) = d_i(n) / p_i(n)).
  [[nodiscard]] double playback_seconds(std::int64_t units, double bitrate_kbps) const noexcept {
    return as_double(units) * delta_kb / bitrate_kbps;
  }

  /// KB carried by `units` data units.
  [[nodiscard]] double units_to_kb(std::int64_t units) const noexcept {
    return as_double(units) * delta_kb;
  }
};

}  // namespace jstream
