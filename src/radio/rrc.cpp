#include "radio/rrc.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/registry.hpp"

namespace jstream {

namespace {

// Transition counters resolved once against the global registry; the
// recording itself is a relaxed atomic increment per state change.
struct RrcTelemetry {
  telemetry::Counter& idle_to_dch;
  telemetry::Counter& fach_to_dch;
  telemetry::Counter& dch_to_fach;
  telemetry::Counter& dch_to_idle;
  telemetry::Counter& fach_to_idle;

  static RrcTelemetry& instance() {
    auto& registry = telemetry::global_registry();
    static RrcTelemetry probes{registry.counter("rrc.transitions.idle_to_dch"),
                               registry.counter("rrc.transitions.fach_to_dch"),
                               registry.counter("rrc.transitions.dch_to_fach"),
                               registry.counter("rrc.transitions.dch_to_idle"),
                               registry.counter("rrc.transitions.fach_to_idle")};
    return probes;
  }
};

void count_transition(RrcState from, RrcState to) {
  auto& probes = RrcTelemetry::instance();
  if (from == RrcState::kIdle && to == RrcState::kDch) probes.idle_to_dch.add();
  if (from == RrcState::kFach && to == RrcState::kDch) probes.fach_to_dch.add();
  if (from == RrcState::kDch && to == RrcState::kFach) probes.dch_to_fach.add();
  if (from == RrcState::kDch && to == RrcState::kIdle) probes.dch_to_idle.add();
  if (from == RrcState::kFach && to == RrcState::kIdle) probes.fach_to_idle.add();
}

}  // namespace

double tail_energy_mj(const RadioProfile& profile, double t_s) {
  require(t_s >= 0.0, "idle time must be non-negative");
  const double in_dch = std::min(t_s, profile.t1_s);
  const double in_fach = std::clamp(t_s - profile.t1_s, 0.0, profile.t2_s);
  return profile.p_dch_mw * in_dch + profile.p_fach_mw * in_fach;
}

double slot_tail_energy_mj(const RadioProfile& profile, double idle_start_s,
                           double tau_s) {
  require(tau_s >= 0.0, "slot length must be non-negative");
  return tail_energy_mj(profile, idle_start_s + tau_s) -
         tail_energy_mj(profile, idle_start_s);
}

RrcStateMachine::RrcStateMachine(RadioProfile profile) : profile_(profile) {
  validate(profile_);
}

double RrcStateMachine::advance_slot(double active_s, double tau_s) {
  require(tau_s > 0.0, "slot length must be positive");
  require(active_s >= 0.0, "active time must be non-negative");
  const RrcState entered = state();
  const auto finish = [&](double energy) {
    if (telemetry::enabled()) {
      const RrcState left = state();
      if (left != entered) count_transition(entered, left);
    }
    return energy;
  };
  if (active_s > 0.0) {
    never_transmitted_ = false;
    if (!profile_.continuous_tail) {
      // Eq. 5 semantics: a transmission slot carries no tail energy; the tail
      // clock starts at the slot boundary.
      idle_s_ = 0.0;
      return finish(0.0);
    }
    // Continuous-time Eq. 4: a fresh tail begins when the transfer ends; its
    // first tau - active seconds fall inside this slot.
    const double residue = std::max(tau_s - active_s, 0.0);
    idle_s_ = residue;
    return finish(slot_tail_energy_mj(profile_, 0.0, residue));
  }
  if (never_transmitted_) return finish(0.0);  // radio was never promoted
  const double energy = slot_tail_energy_mj(profile_, idle_s_, tau_s);
  idle_s_ += tau_s;
  return finish(energy);
}

RrcState RrcStateMachine::state() const noexcept {
  if (never_transmitted_) return RrcState::kIdle;
  if (idle_s_ < profile_.t1_s) return RrcState::kDch;
  if (profile_.kind == RrcKind::kTwoStateLte) return RrcState::kIdle;
  if (idle_s_ < profile_.t1_s + profile_.t2_s) return RrcState::kFach;
  return RrcState::kIdle;
}

}  // namespace jstream
