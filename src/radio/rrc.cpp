#include "radio/rrc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace jstream {

double tail_energy_mj(const RadioProfile& profile, double t_s) {
  require(t_s >= 0.0, "idle time must be non-negative");
  const double in_dch = std::min(t_s, profile.t1_s);
  const double in_fach = std::clamp(t_s - profile.t1_s, 0.0, profile.t2_s);
  return profile.p_dch_mw * in_dch + profile.p_fach_mw * in_fach;
}

double slot_tail_energy_mj(const RadioProfile& profile, double idle_start_s,
                           double tau_s) {
  require(tau_s >= 0.0, "slot length must be non-negative");
  return tail_energy_mj(profile, idle_start_s + tau_s) -
         tail_energy_mj(profile, idle_start_s);
}

RrcStateMachine::RrcStateMachine(RadioProfile profile) : profile_(profile) {
  validate(profile_);
}

double RrcStateMachine::advance_slot(double active_s, double tau_s) {
  require(tau_s > 0.0, "slot length must be positive");
  require(active_s >= 0.0, "active time must be non-negative");
  if (active_s > 0.0) {
    never_transmitted_ = false;
    if (!profile_.continuous_tail) {
      // Eq. 5 semantics: a transmission slot carries no tail energy; the tail
      // clock starts at the slot boundary.
      idle_s_ = 0.0;
      return 0.0;
    }
    // Continuous-time Eq. 4: a fresh tail begins when the transfer ends; its
    // first tau - active seconds fall inside this slot.
    const double residue = std::max(tau_s - active_s, 0.0);
    idle_s_ = residue;
    return slot_tail_energy_mj(profile_, 0.0, residue);
  }
  if (never_transmitted_) return 0.0;  // radio was never promoted
  const double energy = slot_tail_energy_mj(profile_, idle_s_, tau_s);
  idle_s_ += tau_s;
  return energy;
}

RrcState RrcStateMachine::state() const noexcept {
  if (never_transmitted_) return RrcState::kIdle;
  if (idle_s_ < profile_.t1_s) return RrcState::kDch;
  if (profile_.kind == RrcKind::kTwoStateLte) return RrcState::kIdle;
  if (idle_s_ < profile_.t1_s + profile_.t2_s) return RrcState::kFach;
  return RrcState::kIdle;
}

}  // namespace jstream
