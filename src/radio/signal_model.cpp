#include "radio/signal_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

ConstantSignalModel::ConstantSignalModel(double dbm) : dbm_(dbm) {
  require(dbm <= 0.0, "RSSI must be non-positive dBm");
}

double ConstantSignalModel::signal_dbm(std::int64_t /*slot*/) { return dbm_; }

SineSignalModel::SineSignalModel(SineSignalParams params, Rng rng)
    : params_(params), rng_(rng) {
  require(params_.min_dbm < params_.max_dbm, "sine signal range is empty");
  require(params_.period_slots > 0.0, "sine period must be positive");
  require(params_.noise_stddev_db >= 0.0, "noise stddev must be non-negative");
  last_value_ = 0.5 * (params_.min_dbm + params_.max_dbm);
}

double SineSignalModel::signal_dbm(std::int64_t slot) {
  require(slot >= 0, "slot must be non-negative");
  // Slots must be visited in order for noise reproducibility: a random stream
  // has no random access. Repeated queries for the same slot are allowed.
  if (slot < next_slot_ - 1) {
    throw Error("SineSignalModel queried out of order");
  }
  if (slot == next_slot_ - 1) return last_value_;
  for (; next_slot_ <= slot; ++next_slot_) {
    const double mid = 0.5 * (params_.min_dbm + params_.max_dbm);
    const double amplitude = 0.5 * (params_.max_dbm - params_.min_dbm);
    const double angle = 2.0 * std::numbers::pi *
                             as_double(next_slot_) / params_.period_slots +
                         params_.phase_radians;
    const double noise =
        params_.noise_stddev_db > 0.0 ? rng_.gaussian(0.0, params_.noise_stddev_db) : 0.0;
    last_value_ = std::clamp(mid + amplitude * std::sin(angle) + noise, params_.min_dbm,
                             params_.max_dbm);
  }
  return last_value_;
}

TraceSignalModel::TraceSignalModel(std::vector<double> trace_dbm)
    : trace_(std::move(trace_dbm)) {
  require(!trace_.empty(), "signal trace must not be empty");
}

double TraceSignalModel::signal_dbm(std::int64_t slot) {
  require(slot >= 0, "slot must be non-negative");
  return trace_[checked_size(slot) % trace_.size()];
}

GaussMarkovSignalModel::GaussMarkovSignalModel(Params params, Rng rng)
    : params_(params), rng_(rng), value_(params.mean_dbm) {
  require(params_.rho >= 0.0 && params_.rho < 1.0, "rho must be in [0,1)");
  require(params_.min_dbm < params_.max_dbm, "signal range is empty");
}

double GaussMarkovSignalModel::signal_dbm(std::int64_t slot) {
  require(slot >= 0, "slot must be non-negative");
  if (slot < next_slot_ - 1) {
    throw Error("GaussMarkovSignalModel queried out of order");
  }
  if (slot == next_slot_ - 1) return value_;
  for (; next_slot_ <= slot; ++next_slot_) {
    const double noise = rng_.gaussian(0.0, params_.noise_stddev_db);
    value_ = params_.mean_dbm + params_.rho * (value_ - params_.mean_dbm) + noise;
    value_ = std::clamp(value_, params_.min_dbm, params_.max_dbm);
  }
  return value_;
}

}  // namespace jstream
