// Per-user received-signal-strength (RSSI) processes.
//
// The paper's evaluation (Section VI) drives each user with a sine wave over
// [-110, -50] dBm plus white Gaussian noise and a per-user phase shift. The
// library additionally provides constant, trace-driven, and Gauss-Markov
// models so scenarios beyond the paper's can be expressed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace jstream {

/// Default clamping range for RSSI values, matching the paper's sweep.
inline constexpr double kMinSignalDbm = -110.0;
inline constexpr double kMaxSignalDbm = -50.0;

/// A signal model produces sig_i(n), the RSSI of one user in slot n
/// (Definition 2). Implementations must be deterministic given their
/// construction inputs.
class SignalModel {
 public:
  virtual ~SignalModel() = default;

  /// RSSI in dBm for slot `slot` (0-based).
  [[nodiscard]] virtual double signal_dbm(std::int64_t slot) = 0;
};

/// Time-invariant signal; useful in unit tests and controlled experiments.
class ConstantSignalModel final : public SignalModel {
 public:
  explicit ConstantSignalModel(double dbm);
  [[nodiscard]] double signal_dbm(std::int64_t slot) override;

 private:
  double dbm_;
};

/// Parameters of the paper's sinusoidal RSSI process.
struct SineSignalParams {
  double min_dbm = kMinSignalDbm;   ///< trough of the sine
  double max_dbm = kMaxSignalDbm;   ///< crest of the sine
  double period_slots = 600.0;      ///< full cycle length (slots); paper unspecified
  double phase_radians = 0.0;       ///< per-user phase shift
  double noise_stddev_db = 4.0;     ///< AWGN on top of the sine (see DESIGN.md)
};

/// Sine + white Gaussian noise, clamped to [min_dbm, max_dbm] (Section VI).
class SineSignalModel final : public SignalModel {
 public:
  SineSignalModel(SineSignalParams params, Rng rng);
  [[nodiscard]] double signal_dbm(std::int64_t slot) override;

  [[nodiscard]] const SineSignalParams& params() const noexcept { return params_; }

 private:
  SineSignalParams params_;
  Rng rng_;
  std::int64_t next_slot_ = 0;
  double last_value_ = 0.0;
};

/// Replays a recorded RSSI trace, repeating it when the simulation outlives
/// the trace (stand-in for real signal measurements, e.g. Bartendr-style logs).
class TraceSignalModel final : public SignalModel {
 public:
  explicit TraceSignalModel(std::vector<double> trace_dbm);
  [[nodiscard]] double signal_dbm(std::int64_t slot) override;

 private:
  std::vector<double> trace_;
};

/// First-order Gauss-Markov (AR(1)) RSSI process: captures channel coherence
/// without the sine's periodic structure. sig(n+1) = mean + rho*(sig(n)-mean) + w.
class GaussMarkovSignalModel final : public SignalModel {
 public:
  struct Params {
    double mean_dbm = -80.0;
    double rho = 0.95;          ///< correlation between consecutive slots, [0,1)
    double noise_stddev_db = 3.0;
    double min_dbm = kMinSignalDbm;
    double max_dbm = kMaxSignalDbm;
  };

  GaussMarkovSignalModel(Params params, Rng rng);
  [[nodiscard]] double signal_dbm(std::int64_t slot) override;

 private:
  Params params_;
  Rng rng_;
  std::int64_t next_slot_ = 0;
  double value_;
};

/// Factory signature used by scenario builders: user index -> signal model.
using SignalModelFactory =
    std::unique_ptr<SignalModel> (*)(std::size_t user, const Rng& scenario_rng);

}  // namespace jstream
