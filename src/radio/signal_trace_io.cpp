#include "radio/signal_trace_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/units.hpp"

namespace jstream {

std::vector<double> load_signal_trace(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open signal trace: " + path);
  std::vector<double> trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Trim whitespace; skip blanks and comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(line.substr(first), &consumed);
    } catch (const std::exception&) {
      throw Error(path + ":" + std::to_string(line_number) + ": not a number: " + line);
    }
    const auto rest = line.find_first_not_of(" \t\r", first + consumed);
    require(rest == std::string::npos,
            path + ":" + std::to_string(line_number) + ": trailing garbage: " + line);
    trace.push_back(value);
  }
  require(!trace.empty(), "signal trace is empty: " + path);
  return trace;
}

void save_signal_trace(const std::string& path, const std::vector<double>& trace_dbm) {
  require(!trace_dbm.empty(), "refusing to write an empty trace");
  std::ofstream out(path);
  require(out.good(), "cannot open signal trace for writing: " + path);
  out << "# jstream RSSI trace, one dBm sample per slot\n";
  out.precision(17);
  for (double value : trace_dbm) out << value << '\n';
  require(out.good(), "trace write failed: " + path);
}

std::vector<double> record_signal_trace(SignalModel& model, std::int64_t slots) {
  require(slots > 0, "need at least one slot to record");
  std::vector<double> trace;
  trace.reserve(checked_size(slots));
  for (std::int64_t slot = 0; slot < slots; ++slot) {
    trace.push_back(model.signal_dbm(slot));
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Binary trace-set files.
// ---------------------------------------------------------------------------

namespace {

// On-disk header, 64 bytes, little-endian fields at fixed offsets. The
// payload (three users x slots double matrices: signal, throughput, energy,
// each slot-major) starts at byte 64, which keeps it 8-byte aligned inside
// the page-aligned mapping.
constexpr char kTraceSetMagic[8] = {'J', 'S', 'T', 'R', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kHeaderChecksumOffset = 56;

struct HeaderFields {
  std::uint32_t version = 0;
  std::uint32_t endian_tag = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t users = 0;
  std::int64_t slots = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
  std::uint64_t header_checksum = 0;
};

template <typename Field>
void put_field(unsigned char* header, std::size_t offset, Field value) {
  std::memcpy(header + offset, &value, sizeof(value));
}

template <typename Field>
void get_field(const unsigned char* header, std::size_t offset, Field& value) {
  std::memcpy(&value, header + offset, sizeof(value));
}

void encode_header(unsigned char (&header)[kHeaderBytes], const HeaderFields& f) {
  std::memset(header, 0, sizeof(header));
  std::memcpy(header, kTraceSetMagic, sizeof(kTraceSetMagic));
  put_field(header, 8, f.version);
  put_field(header, 12, f.endian_tag);
  put_field(header, 16, f.fingerprint);
  put_field(header, 24, f.users);
  put_field(header, 32, f.slots);
  put_field(header, 40, f.payload_bytes);
  put_field(header, 48, f.payload_checksum);
  put_field(header, kHeaderChecksumOffset, xxh64(header, kHeaderChecksumOffset));
}

/// Validates everything a 64-byte header can answer for on its own: magic,
/// schema version, endianness, self-checksum, and dimension/payload-size
/// consistency against the actual file size. Throws TraceFileError.
HeaderFields validate_header(const std::string& path,
                             const unsigned char (&header)[kHeaderBytes],
                             std::uint64_t file_bytes) {
  const auto reject = [&](const char* why) -> void {
    throw TraceFileError(path + ": " + why);
  };
  if (std::memcmp(header, kTraceSetMagic, sizeof(kTraceSetMagic)) != 0) {
    reject("not a jstream trace-set file (bad magic)");
  }
  HeaderFields f;
  get_field(header, 8, f.version);
  get_field(header, 12, f.endian_tag);
  get_field(header, 16, f.fingerprint);
  get_field(header, 24, f.users);
  get_field(header, 32, f.slots);
  get_field(header, 40, f.payload_bytes);
  get_field(header, 48, f.payload_checksum);
  get_field(header, kHeaderChecksumOffset, f.header_checksum);
  if (f.header_checksum != xxh64(header, kHeaderChecksumOffset)) {
    reject("header checksum mismatch (corrupt or truncated header)");
  }
  if (f.version != kTraceSetFileVersion) reject("unsupported schema version");
  if (f.endian_tag != kEndianTag) reject("foreign endianness");
  if (f.users == 0 || f.slots <= 0) reject("degenerate dimensions");
  const std::uint64_t expected_payload =
      3 * sizeof(double) * f.users * static_cast<std::uint64_t>(f.slots);
  if (f.payload_bytes != expected_payload) {
    reject("payload size disagrees with dimensions");
  }
  if (file_bytes != kHeaderBytes + f.payload_bytes) {
    reject("file size disagrees with header (truncated or padded)");
  }
  return f;
}

std::uint64_t file_size_or_throw(const std::string& path, int fd) {
  struct stat st{};
  require(::fstat(fd, &st) == 0, "cannot stat trace-set file: " + path);
  require(st.st_size >= 0, "negative trace-set file size: " + path);
  return static_cast<std::uint64_t>(st.st_size);
}

/// RAII mmap of a whole file; releases on destruction unless adopted.
class FileMapping {
 public:
  FileMapping(const std::string& path, int fd, std::size_t bytes) : bytes_(bytes) {
    void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    require(map != MAP_FAILED, "mmap failed for trace-set file: " + path);
    base_ = map;
  }
  ~FileMapping() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
  }
  FileMapping(const FileMapping&) = delete;
  FileMapping& operator=(const FileMapping&) = delete;

  [[nodiscard]] const unsigned char* bytes() const noexcept {
    return static_cast<const unsigned char*>(base_);
  }

  /// Transfers ownership into a shared keepalive handle.
  [[nodiscard]] std::shared_ptr<const void> release() noexcept {
    void* base = base_;
    const std::size_t bytes = bytes_;
    base_ = nullptr;
    return {base, [bytes](void* p) { ::munmap(p, bytes); }};
  }

 private:
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Process-unique temp suffix counter (concurrent spills of different keys —
/// or even the same key from racing shards — must never share a temp file).
std::atomic<std::uint64_t> g_temp_serial{0};

/// Closes the descriptor on every exit path (mmap keeps the mapping alive
/// independently of the fd, so closing right after FileMapping is correct).
class FdGuard {
 public:
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_;
};

}  // namespace

void save_trace_set(const std::string& path, const SignalTraceSet& set,
                    std::uint64_t fingerprint) {
  require(set.link_derived(), "refusing to persist an underived trace set");
  const std::size_t cells = set.users() * checked_size(set.slots());
  const std::size_t matrix_bytes = cells * sizeof(double);

  HeaderFields f;
  f.version = kTraceSetFileVersion;
  f.endian_tag = kEndianTag;
  f.fingerprint = fingerprint;
  f.users = set.users();
  f.slots = set.slots();
  f.payload_bytes = 3 * matrix_bytes;
  std::uint64_t checksum = xxh64(set.signal_data(), matrix_bytes);
  checksum = xxh64(set.throughput_data(), matrix_bytes, checksum);
  checksum = xxh64(set.energy_data(), matrix_bytes, checksum);
  f.payload_checksum = checksum;
  unsigned char header[kHeaderBytes];
  encode_header(header, f);

  // Atomic-by-rename: a crash or a racing reader never observes a partial
  // file, and concurrent writers of the same key each complete a private temp
  // file before renaming (last rename wins; the payloads are bit-identical by
  // the key's determinism guarantee, so the winner is irrelevant).
  const std::string temp = path + ".tmp." + std::to_string(::getpid()) + "." +
                           std::to_string(g_temp_serial.fetch_add(1));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    require(out.good(), "cannot open trace-set temp file for writing: " + temp);
    const auto write_bytes = [&](const void* data, std::size_t bytes) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(bytes));
    };
    write_bytes(header, sizeof(header));
    write_bytes(set.signal_data(), matrix_bytes);
    write_bytes(set.throughput_data(), matrix_bytes);
    write_bytes(set.energy_data(), matrix_bytes);
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(temp.c_str());
      throw Error("trace-set write failed: " + temp);
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw Error("cannot move trace-set into place: " + path);
  }
}

TraceSetFileInfo probe_trace_set(const std::string& path) {
  const FdGuard fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  require(fd.fd() >= 0, "cannot open trace-set file: " + path);
  const std::uint64_t file_bytes = file_size_or_throw(path, fd.fd());
  unsigned char header[kHeaderBytes];
  if (file_bytes < kHeaderBytes ||
      ::pread(fd.fd(), header, kHeaderBytes, 0) !=
          static_cast<ssize_t>(kHeaderBytes)) {
    throw TraceFileError(path + ": shorter than a trace-set header");
  }
  const HeaderFields f = validate_header(path, header, file_bytes);
  TraceSetFileInfo info;
  info.version = f.version;
  info.fingerprint = f.fingerprint;
  info.users = f.users;
  info.slots = f.slots;
  info.payload_bytes = f.payload_bytes;
  return info;
}

std::shared_ptr<const SignalTraceSet> load_trace_set(
    const std::string& path, std::uint64_t expected_fingerprint) {
  const FdGuard fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  require(fd.fd() >= 0, "cannot open trace-set file: " + path);
  const std::uint64_t file_bytes = file_size_or_throw(path, fd.fd());
  if (file_bytes < kHeaderBytes) {
    throw TraceFileError(path + ": shorter than a trace-set header");
  }
  FileMapping mapping(path, fd.fd(), file_bytes);

  unsigned char header[kHeaderBytes];
  std::memcpy(header, mapping.bytes(), kHeaderBytes);
  const HeaderFields f = validate_header(path, header, file_bytes);
  if (f.fingerprint != expected_fingerprint) {
    throw TraceFileError(path + ": trace-key fingerprint mismatch");
  }
  const unsigned char* payload = mapping.bytes() + kHeaderBytes;
  const std::size_t matrix_bytes = f.payload_bytes / 3;
  std::uint64_t checksum = xxh64(payload, matrix_bytes);
  checksum = xxh64(payload + matrix_bytes, matrix_bytes, checksum);
  checksum = xxh64(payload + 2 * matrix_bytes, matrix_bytes, checksum);
  if (checksum != f.payload_checksum) {
    throw TraceFileError(path + ": payload checksum mismatch (corrupt file)");
  }

  const auto matrix = [&](std::size_t which) {
    return static_cast<const double*>(
        static_cast<const void*>(payload + which * matrix_bytes));
  };
  const double* signal = matrix(0);
  const double* throughput = matrix(1);
  const double* energy = matrix(2);
  return SignalTraceSet::adopt_mapping(f.users, f.slots, mapping.release(),
                                       signal, throughput, energy);
}

}  // namespace jstream
