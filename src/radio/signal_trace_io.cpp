#include "radio/signal_trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

std::vector<double> load_signal_trace(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open signal trace: " + path);
  std::vector<double> trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Trim whitespace; skip blanks and comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(line.substr(first), &consumed);
    } catch (const std::exception&) {
      throw Error(path + ":" + std::to_string(line_number) + ": not a number: " + line);
    }
    const auto rest = line.find_first_not_of(" \t\r", first + consumed);
    require(rest == std::string::npos,
            path + ":" + std::to_string(line_number) + ": trailing garbage: " + line);
    trace.push_back(value);
  }
  require(!trace.empty(), "signal trace is empty: " + path);
  return trace;
}

void save_signal_trace(const std::string& path, const std::vector<double>& trace_dbm) {
  require(!trace_dbm.empty(), "refusing to write an empty trace");
  std::ofstream out(path);
  require(out.good(), "cannot open signal trace for writing: " + path);
  out << "# jstream RSSI trace, one dBm sample per slot\n";
  out.precision(17);
  for (double value : trace_dbm) out << value << '\n';
  require(out.good(), "trace write failed: " + path);
}

std::vector<double> record_signal_trace(SignalModel& model, std::int64_t slots) {
  require(slots > 0, "need at least one slot to record");
  std::vector<double> trace;
  trace.reserve(checked_size(slots));
  for (std::int64_t slot = 0; slot < slots; ++slot) {
    trace.push_back(model.signal_dbm(slot));
  }
  return trace;
}

}  // namespace jstream
