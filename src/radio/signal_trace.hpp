// Batched signal-trace substrate for the campaign engine.
//
// A SignalTraceSet holds the complete channel trajectory of a scenario —
// sig_i(n) for every user i and slot n — plus the derived Definition 3/4
// link quantities v(sig) and P(sig), as three contiguous slot-major
// structure-of-arrays matrices (index = slot * users + user). Every figure
// bench compares several schedulers over the *same* scenario and seeds, so
// the trajectory is generated once, shared immutably
// (std::shared_ptr<const SignalTraceSet>) across all schedulers and
// replications, and read back as plain array loads on the per-slot hot path
// instead of per-slot virtual SignalModel calls and repeated link-fit
// evaluations. Generation walks the same SignalModel objects slot-by-slot in
// order, so batched values are bit-identical to the incremental path (the
// RNG stream order is preserved exactly).
#pragma once

#include <cstdint>
#include <vector>

#include "radio/link_model.hpp"
#include "radio/signal_model.hpp"
#include "common/units.hpp"

namespace jstream {

/// Immutable-after-build SoA matrix set: users x slots RSSI plus derived
/// throughput/power rows. Memory footprint: 8 * users * slots bytes per
/// matrix, three matrices per set (see total_bytes / docs/PERFORMANCE.md).
class SignalTraceSet {
 public:
  /// Allocates storage for `users` rows over `slots` slots (both > 0).
  SignalTraceSet(std::size_t users, std::int64_t slots);

  /// Fills user `user`'s row by querying `model` for slots 0..slots-1 in
  /// order — the exact call sequence the incremental per-slot path performs,
  /// so the stored values are bit-identical to slot-by-slot signal_dbm calls
  /// on an identically-seeded model.
  void fill_user(std::size_t user, SignalModel& model);

  /// Evaluates the Definition 3/4 fits over the whole signal matrix into the
  /// derived throughput (KB/s) and energy (mJ/KB) matrices. Must run after
  /// every row is filled; required before the set can back a simulation.
  void derive_link(const LinkModel& link);

  [[nodiscard]] std::size_t users() const noexcept { return users_; }
  [[nodiscard]] std::int64_t slots() const noexcept { return slots_; }
  [[nodiscard]] bool link_derived() const noexcept { return link_derived_; }

  /// Flat slot-major index of (user, slot); valid for slot in [0, slots).
  [[nodiscard]] std::size_t index(std::size_t user, std::int64_t slot) const noexcept {
    return checked_size(slot) * users_ + user;
  }

  /// Bounds-checked element accessors (tests, diagnostics).
  [[nodiscard]] double signal_dbm(std::size_t user, std::int64_t slot) const;
  [[nodiscard]] double throughput_kbps(std::size_t user, std::int64_t slot) const;
  [[nodiscard]] double energy_per_kb(std::size_t user, std::int64_t slot) const;

  /// Raw SoA pointers for the hot path (InfoCollector); index with index().
  [[nodiscard]] const double* signal_data() const noexcept { return signal_.data(); }
  [[nodiscard]] const double* throughput_data() const noexcept {
    return throughput_.data();
  }
  [[nodiscard]] const double* energy_data() const noexcept { return energy_.data(); }

  /// Resident bytes of the three matrices (3 * 8 * users * slots).
  [[nodiscard]] std::size_t total_bytes() const noexcept;

  /// Estimate of total_bytes for a set of the given dimensions, usable
  /// before construction (cache budget accounting).
  [[nodiscard]] static std::size_t estimate_bytes(std::size_t users,
                                                  std::int64_t slots) noexcept;

 private:
  std::size_t users_;
  std::int64_t slots_;
  std::vector<double> signal_;      ///< sig_i(n), dBm
  std::vector<double> throughput_;  ///< v(sig_i(n)), KB/s
  std::vector<double> energy_;      ///< P(sig_i(n)), mJ/KB
  bool link_derived_ = false;
};

}  // namespace jstream
