// Batched signal-trace substrate for the campaign engine.
//
// A SignalTraceSet holds the complete channel trajectory of a scenario —
// sig_i(n) for every user i and slot n — plus the derived Definition 3/4
// link quantities v(sig) and P(sig), as three contiguous slot-major
// structure-of-arrays matrices (index = slot * users + user). Every figure
// bench compares several schedulers over the *same* scenario and seeds, so
// the trajectory is generated once, shared immutably
// (std::shared_ptr<const SignalTraceSet>) across all schedulers and
// replications, and read back as plain array loads on the per-slot hot path
// instead of per-slot virtual SignalModel calls and repeated link-fit
// evaluations. Generation walks the same SignalModel objects slot-by-slot in
// order, so batched values are bit-identical to the incremental path (the
// RNG stream order is preserved exactly).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "radio/link_model.hpp"
#include "radio/signal_model.hpp"
#include "common/units.hpp"

namespace jstream {

/// Immutable-after-build SoA matrix set: users x slots RSSI plus derived
/// throughput/power rows. Memory footprint: 8 * users * slots bytes per
/// matrix, three matrices per set (see total_bytes / docs/PERFORMANCE.md).
///
/// Two storage modes share one read interface:
///  - owning (the constructor): the three matrices live in vectors filled by
///    fill_user / derive_link — the generation path;
///  - mapped (adopt_mapping): the matrices alias an external read-only block,
///    typically a memory-mapped trace file from the persistent tier
///    (signal_trace_io). A mapped set is born fully derived and immutable;
///    the keepalive shared_ptr pins the mapping for the set's lifetime, and
///    the hot collect path reads the same signal_data()/throughput_data()/
///    energy_data() pointers either way — promotion from disk is zero-copy.
class SignalTraceSet {
 public:
  /// Allocates storage for `users` rows over `slots` slots (both > 0).
  SignalTraceSet(std::size_t users, std::int64_t slots);

  /// Wraps three externally-stored slot-major matrices (each users * slots
  /// doubles, 8-byte aligned) without copying. `keepalive` owns the backing
  /// memory (e.g. an mmap region) and is held until the set is destroyed.
  /// The result reports link_derived() — mapped payloads store the derived
  /// matrices, not just the RSSI — and rejects fill_user/derive_link.
  [[nodiscard]] static std::shared_ptr<const SignalTraceSet> adopt_mapping(
      std::size_t users, std::int64_t slots, std::shared_ptr<const void> keepalive,
      const double* signal, const double* throughput, const double* energy);

  /// Fills user `user`'s row by querying `model` for slots 0..slots-1 in
  /// order — the exact call sequence the incremental per-slot path performs,
  /// so the stored values are bit-identical to slot-by-slot signal_dbm calls
  /// on an identically-seeded model.
  void fill_user(std::size_t user, SignalModel& model);

  /// Evaluates the Definition 3/4 fits over the whole signal matrix into the
  /// derived throughput (KB/s) and energy (mJ/KB) matrices. Must run after
  /// every row is filled; required before the set can back a simulation.
  void derive_link(const LinkModel& link);

  [[nodiscard]] std::size_t users() const noexcept { return users_; }
  [[nodiscard]] std::int64_t slots() const noexcept { return slots_; }
  [[nodiscard]] bool link_derived() const noexcept { return link_derived_; }
  /// True when the matrices alias an external mapping (adopt_mapping).
  [[nodiscard]] bool mapped() const noexcept { return keepalive_ != nullptr; }

  /// Flat slot-major index of (user, slot); valid for slot in [0, slots).
  [[nodiscard]] std::size_t index(std::size_t user, std::int64_t slot) const noexcept {
    return checked_size(slot) * users_ + user;
  }

  /// Bounds-checked element accessors (tests, diagnostics).
  [[nodiscard]] double signal_dbm(std::size_t user, std::int64_t slot) const;
  [[nodiscard]] double throughput_kbps(std::size_t user, std::int64_t slot) const;
  [[nodiscard]] double energy_per_kb(std::size_t user, std::int64_t slot) const;

  /// Raw SoA pointers for the hot path (InfoCollector); index with index().
  /// Point into the owning vectors or the adopted mapping — callers cannot
  /// tell (and must not care) which.
  [[nodiscard]] const double* signal_data() const noexcept { return signal_view_; }
  [[nodiscard]] const double* throughput_data() const noexcept {
    return throughput_view_;
  }
  [[nodiscard]] const double* energy_data() const noexcept { return energy_view_; }

  /// Resident bytes of the three matrices (3 * 8 * users * slots). A mapped
  /// set reports the same figure: its pages are file-backed and reclaimable,
  /// but budget accounting treats both modes alike so eviction order does not
  /// depend on where an entry came from.
  [[nodiscard]] std::size_t total_bytes() const noexcept;

  /// Estimate of total_bytes for a set of the given dimensions, usable
  /// before construction (cache budget accounting).
  [[nodiscard]] static std::size_t estimate_bytes(std::size_t users,
                                                  std::int64_t slots) noexcept;

 private:
  SignalTraceSet() = default;  // adopt_mapping's blank slate

  std::size_t users_ = 0;
  std::int64_t slots_ = 0;
  std::vector<double> signal_;      ///< sig_i(n), dBm (owning mode)
  std::vector<double> throughput_;  ///< v(sig_i(n)), KB/s (owning mode)
  std::vector<double> energy_;      ///< P(sig_i(n)), mJ/KB (owning mode)
  const double* signal_view_ = nullptr;
  const double* throughput_view_ = nullptr;
  const double* energy_view_ = nullptr;
  std::shared_ptr<const void> keepalive_;  ///< mapping pin (mapped mode only)
  bool link_derived_ = false;
};

}  // namespace jstream
