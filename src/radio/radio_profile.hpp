// Radio resource control (RRC) parameter sets.
//
// 3G devices demote CELL_DCH -> CELL_FACH after an inactivity timer T1 and
// CELL_FACH -> IDLE after a further T2 (Section III-C). LTE has a single
// RRC_CONNECTED -> RRC_IDLE demotion. Both are represented with one profile
// type: LTE uses t2 = 0 and an unused FACH power.
#pragma once

#include <string>

namespace jstream {

/// Which RRC topology the profile describes.
enum class RrcKind {
  kThreeState3G,  ///< CELL_DCH / CELL_FACH / IDLE
  kTwoStateLte,   ///< RRC_CONNECTED / RRC_IDLE
};

/// Inactivity-timer and state-power parameters of one radio technology.
struct RadioProfile {
  RrcKind kind = RrcKind::kThreeState3G;
  std::string name = "3g";
  double p_dch_mw = 732.83;   ///< high-power state (CELL_DCH / RRC_CONNECTED)
  double p_fach_mw = 388.88;  ///< medium-power state (CELL_FACH); unused for LTE
  double t1_s = 3.29;         ///< DCH->FACH (or CONNECTED->IDLE) inactivity timer
  double t2_s = 4.02;         ///< FACH->IDLE inactivity timer; 0 for LTE

  /// Tail accounting semantics. false (default) follows the paper's Eq. 5
  /// exactly: a slot is either a transmission slot (Eq. 3 energy only) or an
  /// idle slot (Eq. 4 tail increment only). true applies Eq. 4 in continuous
  /// time: a transmitting slot also pays the DCH tail for the part of the
  /// slot after the transfer's d/v active seconds (more physical; exposed as
  /// an ablation, see bench_ablation_rrc).
  bool continuous_tail = false;

  /// Total tail duration after the last transmission.
  [[nodiscard]] double tail_duration_s() const noexcept { return t1_s + t2_s; }

  /// Maximum tail energy of one idle period (Eq. 4 with t -> infinity), mJ.
  [[nodiscard]] double max_tail_energy_mj() const noexcept {
    return p_dch_mw * t1_s + p_fach_mw * t2_s;
  }

  /// Average power over the tail window, mW: the "tail energy in a slot" of
  /// Eq. 12's P_tail term (a slot somewhere inside the tail costs this much
  /// in expectation). Zero when there is no tail.
  [[nodiscard]] double mean_tail_power_mw() const noexcept {
    const double duration = tail_duration_s();
    return duration > 0.0 ? max_tail_energy_mj() / duration : 0.0;
  }
};

/// The paper's 3G parameters (Section VI, from PerES [29] / [19]):
/// P_DCH = 732.83 mW, P_FACH = 388.88 mW, T1 = 3.29 s, T2 = 4.02 s.
[[nodiscard]] RadioProfile paper_3g_profile();

/// An LTE profile following the measurements of Huang et al. [11]:
/// RRC_CONNECTED tail power ~1060 mW with an ~11.5 s inactivity timer.
[[nodiscard]] RadioProfile lte_profile();

/// Validates a profile (non-negative powers/timers); throws jstream::Error.
void validate(const RadioProfile& profile);

}  // namespace jstream
