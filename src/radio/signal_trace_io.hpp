// Loading, saving, and recording RSSI traces.
//
// Field measurements (e.g. Bartendr-style drive logs) arrive as one dBm
// sample per slot; these helpers move them between files, vectors, and
// signal models so trace-driven scenarios (SignalKind::kTrace) can replay
// them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "radio/signal_model.hpp"

namespace jstream {

/// Reads a trace file: one dBm value per line; blank lines and lines starting
/// with '#' are skipped. Throws jstream::Error on I/O or parse failure, or if
/// the file holds no samples.
[[nodiscard]] std::vector<double> load_signal_trace(const std::string& path);

/// Writes one dBm value per line (full round-trip precision).
void save_signal_trace(const std::string& path, const std::vector<double>& trace_dbm);

/// Samples `slots` values from a signal model (e.g. to turn a synthetic
/// process into a replayable trace).
[[nodiscard]] std::vector<double> record_signal_trace(SignalModel& model,
                                                      std::int64_t slots);

}  // namespace jstream
