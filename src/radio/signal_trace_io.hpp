// Loading, saving, and recording RSSI traces — and the binary trace-set
// format behind the persistent trace tier.
//
// Two unrelated-looking jobs share this TU because both are "signal data on
// disk":
//
//  1. Text RSSI traces. Field measurements (e.g. Bartendr-style drive logs)
//     arrive as one dBm sample per slot; load/save/record move them between
//     files, vectors, and signal models so trace-driven scenarios
//     (SignalKind::kTrace) can replay them.
//
//  2. Binary SignalTraceSet files (`.jst`). The campaign engine's persistent
//     tier (src/sim/trace_store) spills evicted channel matrices here and
//     promotes them back by memory-mapping the file — the payload is the
//     exact slot-major double layout SignalTraceSet serves to the hot collect
//     path, so a promoted set reads zero-copy straight out of the page
//     cache. The format is versioned and checksummed: a 64-byte header pins
//     magic, schema version, an endianness tag, the trace-key fingerprint,
//     the matrix dimensions, and XXH64 checksums of header and payload.
//     Loaders verify all of it and throw TraceFileError on any mismatch or
//     truncation; the store turns that into "regenerate", never a crash.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "radio/signal_model.hpp"
#include "radio/signal_trace.hpp"

namespace jstream {

/// Reads a trace file: one dBm value per line; blank lines and lines starting
/// with '#' are skipped. Throws jstream::Error on I/O or parse failure, or if
/// the file holds no samples.
[[nodiscard]] std::vector<double> load_signal_trace(const std::string& path);

/// Writes one dBm value per line (full round-trip precision).
void save_signal_trace(const std::string& path, const std::vector<double>& trace_dbm);

/// Samples `slots` values from a signal model (e.g. to turn a synthetic
/// process into a replayable trace).
[[nodiscard]] std::vector<double> record_signal_trace(SignalModel& model,
                                                      std::int64_t slots);

// ---------------------------------------------------------------------------
// Binary trace-set files (persistent trace tier).
// ---------------------------------------------------------------------------

/// Raised when a trace-set file fails validation (bad magic, foreign schema
/// version or endianness, fingerprint mismatch, truncation, checksum
/// failure). Distinct from Error so the store can catch exactly "this file is
/// unusable" and fall back to regeneration while real I/O misconfiguration
/// (e.g. an unwritable directory) still surfaces.
class TraceFileError : public Error {
 public:
  explicit TraceFileError(const std::string& what) : Error(what) {}
};

/// Schema version this build writes and accepts.
inline constexpr std::uint32_t kTraceSetFileVersion = 1;

/// Header fields of a validated trace-set file (probe_trace_set).
struct TraceSetFileInfo {
  std::uint32_t version = 0;
  std::uint64_t fingerprint = 0;  ///< trace-key fingerprint the payload answers to
  std::size_t users = 0;
  std::int64_t slots = 0;
  std::size_t payload_bytes = 0;  ///< 3 matrices * 8 * users * slots
};

/// Writes `set` (link matrices derived) as a binary trace-set file stamped
/// with `fingerprint`. The write is atomic-by-rename: the payload lands in a
/// process-unique temp file first, so concurrent writers of the same key and
/// readers racing a writer only ever observe complete files. Throws Error on
/// I/O failure.
void save_trace_set(const std::string& path, const SignalTraceSet& set,
                    std::uint64_t fingerprint);

/// Validates the header of a trace-set file without touching the payload.
/// Throws TraceFileError on any mismatch (see class comment), Error when the
/// file cannot be opened.
[[nodiscard]] TraceSetFileInfo probe_trace_set(const std::string& path);

/// Memory-maps a trace-set file and wraps it as a zero-copy SignalTraceSet
/// (SignalTraceSet::adopt_mapping; the mapping lives as long as the set).
/// Verifies header + payload checksum before handing the data out, and
/// requires the stored fingerprint to equal `expected_fingerprint` — a store
/// directory shared by many campaigns must never serve the wrong key's
/// matrices because of a filename collision. Throws TraceFileError on any
/// validation failure.
[[nodiscard]] std::shared_ptr<const SignalTraceSet> load_trace_set(
    const std::string& path, std::uint64_t expected_fingerprint);

}  // namespace jstream
