// RRC state machine and tail-energy accounting (Section III-C).
//
// After a transmission the radio stays in the high-power state until the T1
// inactivity timer fires, drops to the medium-power state until T2 fires, and
// only then reaches IDLE. Eq. 4 gives the cumulative energy burned during an
// idle gap of length t since the last transmission ended:
//
//   Etail(t) = Pd*t                          0 <= t < T1
//            = Pd*T1 + Pf*(t - T1)           T1 <= t < T1 + T2
//            = Pd*T1 + Pf*T2                 t >= T1 + T2
//
// Two accounting semantics are supported (RadioProfile::continuous_tail):
// the paper's Eq. 5 buckets every slot as either transmission (Eq. 3 only) or
// tail (Eq. 4 increment only); the continuous-time variant additionally
// charges the DCH tail for the post-transfer residue of transmitting slots
// (tau - d/v seconds), which is the more physical reading and is evaluated as
// an ablation.
#pragma once

#include <cstdint>

#include "radio/radio_profile.hpp"

namespace jstream {

/// RRC power states (3G names; LTE maps CONNECTED->kDch, IDLE->kIdle).
enum class RrcState { kDch, kFach, kIdle };

/// Closed-form cumulative tail energy (mJ) of an idle gap of length `t_s`
/// seconds since the last transmission ended (Eq. 4).
[[nodiscard]] double tail_energy_mj(const RadioProfile& profile, double t_s);

/// Tail energy (mJ) accrued during one slot of length `tau_s` for a radio
/// whose last transmission ended `idle_start_s` before the slot begins:
/// Etail(idle_start + tau) - Etail(idle_start).
[[nodiscard]] double slot_tail_energy_mj(const RadioProfile& profile,
                                         double idle_start_s, double tau_s);

/// Per-user RRC simulator advanced once per slot.
///
/// Transmission energy (Eq. 3) is accounted by the caller from the power
/// model; this machine accounts the Eq. 4 tail energy: both the idle residue
/// of transmitting slots (after the d/v active seconds) and whole idle slots.
class RrcStateMachine {
 public:
  /// A machine starts in IDLE with no tail to pay (nothing was transmitted
  /// yet, so there is no tail to decay from).
  explicit RrcStateMachine(RadioProfile profile);

  /// Advances one slot of length `tau_s` during which the radio actively
  /// transferred for `active_s` seconds (0 for an idle slot; the transfer is
  /// placed at the start of the slot). Returns the tail energy (mJ) burned
  /// during this slot; the caller accounts the transmission energy itself.
  double advance_slot(double active_s, double tau_s);

  /// Current state given the elapsed idle time.
  [[nodiscard]] RrcState state() const noexcept;

  /// Seconds since the last transmission ended.
  [[nodiscard]] double idle_time_s() const noexcept { return idle_s_; }

  /// True until the first transmission (no tail accrues in that period).
  [[nodiscard]] bool never_transmitted() const noexcept { return never_transmitted_; }

  [[nodiscard]] const RadioProfile& profile() const noexcept { return profile_; }

 private:
  RadioProfile profile_;
  double idle_s_ = 0.0;
  bool never_transmitted_ = true;
};

}  // namespace jstream
