#include "radio/link_model.hpp"

#include "common/error.hpp"

namespace jstream {

LinearThroughputModel::LinearThroughputModel(double slope, double intercept)
    : slope_(slope), intercept_(intercept) {
  require(slope_ > 0.0, "throughput slope must be positive");
}

double LinearThroughputModel::throughput_kbps(double signal_dbm) const {
  const double v = slope_ * signal_dbm + intercept_;
  require(v > 0.0, "throughput fit is non-positive at this signal strength");
  return v;
}

double LinearThroughputModel::signal_for_throughput(double kbps) const {
  return (kbps - intercept_) / slope_;
}

FittedPowerModel::FittedPowerModel(std::shared_ptr<const ThroughputModel> throughput,
                                   double offset, double scale)
    : throughput_(std::move(throughput)), offset_(offset), scale_(scale) {
  require(throughput_ != nullptr, "power model needs a throughput model");
  require(scale_ > 0.0, "power scale must be positive");
}

double FittedPowerModel::energy_per_kb(double signal_dbm) const {
  const double v = throughput_->throughput_kbps(signal_dbm);
  const double p = offset_ + scale_ / v;
  require(p > 0.0, "power fit is non-positive at this signal strength");
  return p;
}

double FittedPowerModel::full_rate_power_mw(double signal_dbm) const {
  const double v = throughput_->throughput_kbps(signal_dbm);
  return energy_per_kb(signal_dbm) * v;  // mJ/KB * KB/s = mJ/s = mW
}

LinkModel make_paper_link_model() {
  auto throughput = std::make_shared<const LinearThroughputModel>();
  auto power = std::make_shared<const FittedPowerModel>(throughput);
  return LinkModel{throughput, power};
}

}  // namespace jstream
