// Channel-quality to throughput/power mappings (Definitions 3 and 4).
//
// The paper fits both as functions of RSSI (Eq. 24, from the ENVI
// measurements [28]):
//
//   v(sig) = 65.8 * sig + 7567.0        [KB/s]   (sig in dBm)
//   P(sig) = -0.167 + 1560 / v(sig)     [mJ/KB]
//
// Both are exposed behind small interfaces so alternative fits (e.g. stepwise
// MCS tables) can be plugged in without touching schedulers.
#pragma once

#include <memory>

namespace jstream {

/// Definition 3: maximum data amount transmitted per second (KB/s) at a given
/// signal strength.
class ThroughputModel {
 public:
  virtual ~ThroughputModel() = default;
  /// Throughput in KB/s. Implementations must return a positive value over
  /// their declared signal range.
  [[nodiscard]] virtual double throughput_kbps(double signal_dbm) const = 0;
};

/// Definition 4: energy consumed per kilobyte (mJ/KB) at a given signal
/// strength.
class PowerModel {
 public:
  virtual ~PowerModel() = default;
  [[nodiscard]] virtual double energy_per_kb(double signal_dbm) const = 0;
};

/// Eq. 24 linear throughput fit.
class LinearThroughputModel final : public ThroughputModel {
 public:
  /// v(sig) = slope * sig + intercept; defaults are the paper's constants.
  explicit LinearThroughputModel(double slope = 65.8, double intercept = 7567.0);

  [[nodiscard]] double throughput_kbps(double signal_dbm) const override;

  /// Inverse map: the signal strength at which throughput equals `kbps`.
  /// Used by RTMA's Eq. 12 conversion.
  [[nodiscard]] double signal_for_throughput(double kbps) const;

  [[nodiscard]] double slope() const noexcept { return slope_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

 private:
  double slope_;
  double intercept_;
};

/// Eq. 24 per-KB power fit, parameterized on a throughput model:
/// P(sig) = offset + scale / v(sig).
class FittedPowerModel final : public PowerModel {
 public:
  FittedPowerModel(std::shared_ptr<const ThroughputModel> throughput,
                   double offset = -0.167, double scale = 1560.0);

  [[nodiscard]] double energy_per_kb(double signal_dbm) const override;

  /// Instantaneous radio power (mW) when transmitting at full rate:
  /// P(sig) * v(sig) = offset * v(sig) + scale.
  [[nodiscard]] double full_rate_power_mw(double signal_dbm) const;

 private:
  std::shared_ptr<const ThroughputModel> throughput_;
  double offset_;
  double scale_;
};

/// Bundles the two fits used by schedulers and the simulator.
struct LinkModel {
  std::shared_ptr<const ThroughputModel> throughput;
  std::shared_ptr<const PowerModel> power;
};

/// The paper's Eq. 24 link model.
[[nodiscard]] LinkModel make_paper_link_model();

}  // namespace jstream
