#include "radio/signal_trace.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

SignalTraceSet::SignalTraceSet(std::size_t users, std::int64_t slots)
    : users_(users), slots_(slots) {
  require(users > 0, "trace set needs at least one user");
  require(slots > 0, "trace set needs at least one slot");
  const std::size_t cells = users_ * checked_size(slots_);
  signal_.resize(cells);
  throughput_.resize(cells);
  energy_.resize(cells);
  signal_view_ = signal_.data();
  throughput_view_ = throughput_.data();
  energy_view_ = energy_.data();
}

std::shared_ptr<const SignalTraceSet> SignalTraceSet::adopt_mapping(
    std::size_t users, std::int64_t slots, std::shared_ptr<const void> keepalive,
    const double* signal, const double* throughput, const double* energy) {
  require(users > 0 && slots > 0, "mapped trace set needs positive dimensions");
  require(keepalive != nullptr, "mapped trace set needs a backing owner");
  require(signal != nullptr && throughput != nullptr && energy != nullptr,
          "mapped trace set needs all three matrices");
  auto set = std::shared_ptr<SignalTraceSet>(new SignalTraceSet());
  set->users_ = users;
  set->slots_ = slots;
  set->signal_view_ = signal;
  set->throughput_view_ = throughput;
  set->energy_view_ = energy;
  set->keepalive_ = std::move(keepalive);
  // Persisted payloads carry the derived matrices; a mapped set is complete.
  set->link_derived_ = true;
  return set;
}

void SignalTraceSet::fill_user(std::size_t user, SignalModel& model) {
  require(!mapped(), "mapped trace sets are immutable");
  require(user < users_, "trace user index out of range");
  // Strided slot-major writes: generation is one-time, reads are the hot
  // path, so the layout favours InfoCollector's per-slot row scans.
  for (std::int64_t slot = 0; slot < slots_; ++slot) {
    signal_[index(user, slot)] = model.signal_dbm(slot);
  }
}

void SignalTraceSet::derive_link(const LinkModel& link) {
  require(!mapped(), "mapped trace sets are immutable");
  require(link.throughput != nullptr && link.power != nullptr,
          "link model must be complete");
  const ThroughputModel& throughput = *link.throughput;
  const PowerModel& power = *link.power;
  for (std::size_t i = 0; i < signal_.size(); ++i) {
    throughput_[i] = throughput.throughput_kbps(signal_[i]);
    energy_[i] = power.energy_per_kb(signal_[i]);
  }
  link_derived_ = true;
}

double SignalTraceSet::signal_dbm(std::size_t user, std::int64_t slot) const {
  require(user < users_ && slot >= 0 && slot < slots_, "trace index out of range");
  return signal_view_[index(user, slot)];
}

double SignalTraceSet::throughput_kbps(std::size_t user, std::int64_t slot) const {
  require(user < users_ && slot >= 0 && slot < slots_, "trace index out of range");
  require(link_derived_, "link quantities not derived yet");
  return throughput_view_[index(user, slot)];
}

double SignalTraceSet::energy_per_kb(std::size_t user, std::int64_t slot) const {
  require(user < users_ && slot >= 0 && slot < slots_, "trace index out of range");
  require(link_derived_, "link quantities not derived yet");
  return energy_view_[index(user, slot)];
}

std::size_t SignalTraceSet::total_bytes() const noexcept {
  return estimate_bytes(users_, slots_);
}

std::size_t SignalTraceSet::estimate_bytes(std::size_t users,
                                           std::int64_t slots) noexcept {
  if (slots <= 0) return 0;
  return 3 * sizeof(double) * users * checked_size(slots);
}

}  // namespace jstream
