#include "radio/signal_trace.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

SignalTraceSet::SignalTraceSet(std::size_t users, std::int64_t slots)
    : users_(users), slots_(slots) {
  require(users > 0, "trace set needs at least one user");
  require(slots > 0, "trace set needs at least one slot");
  const std::size_t cells = users_ * checked_size(slots_);
  signal_.resize(cells);
  throughput_.resize(cells);
  energy_.resize(cells);
}

void SignalTraceSet::fill_user(std::size_t user, SignalModel& model) {
  require(user < users_, "trace user index out of range");
  // Strided slot-major writes: generation is one-time, reads are the hot
  // path, so the layout favours InfoCollector's per-slot row scans.
  for (std::int64_t slot = 0; slot < slots_; ++slot) {
    signal_[index(user, slot)] = model.signal_dbm(slot);
  }
}

void SignalTraceSet::derive_link(const LinkModel& link) {
  require(link.throughput != nullptr && link.power != nullptr,
          "link model must be complete");
  const ThroughputModel& throughput = *link.throughput;
  const PowerModel& power = *link.power;
  for (std::size_t i = 0; i < signal_.size(); ++i) {
    throughput_[i] = throughput.throughput_kbps(signal_[i]);
    energy_[i] = power.energy_per_kb(signal_[i]);
  }
  link_derived_ = true;
}

double SignalTraceSet::signal_dbm(std::size_t user, std::int64_t slot) const {
  require(user < users_ && slot >= 0 && slot < slots_, "trace index out of range");
  return signal_[index(user, slot)];
}

double SignalTraceSet::throughput_kbps(std::size_t user, std::int64_t slot) const {
  require(user < users_ && slot >= 0 && slot < slots_, "trace index out of range");
  require(link_derived_, "link quantities not derived yet");
  return throughput_[index(user, slot)];
}

double SignalTraceSet::energy_per_kb(std::size_t user, std::int64_t slot) const {
  require(user < users_ && slot >= 0 && slot < slots_, "trace index out of range");
  require(link_derived_, "link quantities not derived yet");
  return energy_[index(user, slot)];
}

std::size_t SignalTraceSet::total_bytes() const noexcept {
  return (signal_.size() + throughput_.size() + energy_.size()) * sizeof(double);
}

std::size_t SignalTraceSet::estimate_bytes(std::size_t users,
                                           std::int64_t slots) noexcept {
  if (slots <= 0) return 0;
  return 3 * sizeof(double) * users * checked_size(slots);
}

}  // namespace jstream
