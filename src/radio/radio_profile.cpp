#include "radio/radio_profile.hpp"

#include "common/error.hpp"

namespace jstream {

RadioProfile paper_3g_profile() {
  RadioProfile p;
  p.kind = RrcKind::kThreeState3G;
  p.name = "3g";
  p.p_dch_mw = 732.83;
  p.p_fach_mw = 388.88;
  p.t1_s = 3.29;
  p.t2_s = 4.02;
  return p;
}

RadioProfile lte_profile() {
  RadioProfile p;
  p.kind = RrcKind::kTwoStateLte;
  p.name = "lte";
  p.p_dch_mw = 1060.0;  // RRC_CONNECTED tail power
  p.p_fach_mw = 0.0;    // no intermediate state
  p.t1_s = 11.5;        // CONNECTED -> IDLE inactivity timer
  p.t2_s = 0.0;
  return p;
}

void validate(const RadioProfile& profile) {
  require(profile.p_dch_mw >= 0.0, "P_DCH must be non-negative");
  require(profile.p_fach_mw >= 0.0, "P_FACH must be non-negative");
  require(profile.t1_s >= 0.0, "T1 must be non-negative");
  require(profile.t2_s >= 0.0, "T2 must be non-negative");
  if (profile.kind == RrcKind::kTwoStateLte) {
    require(profile.t2_s == 0.0, "LTE profile must have t2 == 0");
  }
}

}  // namespace jstream
