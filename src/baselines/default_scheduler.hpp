// The paper's baseline ("default strategy", Section VI-A): deliver as much as
// possible to each user to fully use the throughput. The serving order
// rotates across slots (a backlogged base station drains whoever is next in
// the round), so within any single slot a handful of users seize the whole
// capacity — exactly the per-slot unfairness Figures 2-3 illustrate — while
// across slots every radio is touched every few seconds and therefore never
// leaves the expensive DCH/FACH tail states.
#pragma once

#include <string>

#include "gateway/scheduler.hpp"

namespace jstream {

/// Greedy max-rate allocation in slot-rotating user order.
class DefaultScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "default"; }
  void reset(std::size_t users) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;
  void allocate_into(const SlotContext& ctx, Allocation& out) override;
};

}  // namespace jstream
