#include "baselines/default_scheduler.hpp"

#include <algorithm>

#include "baselines/rotation.hpp"
#include "common/error.hpp"

namespace jstream {

void DefaultScheduler::reset(std::size_t /*users*/) {}

Allocation DefaultScheduler::allocate(const SlotContext& ctx) {
  Allocation alloc;
  allocate_into(ctx, alloc);
  return alloc;
}

// jstream: hot-path — per-slot allocation; recycles out.units.
void DefaultScheduler::allocate_into(const SlotContext& ctx, Allocation& out) {
  const std::size_t n = ctx.user_count();
  const SlotSoa& soa = ctx.soa;
  require(soa.size() == n, "SlotContext::finalize() not called before allocate");
  out.units.assign(n, 0);
  std::int64_t remaining = ctx.capacity_units;
  const std::size_t start = rotation_start(ctx.slot, n);
  // The grant loop reads the contiguous alloc-cap lane instead of striding
  // through the AoS records.
  for (std::size_t k = 0; k < n && remaining > 0; ++k) {
    const std::size_t i = (start + k) % n;
    const std::int64_t grant = std::min(soa.alloc_cap_units[i], remaining);
    if (grant <= 0) continue;
    out.units[i] = grant;
    remaining -= grant;
  }
}

}  // namespace jstream
