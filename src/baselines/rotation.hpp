// Serving-order model for the uncoordinated baselines.
//
// The comparison systems do not coordinate users at the base station. Two
// regimes are modeled:
//
//  * Gateway/BS-level policies (Default, SALSA) drain the backlog in whatever
//    order flows happen to head the queue; that order carries no structure
//    across slots, so they iterate users from a deterministic pseudo-random
//    rotation of the ring (`rotation_start`). Any single slot may be seized
//    by whoever comes first, but every user gets long-run turns.
//
//  * End-to-end protocols (Throttling, ON-OFF, EStreamer) ride long-lived
//    per-flow TCP connections whose relative share at the bottleneck is
//    persistent — the same flows dominate for the whole session. They iterate
//    users in fixed index order, so under capacity pressure the same tail of
//    users is starved persistently (the bimodal rebuffering the paper's
//    Fig. 3 describes).
//
// RTMA and EMA install their own deliberate orderings.
#pragma once

#include <cstdint>

namespace jstream {

/// Start index of the serving ring for `slot` over `users` users.
/// Deterministic (SplitMix64 finalizer) so runs are reproducible.
[[nodiscard]] inline std::size_t rotation_start(std::int64_t slot,
                                                std::size_t users) noexcept {
  std::uint64_t x = static_cast<std::uint64_t>(slot) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  // jstream-lint: allow(checked-narrowing) -- x % users < users, which is a
  // size_t, so the u64 modulo result fits by construction.
  return users == 0 ? 0 : static_cast<std::size_t>(x % users);
}

}  // namespace jstream
