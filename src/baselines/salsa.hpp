// SALSA baseline (Ra et al. [17], Section VI-B): an energy-delay trade-off
// scheduler that defers transmission until the channel is favorable or the
// backlog forces it, while keeping the waiting queue finite. As the paper
// notes, SALSA ignores tail energy entirely — deferrals create many short
// idle gaps whose tail cost it never accounts for.
//
// Re-implementation of the decision rule: track an EWMA of the per-KB
// transmission cost; transmit when the current cost is below the EWMA (good
// channel) or when the client buffer is close to underrun (delay bound).
#pragma once

#include <string>
#include <vector>

#include "gateway/scheduler.hpp"

namespace jstream {

/// Channel-threshold + delay-bound deferral scheduling.
class SalsaScheduler final : public Scheduler {
 public:
  struct Params {
    double cost_ratio = 1.0;     ///< transmit when cost <= ratio * EWMA cost
    double ewma_alpha = 0.05;    ///< smoothing of the per-KB cost average
    double panic_buffer_s = 3.0; ///< transmit regardless when buffer below this
    double target_buffer_s = 15.0; ///< fill toward this many seconds when sending
  };

  SalsaScheduler();  ///< default parameters
  explicit SalsaScheduler(Params params);

  [[nodiscard]] std::string name() const override { return "salsa"; }
  void reset(std::size_t users) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  std::vector<double> ewma_cost_;  ///< per-user average energy-per-KB estimate
};

}  // namespace jstream
