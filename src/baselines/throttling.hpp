// Throttling baseline (Hoque et al. [15], Section VI-A): the server paces
// delivery at a rate above the encoding rate but below the bulk transfer
// capacity, keeping the transmission continuous. Small rebuffering at low
// load, but no notion of multi-user competition or energy.
#pragma once

#include <string>

#include "gateway/scheduler.hpp"

namespace jstream {

/// Paced delivery at `rate_factor` times the encoding rate, every slot.
class ThrottlingScheduler final : public Scheduler {
 public:
  /// `rate_factor` > 1 keeps the client buffer slowly growing (default 1.25,
  /// a common YouTube-style throttle ratio).
  explicit ThrottlingScheduler(double rate_factor = 1.25);

  [[nodiscard]] std::string name() const override { return "throttling"; }
  void reset(std::size_t users) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;

  [[nodiscard]] double rate_factor() const noexcept { return rate_factor_; }

 private:
  double rate_factor_;
};

}  // namespace jstream
