// EStreamer baseline (Hoque et al. [16], Section VI-B): a cross-layer
// multimedia delivery system that sends content in large bursts sized to the
// client buffer capacity, idling between bursts to let the radio rest. As the
// paper notes, EStreamer ignores signal strength — bursts fire based on
// buffer state alone, so they may run during expensive channel conditions,
// and the inter-burst idle periods still pay tail energy.
#pragma once

#include <string>
#include <vector>

#include "gateway/scheduler.hpp"

namespace jstream {

/// Buffer-capacity burst delivery.
class EStreamerScheduler final : public Scheduler {
 public:
  struct Params {
    double buffer_capacity_s = 30.0;  ///< burst fills to this playback depth
    double resume_threshold_s = 6.0;  ///< next burst starts below this level
  };

  EStreamerScheduler();  ///< default parameters
  explicit EStreamerScheduler(Params params);

  [[nodiscard]] std::string name() const override { return "estreamer"; }
  void reset(std::size_t users) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  std::vector<bool> bursting_;  ///< per-user burst phase flag
};

}  // namespace jstream
