// Name -> scheduler factory used by examples and the bench harness.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_rtma.hpp"
#include "core/ema.hpp"
#include "core/predictive_ema.hpp"
#include "core/rtma.hpp"
#include "gateway/scheduler.hpp"

namespace jstream {

/// Options forwarded to the schedulers that take parameters.
struct SchedulerOptions {
  RtmaConfig rtma;
  EmaConfig ema;
  AdaptiveRtmaConfig rtma_adaptive;
  /// "ema-predictive" knobs (horizon, defer weight, safety margin). The
  /// forecast itself is scenario-derived, so this name resolves only through
  /// make_scheduler_for_scenario (sim/experiment.hpp).
  PredictiveEmaConfig ema_predictive;
  double throttling_rate_factor = 1.25;
  double onoff_low_s = 10.0;
  double onoff_high_s = 40.0;
  double estreamer_capacity_s = 30.0;
  double estreamer_resume_s = 6.0;
};

/// Creates a scheduler by name: "default", "throttling", "onoff", "salsa",
/// "estreamer", "rtma", "rtma-adaptive", "ema", "ema-fast". Throws
/// jstream::Error for unknown names, and a pointed one for "ema-predictive",
/// whose construction needs a scenario (its forecast is derived from the
/// scenario seed) — resolve it via make_scheduler_for_scenario in
/// sim/experiment.hpp, which every campaign/experiment path routes through.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                                        const SchedulerOptions& options = {});

/// All scenario-free scheduler names the factory accepts. "ema-predictive"
/// is deliberately not listed: the many scenario-free factory loops (tests,
/// benches) construct each name without a scenario, which the predictive
/// scheduler cannot satisfy. See scenario_scheduler_names().
[[nodiscard]] std::vector<std::string> scheduler_names();

/// Names that additionally require a scenario to construct (resolved by
/// make_scheduler_for_scenario): currently just "ema-predictive".
[[nodiscard]] std::vector<std::string> scenario_scheduler_names();

}  // namespace jstream
