// Name -> scheduler factory used by examples and the bench harness.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_rtma.hpp"
#include "core/ema.hpp"
#include "core/rtma.hpp"
#include "gateway/scheduler.hpp"

namespace jstream {

/// Options forwarded to the schedulers that take parameters.
struct SchedulerOptions {
  RtmaConfig rtma;
  EmaConfig ema;
  AdaptiveRtmaConfig rtma_adaptive;
  double throttling_rate_factor = 1.25;
  double onoff_low_s = 10.0;
  double onoff_high_s = 40.0;
  double estreamer_capacity_s = 30.0;
  double estreamer_resume_s = 6.0;
};

/// Creates a scheduler by name: "default", "throttling", "onoff", "salsa",
/// "estreamer", "rtma", "rtma-adaptive", "ema", "ema-fast". Throws
/// jstream::Error for unknown names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                                        const SchedulerOptions& options = {});

/// All scheduler names the factory accepts.
[[nodiscard]] std::vector<std::string> scheduler_names();

}  // namespace jstream
