#include "baselines/factory.hpp"

#include "baselines/default_scheduler.hpp"
#include "baselines/estreamer.hpp"
#include "baselines/onoff.hpp"
#include "baselines/salsa.hpp"
#include "baselines/throttling.hpp"
#include "common/error.hpp"
#include "core/ema_fast.hpp"

namespace jstream {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerOptions& options) {
  if (name == "default") return std::make_unique<DefaultScheduler>();
  if (name == "throttling") {
    return std::make_unique<ThrottlingScheduler>(options.throttling_rate_factor);
  }
  if (name == "onoff") {
    return std::make_unique<OnOffScheduler>(options.onoff_low_s, options.onoff_high_s);
  }
  if (name == "salsa") return std::make_unique<SalsaScheduler>();
  if (name == "estreamer") {
    EStreamerScheduler::Params params;
    params.buffer_capacity_s = options.estreamer_capacity_s;
    params.resume_threshold_s = options.estreamer_resume_s;
    return std::make_unique<EStreamerScheduler>(params);
  }
  if (name == "rtma") return std::make_unique<RtmaScheduler>(options.rtma);
  if (name == "rtma-adaptive") {
    return std::make_unique<AdaptiveRtmaScheduler>(options.rtma_adaptive);
  }
  if (name == "ema") return std::make_unique<EmaScheduler>(options.ema);
  if (name == "ema-fast") return std::make_unique<EmaFastScheduler>(options.ema);
  if (name == "ema-predictive") {
    throw Error(
        "ema-predictive needs a scenario to derive its forecast — construct it "
        "via make_scheduler_for_scenario (sim/experiment.hpp)");
  }
  throw Error("unknown scheduler: " + name);
}

std::vector<std::string> scheduler_names() {
  return {"default", "throttling", "onoff", "salsa",     "estreamer",
          "rtma",    "rtma-adaptive", "ema", "ema-fast"};
}

std::vector<std::string> scenario_scheduler_names() { return {"ema-predictive"}; }

}  // namespace jstream
