#include "baselines/estreamer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

EStreamerScheduler::EStreamerScheduler() : EStreamerScheduler(Params{}) {}

EStreamerScheduler::EStreamerScheduler(Params params) : params_(params) {
  require(params_.resume_threshold_s >= 0.0, "resume threshold must be non-negative");
  require(params_.buffer_capacity_s > params_.resume_threshold_s,
          "buffer capacity must exceed the resume threshold");
}

void EStreamerScheduler::reset(std::size_t users) { bursting_.assign(users, true); }

Allocation EStreamerScheduler::allocate(const SlotContext& ctx) {
  require(bursting_.size() == ctx.user_count(),
          "EStreamer not reset for this user count");
  const std::size_t n = ctx.user_count();
  Allocation alloc = Allocation::zeros(n);
  std::int64_t remaining = ctx.capacity_units;
  const std::size_t start = 0;  // persistent per-flow dominance (see rotation.hpp)
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    const UserSlotInfo& user = ctx.users[i];
    if (user.buffer_s >= params_.buffer_capacity_s) bursting_[i] = false;
    if (user.buffer_s <= params_.resume_threshold_s) bursting_[i] = true;
    if (!bursting_[i] || remaining <= 0) continue;
    // Burst: fill the remaining buffer capacity as fast as the link allows,
    // regardless of the current signal strength (signal-blind by design).
    const double deficit_s = std::max(params_.buffer_capacity_s - user.buffer_s, 0.0);
    const std::int64_t wanted =
        ceil_to_count(deficit_s * user.bitrate_kbps / ctx.params.delta_kb);
    const std::int64_t grant = std::min({wanted, user.alloc_cap_units, remaining});
    if (grant <= 0) continue;
    alloc.units[i] = grant;
    remaining -= grant;
  }
  return alloc;
}

}  // namespace jstream
