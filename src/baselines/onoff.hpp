// ON-OFF baseline (Hoque et al. [14], Section VI-A): the client-player
// protocol used by YouTube/Dailymotion/Vimeo Android players. The player
// reads from the socket at full rate (ON) until the buffer reaches a high
// watermark, then stops reading (OFF) until it drains to a low watermark.
// During OFF no data flows but the radio sits in the tail states, which is
// precisely the tail-energy waste the paper's introduction describes.
#pragma once

#include <string>
#include <vector>

#include "gateway/scheduler.hpp"

namespace jstream {

/// Buffer-watermark ON/OFF delivery.
class OnOffScheduler final : public Scheduler {
 public:
  /// Watermarks in seconds of buffered playback.
  OnOffScheduler(double low_watermark_s = 10.0, double high_watermark_s = 40.0);

  [[nodiscard]] std::string name() const override { return "onoff"; }
  void reset(std::size_t users) override;
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override;

  [[nodiscard]] double low_watermark_s() const noexcept { return low_s_; }
  [[nodiscard]] double high_watermark_s() const noexcept { return high_s_; }

 private:
  double low_s_;
  double high_s_;
  std::vector<bool> on_;  ///< per-user ON phase flag
};

}  // namespace jstream
