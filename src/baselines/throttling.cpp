#include "baselines/throttling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

ThrottlingScheduler::ThrottlingScheduler(double rate_factor) : rate_factor_(rate_factor) {
  require(rate_factor_ >= 1.0, "throttling rate factor must be >= 1");
}

void ThrottlingScheduler::reset(std::size_t /*users*/) {}

Allocation ThrottlingScheduler::allocate(const SlotContext& ctx) {
  const std::size_t n = ctx.user_count();
  Allocation alloc = Allocation::zeros(n);
  std::int64_t remaining = ctx.capacity_units;
  const std::size_t start = 0;  // persistent per-flow dominance (see rotation.hpp)
  for (std::size_t k = 0; k < n && remaining > 0; ++k) {
    const std::size_t i = (start + k) % n;
    const UserSlotInfo& user = ctx.users[i];
    const std::int64_t paced = ceil_to_count(
        rate_factor_ * ctx.params.tau_s * user.bitrate_kbps / ctx.params.delta_kb);
    const std::int64_t grant =
        std::min({paced, user.alloc_cap_units, remaining});
    if (grant <= 0) continue;
    alloc.units[i] = grant;
    remaining -= grant;
  }
  return alloc;
}

}  // namespace jstream
