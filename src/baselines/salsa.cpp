#include "baselines/salsa.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/rotation.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {

SalsaScheduler::SalsaScheduler() : SalsaScheduler(Params{}) {}

SalsaScheduler::SalsaScheduler(Params params) : params_(params) {
  require(params_.cost_ratio > 0.0, "cost ratio must be positive");
  require(params_.ewma_alpha > 0.0 && params_.ewma_alpha <= 1.0,
          "EWMA alpha must be in (0,1]");
  require(params_.panic_buffer_s >= 0.0, "panic buffer must be non-negative");
  require(params_.target_buffer_s > params_.panic_buffer_s,
          "target buffer must exceed the panic buffer");
}

void SalsaScheduler::reset(std::size_t users) { ewma_cost_.assign(users, 0.0); }

Allocation SalsaScheduler::allocate(const SlotContext& ctx) {
  require(ewma_cost_.size() == ctx.user_count(), "SALSA not reset for this user count");
  const std::size_t n = ctx.user_count();
  Allocation alloc = Allocation::zeros(n);
  std::int64_t remaining = ctx.capacity_units;
  const std::size_t start = rotation_start(ctx.slot, n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    const UserSlotInfo& user = ctx.users[i];
    const double cost = ctx.power->energy_per_kb(user.signal_dbm);
    // Keep learning the channel average even on deferral slots.
    double& ewma = ewma_cost_[i];
    ewma = ewma == 0.0 ? cost : (1.0 - params_.ewma_alpha) * ewma + params_.ewma_alpha * cost;
    if (user.alloc_cap_units <= 0 || remaining <= 0) continue;

    const bool good_channel = cost <= params_.cost_ratio * ewma;
    const bool panic = user.buffer_s <= params_.panic_buffer_s;
    if (!good_channel && !panic) continue;  // defer to a better slot

    // Fill toward the target buffer level.
    const double deficit_s = std::max(params_.target_buffer_s - user.buffer_s, 0.0);
    const std::int64_t wanted =
        ceil_to_count(deficit_s * user.bitrate_kbps / ctx.params.delta_kb);
    const std::int64_t grant = std::min({wanted, user.alloc_cap_units, remaining});
    if (grant <= 0) continue;
    alloc.units[i] = grant;
    remaining -= grant;
  }
  return alloc;
}

}  // namespace jstream
