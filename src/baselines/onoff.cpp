#include "baselines/onoff.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace jstream {

OnOffScheduler::OnOffScheduler(double low_watermark_s, double high_watermark_s)
    : low_s_(low_watermark_s), high_s_(high_watermark_s) {
  require(low_s_ >= 0.0, "low watermark must be non-negative");
  require(high_s_ > low_s_, "high watermark must exceed the low watermark");
}

void OnOffScheduler::reset(std::size_t users) { on_.assign(users, true); }

Allocation OnOffScheduler::allocate(const SlotContext& ctx) {
  require(on_.size() == ctx.user_count(), "ON-OFF not reset for this user count");
  const std::size_t n = ctx.user_count();
  Allocation alloc = Allocation::zeros(n);
  std::int64_t remaining = ctx.capacity_units;
  const std::size_t start = 0;  // persistent per-flow dominance (see rotation.hpp)
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    const UserSlotInfo& user = ctx.users[i];
    // Watermark crossings flip the phase regardless of allocation outcome.
    if (user.buffer_s >= high_s_) on_[i] = false;
    if (user.buffer_s <= low_s_) on_[i] = true;
    if (!on_[i] || remaining <= 0) continue;
    const std::int64_t grant = std::min(user.alloc_cap_units, remaining);
    if (grant <= 0) continue;
    alloc.units[i] = grant;
    remaining -= grant;
  }
  return alloc;
}

}  // namespace jstream
