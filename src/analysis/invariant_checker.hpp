// Paper-invariant validator: mechanical feasibility checks for every slot.
//
// Lyapunov-style schedulers are exactly where silent constraint violations
// hide — a scheduler can look plausible in aggregate metrics while quietly
// overshooting the feasibility region the paper's analysis depends on. The
// InvariantChecker re-derives, from the slot snapshot and the executed
// outcome, every constraint the paper states and raises a structured
// InvariantViolation (scheduler, slot, user, equation) on the first breach:
//
//   Eq. (1)  per-user link bound: 0 <= phi_i <= floor(tau*v(sig_i)/delta),
//            further clipped by the remaining content, and phi_i = 0 before
//            the session arrives;
//   Eq. (2)  aggregate capacity: sum_i phi_i <= floor(tau*S/delta);
//   Eq. (3)  transmission energy consistency: E = P(sig_i) * d_i;
//   Eq. (7)  buffer bookkeeping: the collector's r_i(n) snapshot matches the
//            client buffer, occupancy and elapsed playback stay in range;
//   Eq. (8)  rebuffering: c_i(n) = max(tau - r_i(n), 0) while m_i < M_i,
//            0 after playback completes or before arrival;
//   Eq. (16) virtual-queue recursion: schedulers that expose Lyapunov queues
//            (Scheduler::virtual_queues) must track the shadow recursion
//            PC_i(n+1) = PC_i(n) + tau - t_i(n) exactly, and no queue may
//            grow faster than tau per slot;
//   RRC      state-machine legality: no IDLE->FACH promotion skips, radios
//            only promote on transmission, the inactivity clock advances by
//            exactly tau on idle slots and rewinds only on transmission, and
//            per-slot tail energy stays within the Eq. 4 power envelope.
//
// Degraded-cell slots (gateway/fault_hook.hpp, sim/fault.hpp) are first-class:
// check_allocation validates the decision against the view the scheduler
// actually saw (stale reports, faded signals, scaled capacity included),
// check_outcome validates the executed slot against the reconciled truth, and
// departed users must receive no grants, accrue no stall time or tail energy,
// and keep a frozen RRC clock.
//
// The checker is compiled in unconditionally but off by default; it costs one
// relaxed atomic load per slot while disabled. `--validate` on the bench
// binaries (or JSTREAM_VALIDATE=ON at configure time) turns it on. All scratch
// state is sized at reset, so an enabled checker adds no steady-state heap
// allocations to the slot path.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "gateway/data_transmitter.hpp"
#include "gateway/slot_context.hpp"
#include "gateway/user_endpoint.hpp"
#include "net/allocation.hpp"
#include "radio/rrc.hpp"

namespace jstream::analysis {

/// Process-wide validation switch. Defaults to off (or on when the library
/// was configured with -DJSTREAM_VALIDATE=ON); flipping it mid-run is safe —
/// the checker resynchronizes its shadow state on the next validated slot.
[[nodiscard]] bool validation_enabled() noexcept;
void set_validation_enabled(bool on) noexcept;

/// Structured description of one violated paper invariant.
struct Violation {
  std::string scheduler;  ///< Scheduler::name() of the offending policy
  std::string equation;   ///< "Eq. (1)", "Eq. (2)", ..., "Eq. (16)", "RRC"
  std::int64_t slot = 0;
  std::int32_t user = -1;  ///< -1 for slot-wide violations
  std::string detail;      ///< human-readable numbers behind the breach

  /// "scheduler=ema slot=12 user=3 violated Eq. (2): ...".
  [[nodiscard]] std::string to_string() const;
};

/// Thrown by InvariantChecker on the first violated invariant.
class InvariantViolation : public Error {
 public:
  explicit InvariantViolation(Violation violation);
  [[nodiscard]] const Violation& violation() const noexcept { return violation_; }

 private:
  Violation violation_;
};

/// Per-framework validator; see the file comment for the checked equations.
///
/// The Framework drives it in slot order:
///   check_allocation(ctx, alloc, queues)   after the scheduler decides,
///   check_outcome(ctx, alloc, outcome, …)  after the transmitter executes
/// (both only while validation_enabled()). Slots validated after a mid-run
/// enable adopt the current scheduler/radio state as the new baseline instead
/// of reporting a spurious divergence.
class InvariantChecker {
 public:
  InvariantChecker() = default;

  /// Binds the checker to a scheduler name and sizes all shadow state.
  void reset(std::string scheduler_name, std::size_t users);

  /// Validates the decision against Eq. (1)/(2) and, when the scheduler
  /// exposes Lyapunov queues, the Eq. (16) recursion. `queues` is
  /// Scheduler::virtual_queues() *after* allocate (EMA updates its queues
  /// inside the decision); pass an empty span for queue-less schedulers.
  void check_allocation(const SlotContext& ctx, const Allocation& alloc,
                        std::span<const double> queues);

  /// Validates the executed slot: Eq. (3) energy, Eq. (7)/(8) buffer and
  /// rebuffer bookkeeping, and RRC legality. `rrc_before` holds the per-user
  /// states captured before DataTransmitter::apply_into.
  void check_outcome(const SlotContext& ctx, const Allocation& alloc,
                     const SlotOutcome& outcome,
                     std::span<const UserEndpoint> endpoints,
                     std::span<const RrcState> rrc_before);

  /// Validates a scheduler's certified per-slot optimality gap ("Thm. 1"):
  /// the gap must be finite, non-negative, and — when a budget was set via
  /// set_gap_budget — within it. The Framework calls this right after
  /// check_allocation for schedulers exposing a SolveCertificate; the budget
  /// is the Theorem 1 drift bound B, so an in-budget gap keeps the paper's
  /// PE <= E* + (B + eps)/V <= E* + 2B/V guarantee intact.
  void check_certificate(std::int64_t slot, double gap);

  /// Sets the per-slot certified-gap budget (slot objective units). Default
  /// is infinity: gaps are still checked for sanity but never for size.
  void set_gap_budget(double budget) noexcept { gap_budget_ = budget; }
  [[nodiscard]] double gap_budget() const noexcept { return gap_budget_; }

  /// Slots validated since reset (or the last mid-run resynchronization).
  [[nodiscard]] std::int64_t slots_checked() const noexcept { return slots_checked_; }

  [[nodiscard]] const std::string& scheduler_name() const noexcept { return scheduler_; }

 private:
  [[noreturn]] void raise(const char* equation, std::int64_t slot, std::int32_t user,
                          std::string detail) const;

  std::string scheduler_;
  std::vector<double> shadow_queue_;  ///< Eq. 16 shadow recursion PC_i(n)
  std::vector<double> idle_prev_;     ///< RRC inactivity clock at last validated slot
  std::vector<bool> idle_known_;      ///< idle_prev_ valid for this user
  /// Session epoch last validated per population slot. A mismatch means the
  /// session layer rebound the slot to a fresh session mid-run: the Eq. 16
  /// shadow adopts the scheduler's (reset) queue level and the RRC clock
  /// baseline is re-learned, instead of reporting ghost divergences against
  /// the departed occupant's state.
  std::vector<std::int32_t> epoch_seen_;
  bool queues_synced_ = false;        ///< shadow adopted the scheduler's levels
  std::int64_t slots_checked_ = 0;
  std::int64_t last_slot_ = -1;
  /// Per-slot ceiling for certified optimality gaps (Theorem 1 budget).
  double gap_budget_ = std::numeric_limits<double>::infinity();
};

}  // namespace jstream::analysis
