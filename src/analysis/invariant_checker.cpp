#include "analysis/invariant_checker.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include "common/units.hpp"

namespace jstream::analysis {

namespace {

#ifdef JSTREAM_VALIDATE_DEFAULT_ON
constexpr bool kValidateDefault = true;
#else
constexpr bool kValidateDefault = false;
#endif

std::atomic<bool> g_validate{kValidateDefault};

/// Absolute slack for quantities accumulated over many slots (seconds, KB,
/// mJ); forgiving enough for double rounding, far below one data unit.
constexpr double kEps = 1e-6;

/// Tight slack for values the checker recomputes from the same inputs in the
/// same order as the production code (Eq. 8, Eq. 16).
constexpr double kTightEps = 1e-9;

/// Promotion order of the RRC states: a radio may only move up this ladder by
/// transmitting.
int rrc_rank(RrcState state) noexcept {
  switch (state) {
    case RrcState::kIdle: return 0;
    case RrcState::kFach: return 1;
    case RrcState::kDch: return 2;
  }
  return 0;
}

const char* rrc_name(RrcState state) noexcept {
  switch (state) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kFach: return "FACH";
    case RrcState::kDch: return "DCH";
  }
  return "?";
}

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace

bool validation_enabled() noexcept {
  return g_validate.load(std::memory_order_relaxed);
}

void set_validation_enabled(bool on) noexcept {
  g_validate.store(on, std::memory_order_relaxed);
}

std::string Violation::to_string() const {
  std::string out = "invariant violation: scheduler=" + scheduler +
                    " slot=" + std::to_string(slot);
  out += user >= 0 ? " user=" + std::to_string(user) : std::string(" user=<all>");
  out += " violated " + equation + ": " + detail;
  return out;
}

InvariantViolation::InvariantViolation(Violation violation)
    : Error(violation.to_string()), violation_(std::move(violation)) {}

void InvariantChecker::raise(const char* equation, std::int64_t slot,
                             std::int32_t user, std::string detail) const {
  throw InvariantViolation(
      Violation{scheduler_, equation, slot, user, std::move(detail)});
}

void InvariantChecker::reset(std::string scheduler_name, std::size_t users) {
  scheduler_ = std::move(scheduler_name);
  shadow_queue_.assign(users, 0.0);
  idle_prev_.assign(users, 0.0);
  idle_known_.assign(users, false);
  epoch_seen_.assign(users, 0);
  queues_synced_ = false;
  slots_checked_ = 0;
  last_slot_ = -1;
}

void InvariantChecker::check_certificate(std::int64_t slot, double gap) {
  // A certificate is a claimed upper bound on the slot's optimality error;
  // NaN/negative/infinite values mean the solver's bookkeeping is broken, and
  // a gap above the configured Theorem 1 budget means the approximation has
  // left the region where the paper's PE bound still holds.
  if (!(gap >= 0.0) || gap == std::numeric_limits<double>::infinity()) {
    raise("Thm. 1", slot, -1,
          "certified gap must be finite and non-negative, got " + std::to_string(gap));
  }
  if (gap > gap_budget_) {
    raise("Thm. 1", slot, -1,
          "certified optimality gap " + std::to_string(gap) +
              " exceeds the drift-bound budget B=" + std::to_string(gap_budget_));
  }
}

void InvariantChecker::check_allocation(const SlotContext& ctx, const Allocation& alloc,
                                        std::span<const double> queues) {
  const std::size_t n = ctx.user_count();
  const std::int64_t slot = ctx.slot;
  if (alloc.units.size() != n) {
    raise("Eq. (1)", slot, -1,
          "allocation has " + std::to_string(alloc.units.size()) + " entries for " +
              std::to_string(n) + " users");
  }
  if (shadow_queue_.size() != n) {
    raise("Eq. (16)", slot, -1,
          "checker reset for " + std::to_string(shadow_queue_.size()) +
              " users, slot has " + std::to_string(n));
  }

  // A gap in the validated slot sequence (validation enabled mid-run) means
  // the shadow state is stale: adopt the scheduler's current levels and the
  // radios' clocks as the new baseline instead of reporting ghosts.
  const bool continuous = slot == last_slot_ + 1;
  if (!continuous) {
    queues_synced_ = false;
    std::fill(idle_known_.begin(), idle_known_.end(), false);
  }

  // Eq. (1): 0 <= phi_i <= min(link cap, remaining content), nothing before
  // arrival. Eq. (2): the slot's total grant fits the base station.
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const UserSlotInfo& user = ctx.users[i];
    const std::int64_t phi = alloc.units[i];
    const auto uid = checked_i32(i);
    if (phi < 0) {
      raise("Eq. (1)", slot, uid, "negative grant phi=" + std::to_string(phi));
    }
    if (phi > user.link_units) {
      raise("Eq. (1)", slot, uid,
            "phi=" + std::to_string(phi) + " > link cap floor(tau*v/delta)=" +
                std::to_string(user.link_units));
    }
    if (phi > user.alloc_cap_units) {
      raise("Eq. (1)", slot, uid,
            "phi=" + std::to_string(phi) + " > alloc cap min(link, remaining)=" +
                std::to_string(user.alloc_cap_units));
    }
    if (!user.arrived && phi != 0) {
      raise("Eq. (1)", slot, uid,
            "granted phi=" + std::to_string(phi) + " before session arrival");
    }
    if (user.departed && phi != 0) {
      raise("Eq. (1)", slot, uid,
            "granted phi=" + std::to_string(phi) + " after session departure");
    }
    total += phi;
  }
  if (total > ctx.capacity_units) {
    raise("Eq. (2)", slot, -1,
          "total grant " + std::to_string(total) + " units > capacity floor(tau*S/delta)=" +
              std::to_string(ctx.capacity_units) + " units");
  }

  // Eq. (16): schedulers exposing Lyapunov queues must follow the recursion
  // PC_i(n+1) = PC_i(n) + tau - t_i(n) with t_i the playback seconds the
  // grant carries (frozen once the session has no content left), and no
  // queue can outgrow tau per slot from its PC(0) = 0 start.
  if (!queues.empty()) {
    if (queues.size() != n) {
      raise("Eq. (16)", slot, -1,
            "scheduler exposes " + std::to_string(queues.size()) + " queues for " +
                std::to_string(n) + " users");
    }
    const double tau = ctx.params.tau_s;
    const double growth_cap = tau * as_double(slot + 1) + kEps;
    for (std::size_t i = 0; i < n; ++i) {
      const auto uid = checked_i32(i);
      if (!std::isfinite(queues[i])) {
        raise("Eq. (16)", slot, uid, "queue PC=" + fmt(queues[i]) + " is not finite");
      }
      if (queues[i] > growth_cap) {
        raise("Eq. (16)", slot, uid,
              "queue PC=" + fmt(queues[i]) + " s exceeds tau*(n+1)=" + fmt(growth_cap) +
                  " s, faster than the recursion can grow");
      }
    }
    if (queues_synced_) {
      for (std::size_t i = 0; i < n; ++i) {
        const UserSlotInfo& user = ctx.users[i];
        if (user.session_epoch != epoch_seen_[i]) {
          // A fresh session took over this population slot; its queue was
          // reset at the rebind, so the shadow re-anchors on the scheduler's
          // post-decision level (check_outcome records the new epoch).
          shadow_queue_[i] = queues[i];
          continue;
        }
        if (user.needs_data) {
          const double kb = std::min(ctx.params.units_to_kb(alloc.units[i]),
                                     user.remaining_kb);
          shadow_queue_[i] += tau - kb / user.bitrate_kbps;
        }
        const double gap = std::abs(queues[i] - shadow_queue_[i]);
        const double tol = kTightEps * std::max(1.0, std::abs(shadow_queue_[i]));
        if (gap > tol) {
          raise("Eq. (16)", slot, checked_i32(i),
                "queue PC=" + fmt(queues[i]) + " s diverges from the recursion value " +
                    fmt(shadow_queue_[i]) + " s (gap " + fmt(gap) + ")");
        }
      }
    } else {
      std::copy(queues.begin(), queues.end(), shadow_queue_.begin());
      queues_synced_ = true;
    }
  }
}

void InvariantChecker::check_outcome(const SlotContext& ctx, const Allocation& alloc,
                                     const SlotOutcome& outcome,
                                     std::span<const UserEndpoint> endpoints,
                                     std::span<const RrcState> rrc_before) {
  const std::size_t n = ctx.user_count();
  const std::int64_t slot = ctx.slot;
  if (outcome.units.size() != n || outcome.kb.size() != n ||
      outcome.trans_mj.size() != n || outcome.tail_mj.size() != n ||
      outcome.rebuffer_s.size() != n || endpoints.size() != n ||
      rrc_before.size() != n) {
    raise("Eq. (7)", slot, -1, "outcome/endpoint arrays not sized to the user count");
  }
  const double tau = ctx.params.tau_s;
  const RadioProfile& radio = *ctx.radio;
  const double slot_tail_cap =
      std::max(radio.p_dch_mw, radio.p_fach_mw) * tau + kEps;

  for (std::size_t i = 0; i < n; ++i) {
    const UserSlotInfo& info = ctx.users[i];
    const UserEndpoint& endpoint = endpoints[i];
    const auto uid = checked_i32(i);
    const std::int64_t phi = outcome.units[i];
    const double kb = outcome.kb[i];

    // Mid-run rebind: the slot hosts a brand-new session with a fresh radio,
    // so the RRC clock baseline from the previous occupant is meaningless.
    if (info.session_epoch != epoch_seen_[i]) {
      idle_known_[i] = false;
      epoch_seen_[i] = info.session_epoch;
    }

    // The transmitter must execute exactly the validated decision.
    if (phi != alloc.units[i]) {
      raise("Eq. (1)", slot, uid,
            "transmitter executed phi=" + std::to_string(phi) + ", scheduler decided " +
                std::to_string(alloc.units[i]));
    }
    // Definition 1: a grant of phi units carries at most phi*delta KB, never
    // more than the content that was left, and no bytes move on phi = 0.
    if (kb < -kEps || kb > ctx.params.units_to_kb(phi) + kEps) {
      raise("Eq. (1)", slot, uid,
            "delivered d=" + fmt(kb) + " KB outside [0, phi*delta=" +
                fmt(ctx.params.units_to_kb(phi)) + " KB]");
    }
    if (kb > info.remaining_kb + kEps) {
      raise("Eq. (1)", slot, uid,
            "delivered d=" + fmt(kb) + " KB > remaining content " +
                fmt(info.remaining_kb) + " KB");
    }

    // Eq. (3): transmission energy is the Definition 4 fit times the bytes.
    const double expected_trans = info.energy_per_kb * kb;
    if (std::abs(outcome.trans_mj[i] - expected_trans) >
        kTightEps * std::max(1.0, expected_trans)) {
      raise("Eq. (3)", slot, uid,
            "transmission energy " + fmt(outcome.trans_mj[i]) + " mJ != P(sig)*d=" +
                fmt(expected_trans) + " mJ");
    }

    // Eq. (7): the collector's snapshot and the client buffer must agree on
    // r_i(n), and the bookkeeping stays in range. The buffer occupancy is
    // untouched between collect and this check (this slot's shard lands as
    // pending playback, folded in by the next begin_slot).
    const double occupancy = endpoint.buffer.occupancy_s();
    if (occupancy < -kTightEps) {
      raise("Eq. (7)", slot, uid, "buffer occupancy r=" + fmt(occupancy) + " s < 0");
    }
    if (std::abs(occupancy - info.buffer_s) > kTightEps) {
      raise("Eq. (7)", slot, uid,
            "snapshot r=" + fmt(info.buffer_s) + " s disagrees with client buffer r=" +
                fmt(occupancy) + " s");
    }
    const double elapsed = endpoint.buffer.elapsed_s();
    const double total_play = endpoint.buffer.total_s();
    if (elapsed < -kTightEps || elapsed > total_play + kEps) {
      raise("Eq. (7)", slot, uid,
            "elapsed playback m=" + fmt(elapsed) + " s outside [0, M=" +
                fmt(total_play) + " s]");
    }

    // Eq. (8): c_i(n) = max(tau - r_i(n), 0) while m_i < M_i; zero once
    // playback finished, zero before the session arrives, and zero after a
    // mid-stream abort (a departed user no longer stalls anyone).
    const bool finished = elapsed >= total_play - kPlaybackCompletionEps_s;
    const double expected_rebuffer =
        (!info.arrived || info.departed || finished)
            ? 0.0
            : std::max(tau - occupancy, 0.0);
    if (std::abs(outcome.rebuffer_s[i] - expected_rebuffer) > kTightEps) {
      raise("Eq. (8)", slot, uid,
            "rebuffer c=" + fmt(outcome.rebuffer_s[i]) + " s != max(tau - r, 0)=" +
                fmt(expected_rebuffer) + " s (r=" + fmt(occupancy) + ", arrived=" +
                (info.arrived ? "yes" : "no") + ", finished=" +
                (finished ? "yes" : "no") + ")");
    }

    // RRC legality. Promotion happens only by transmitting, and a promotion
    // lands in DCH — IDLE->FACH would skip the high-power state, which the
    // Section III-C machine cannot do.
    const RrcState before = rrc_before[i];
    const RrcState after = endpoint.rrc.state();
    const double idle_after = endpoint.rrc.idle_time_s();
    if (kb <= kEps) {
      if (rrc_rank(after) > rrc_rank(before)) {
        raise("RRC", slot, uid,
              std::string("promotion ") + rrc_name(before) + "->" + rrc_name(after) +
                  " without a transmission");
      }
      // Tail timer: an idle slot advances the inactivity clock by exactly tau
      // (a never-promoted radio has no clock to advance, and a departed
      // user's radio left the framework's accounting — its clock freezes).
      if (idle_known_[i]) {
        const double expected_idle =
            (info.departed || endpoint.rrc.never_transmitted()) ? idle_prev_[i]
                                                                : idle_prev_[i] + tau;
        if (std::abs(idle_after - expected_idle) > kTightEps) {
          raise("RRC", slot, uid,
                "idle timer " + fmt(idle_after) + " s != expected " +
                    fmt(expected_idle) + " s after an idle slot");
        }
      }
    } else {
      // A transmission rewinds the inactivity clock: to 0 under Eq. 5
      // accounting, to the post-transfer residue (< tau) in continuous time.
      if (idle_after < -kTightEps || idle_after > tau + kTightEps) {
        raise("RRC", slot, uid,
              "idle timer " + fmt(idle_after) + " s outside [0, tau] after transmitting");
      }
      if (endpoint.rrc.never_transmitted()) {
        raise("RRC", slot, uid, "radio claims never-transmitted after delivering data");
      }
      if (!radio.continuous_tail && radio.t1_s > 0.0 && after != RrcState::kDch) {
        raise("RRC", slot, uid,
              std::string("transmission left the radio in ") + rrc_name(after) +
                  ", expected DCH (Eq. 5 accounting rewinds the timer to 0)");
      }
    }
    idle_prev_[i] = idle_after;
    idle_known_[i] = true;

    // Eq. (4) envelope: one slot's tail energy cannot exceed the strongest
    // state power held for the whole slot; Eq. 5 accounting additionally
    // charges no tail on transmission slots.
    const double tail = outcome.tail_mj[i];
    if (tail < -kTightEps || tail > slot_tail_cap) {
      raise("RRC", slot, uid,
            "slot tail energy " + fmt(tail) + " mJ outside [0, max(Pd,Pf)*tau=" +
                fmt(slot_tail_cap) + " mJ]");
    }
    if (!radio.continuous_tail && kb > kEps && tail > kTightEps) {
      raise("RRC", slot, uid,
            "Eq. 5 accounting charged tail energy " + fmt(tail) +
                " mJ on a transmission slot");
    }
    if (info.departed && tail > kTightEps) {
      raise("RRC", slot, uid,
            "tail energy " + fmt(tail) + " mJ charged after session departure");
    }
  }

  last_slot_ = slot;
  ++slots_checked_;
}

}  // namespace jstream::analysis
