// Concurrency test for the Registry: many writer threads hammer the same
// named Counter/Gauge/Histogram while a reader renders JSON and text
// snapshots. Passes both plain and under -DJSTREAM_SANITIZE=thread; the
// final counts are exact because Counter::add and Histogram::observe are
// atomic read-modify-writes.

#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>
#include "common/units.hpp"

namespace jstream::telemetry {
namespace {

TEST(RegistryConcurrent, WritersAndRenderingReaderAgree) {
  Registry registry(256);
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 2000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Render continuously while writers mutate; any torn read or missed
    // synchronization shows up under TSan (and as malformed output here).
    while (!stop.load(std::memory_order_acquire)) {
      const std::string json = registry.render_json();
      EXPECT_NE(json.find("counters"), std::string::npos);
      const std::string text = registry.render_text();
      EXPECT_FALSE(text.empty());
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      // Resolve through the registry each iteration on the first pass, then
      // via cached references: both the get-or-create lock path and the
      // lock-free record path get exercised.
      Counter& hits = registry.counter("stress.hits");
      Gauge& level = registry.gauge("stress.level");
      Histogram& latency = registry.histogram("stress.latency_us");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        hits.add(1);
        level.add(1.0);
        latency.observe(as_double((w * kOpsPerWriter + i) % 500));
        registry.counter("stress.lookup_hits").add(1);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(registry.counter("stress.hits").value(), kWriters * kOpsPerWriter);
  EXPECT_EQ(registry.counter("stress.lookup_hits").value(),
            kWriters * kOpsPerWriter);
  EXPECT_DOUBLE_EQ(registry.gauge("stress.level").value(),
                   as_double(kWriters * kOpsPerWriter));
  EXPECT_EQ(registry.histogram("stress.latency_us").count(),
            kWriters * kOpsPerWriter);
}

TEST(RegistryConcurrent, ConcurrentGetOrCreateReturnsOneInstance) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      seen[checked_size(t)] = &registry.counter("race.create");
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[checked_size(t)], seen[0]);
  }
}

TEST(RegistryConcurrent, ResetValuesRacesWithWriters) {
  Registry registry;
  Counter& hits = registry.counter("reset.hits");
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) registry.reset_values();
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&hits] {
      for (int i = 0; i < 5000; ++i) hits.add(1);
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  resetter.join();
  registry.reset_values();
  EXPECT_EQ(hits.value(), 0);
}

}  // namespace
}  // namespace jstream::telemetry
