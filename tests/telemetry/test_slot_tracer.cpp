#include "telemetry/slot_tracer.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/metric.hpp"
#include "common/units.hpp"

namespace jstream::telemetry {
namespace {

TEST(SlotTracer, RecordsInOrderBelowCapacity) {
  SlotTracer tracer(8);
  tracer.record(1, 0, TraceEventKind::kGrant, 5.0);
  tracer.record(2, 1, TraceEventKind::kReject, -97.0);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].slot, 1);
  EXPECT_EQ(events[0].kind, TraceEventKind::kGrant);
  EXPECT_DOUBLE_EQ(events[0].value, 5.0);
  EXPECT_EQ(events[1].user, 1);
  EXPECT_EQ(tracer.total_recorded(), 2);
}

TEST(SlotTracer, WrapsAroundKeepingNewestEvents) {
  SlotTracer tracer(4);
  for (std::int64_t slot = 0; slot < 10; ++slot) {
    tracer.record(slot, 0, TraceEventKind::kGrant, as_double(slot));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: slots 6, 7, 8, 9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].slot, checked_index(6 + i));
  }
}

TEST(SlotTracer, ClearEmptiesRingAndTotals) {
  SlotTracer tracer(4);
  tracer.record(0, 0, TraceEventKind::kQueueLevel, 1.0);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(SlotTracer, RejectsZeroCapacity) { EXPECT_THROW(SlotTracer(0), Error); }

TEST(SlotTracer, ConcurrentRecordsNeverExceedCapacityAndCountAll) {
  SlotTracer tracer(64);
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 16;
  constexpr std::int64_t kPerTask = 1000;
  parallel_for(pool, kTasks, [&](std::size_t task) {
    for (std::int64_t i = 0; i < kPerTask; ++i) {
      tracer.record(i, checked_i32(task),
                    TraceEventKind::kGrant, 0.0);
    }
  });
  EXPECT_EQ(tracer.size(), 64u);
  EXPECT_EQ(tracer.total_recorded(),
            checked_index(kTasks) * kPerTask);
}

TEST(SlotTracer, KindLabelsAreStable) {
  EXPECT_STREQ(to_string(TraceEventKind::kGrant), "grant");
  EXPECT_STREQ(to_string(TraceEventKind::kClipLink), "clip_link");
  EXPECT_STREQ(to_string(TraceEventKind::kClipCapacity), "clip_capacity");
  EXPECT_STREQ(to_string(TraceEventKind::kRrcTransition), "rrc_transition");
  EXPECT_STREQ(to_string(TraceEventKind::kQueueLevel), "queue_level");
  EXPECT_STREQ(to_string(TraceEventKind::kAdmit), "admit");
  EXPECT_STREQ(to_string(TraceEventKind::kReject), "reject");
}

}  // namespace
}  // namespace jstream::telemetry
