// Telemetry must be observation-only: running the same replication batch
// with instrumentation enabled and disabled has to yield bit-identical
// simulation metrics (acceptance criterion of the telemetry subsystem), and
// the built-in instrumentation points must actually populate the global
// registry when a scheduler runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/catalog.hpp"
#include "sim/replication.hpp"
#include "telemetry/registry.hpp"

namespace jstream {
namespace {

struct EnabledGuard {
  ~EnabledGuard() { telemetry::set_enabled(true); }
};

ExperimentSpec small_spec(const std::string& scheduler) {
  ScenarioConfig scenario = make_catalog_scenario("paper", 6, 7);
  scenario.max_slots = 300;
  ExperimentSpec spec{scheduler, scheduler, scenario, {}};
  if (scheduler == "rtma") {
    // Anchor the budget mid-range (alpha < 1) so the Eq. 12 admission filter
    // engages: some user-slots admitted, some rejected. On this 6-user slice
    // the threshold leaves its [-110, -49] clamp band only for alpha in
    // roughly [0.6, 0.8]; 0.75 lands well inside the signal range.
    const DefaultReference reference = run_default_reference(scenario);
    spec.options = rtma_options_for_alpha(0.75, reference);
  }
  return spec;
}

void expect_identical(const std::vector<RunMetrics>& a,
                      const std::vector<RunMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].slots_run, b[r].slots_run);
    ASSERT_EQ(a[r].per_user.size(), b[r].per_user.size());
    for (std::size_t i = 0; i < a[r].per_user.size(); ++i) {
      EXPECT_EQ(a[r].per_user[i].trans_mj, b[r].per_user[i].trans_mj);
      EXPECT_EQ(a[r].per_user[i].tail_mj, b[r].per_user[i].tail_mj);
      EXPECT_EQ(a[r].per_user[i].rebuffer_s, b[r].per_user[i].rebuffer_s);
      EXPECT_EQ(a[r].per_user[i].delivered_kb, b[r].per_user[i].delivered_kb);
      EXPECT_EQ(a[r].per_user[i].tx_slots, b[r].per_user[i].tx_slots);
      EXPECT_EQ(a[r].per_user[i].session_slots, b[r].per_user[i].session_slots);
    }
    EXPECT_EQ(a[r].slot_energy_mj, b[r].slot_energy_mj);
    EXPECT_EQ(a[r].slot_fairness, b[r].slot_fairness);
  }
}

TEST(TelemetryDeterminism, ReplicationAcrossFourThreadsUnperturbed) {
  const EnabledGuard guard;
  for (const char* scheduler : {"rtma", "ema-fast"}) {
    const ExperimentSpec spec = small_spec(scheduler);

    telemetry::set_enabled(false);
    const ReplicationResult off = replicate_experiment(spec, 4, /*threads=*/4);

    telemetry::set_enabled(true);
    const ReplicationResult on = replicate_experiment(spec, 4, /*threads=*/4);

    expect_identical(off.runs, on.runs);
    EXPECT_EQ(off.pe_mj.summary.mean, on.pe_mj.summary.mean);
    EXPECT_EQ(off.pc_s.summary.mean, on.pc_s.summary.mean);
    EXPECT_EQ(off.fairness.summary.mean, on.fairness.summary.mean);
  }
}

TEST(TelemetryInstrumentation, SchedulerRunPopulatesGlobalRegistry) {
  // Build the spec first: anchoring RTMA's budget runs a reference
  // simulation, which must not pollute the counters under test.
  const ExperimentSpec spec = small_spec("rtma");
  auto& registry = telemetry::global_registry();
  registry.reset_values();

  const RunMetrics metrics = run_experiment(spec);
  ASSERT_GT(metrics.slots_run, 0);

  // Framework probes: every slot timed, decision latency histogram filled.
  EXPECT_EQ(registry.counter("gateway.slots").value(), metrics.slots_run);
  EXPECT_EQ(registry.histogram("scheduler.decision_latency_us").count(),
            metrics.slots_run);
  EXPECT_EQ(registry.counter("sim.runs").value(), 1);
  EXPECT_EQ(registry.counter("sim.slots_total").value(), metrics.slots_run);

  // RTMA probes: the finite budget must have admitted and rejected someone
  // over the course of the run, and set a finite threshold gauge.
  EXPECT_EQ(registry.counter("rtma.allocations").value(), metrics.slots_run);
  EXPECT_GT(registry.counter("rtma.admitted_users").value(), 0);
  EXPECT_GT(registry.counter("rtma.rejected_users").value(), 0);

  // RRC probes: sessions transmitted, so radios were promoted out of IDLE.
  EXPECT_GT(registry.counter("rrc.transitions.idle_to_dch").value(), 0);

  // The trace retained events (admissions are traced per rejected user).
  EXPECT_GT(registry.tracer().total_recorded(), 0);

  // EMA probes fill on an EMA run.
  registry.reset_values();
  (void)run_experiment(small_spec("ema-fast"));
  EXPECT_GT(registry.counter("ema.allocations").value(), 0);
  EXPECT_GT(registry.histogram("ema.queue_level_s").count(), 0);
  EXPECT_GT(registry.counter("ema_fast.solves").value(), 0);
  EXPECT_GT(registry.histogram("ema.solve_latency_us").count(), 0);
}

}  // namespace
}  // namespace jstream
