#include "telemetry/metric.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/scoped_timer.hpp"
#include "common/units.hpp"

namespace jstream::telemetry {
namespace {

/// Restores the global enabled flag so tests cannot leak a disabled state.
struct EnabledGuard {
  ~EnabledGuard() { set_enabled(true); }
};

TEST(Counter, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(Counter, ConcurrentIncrementsFromThreadPoolAreExact) {
  Counter counter;
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 64;
  constexpr std::int64_t kPerTask = 10000;
  parallel_for(pool, kTasks, [&](std::size_t) {
    for (std::int64_t i = 0; i < kPerTask; ++i) counter.add();
  });
  EXPECT_EQ(counter.value(), checked_index(kTasks) * kPerTask);
}

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(Metric, DisabledRecordingIsANoOp) {
  const EnabledGuard guard;
  Counter counter;
  Gauge gauge;
  Histogram histogram({1.0, 2.0});
  set_enabled(false);
  counter.add();
  gauge.set(7.0);
  histogram.observe(1.5);
  EXPECT_EQ(counter.value(), 0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0);
  set_enabled(true);
  counter.add();
  EXPECT_EQ(counter.value(), 1);
}

TEST(Histogram, RejectsBadBucketEdges) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(Histogram, BucketsObservationsIncludingOverflow) {
  Histogram histogram({1.0, 2.0, 3.0});
  histogram.observe(0.5);   // bucket 0 (le 1)
  histogram.observe(1.0);   // bucket 0 (edges are inclusive upper bounds)
  histogram.observe(2.5);   // bucket 2 (le 3)
  histogram.observe(99.0);  // overflow
  const Histogram::Snapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 0);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.total, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 2.5 + 99.0);
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  Histogram histogram({1.0, 2.0, 3.0, 4.0, 5.0});
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) histogram.observe(v);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.2), 1.0);
  EXPECT_THROW((void)histogram.quantile(1.5), Error);
}

TEST(Histogram, QuantileOfEmptyIsZeroAndOverflowClampsToLastEdge) {
  Histogram histogram({1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  histogram.observe(50.0);  // only observation sits in the overflow bucket
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 2.0);
}

TEST(Histogram, ConcurrentObservationsAreAllCounted) {
  Histogram histogram(exponential_buckets(1.0, 2.0, 12));
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 32;
  constexpr int kPerTask = 5000;
  parallel_for(pool, kTasks, [&](std::size_t task) {
    for (int i = 0; i < kPerTask; ++i) {
      histogram.observe(as_double((task * 31 + checked_size(i)) % 1000));
    }
  });
  EXPECT_EQ(histogram.count(), checked_index(kTasks) * kPerTask);
}

TEST(BucketHelpers, GenerateExpectedEdges) {
  EXPECT_EQ(exponential_buckets(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(linear_buckets(-1.0, 0.5, 3), (std::vector<double>{-1.0, -0.5, 0.0}));
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 3), Error);
  EXPECT_THROW(linear_buckets(0.0, 0.0, 3), Error);
  EXPECT_FALSE(default_latency_buckets_us().empty());
}

TEST(ScopedTimer, ObservesScopeLatency) {
  Histogram histogram(default_latency_buckets_us());
  {
    ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_GE(histogram.sum(), 0.0);
}

TEST(ScopedTimer, SkipsWhenDisabled) {
  const EnabledGuard guard;
  Histogram histogram(default_latency_buckets_us());
  set_enabled(false);
  {
    ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram.count(), 0);
}

}  // namespace
}  // namespace jstream::telemetry
