#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace jstream::telemetry {
namespace {

TEST(Registry, GetOrCreateReturnsStableReferences) {
  Registry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x.count").value(), 3);
  EXPECT_THROW((void)registry.counter(""), Error);

  Gauge& g = registry.gauge("x.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(registry.gauge("x.gauge").value(), 1.5);

  const std::vector<double> edges{1.0, 2.0};
  Histogram& h = registry.histogram("x.hist", edges);
  EXPECT_EQ(&h, &registry.histogram("x.hist"));
  EXPECT_EQ(h.upper_bounds().size(), 2u);
}

TEST(Registry, DefaultHistogramUsesLatencyBuckets) {
  Registry registry;
  Histogram& h = registry.histogram("latency");
  EXPECT_EQ(h.upper_bounds().size(), default_latency_buckets_us().size());
}

TEST(Registry, NamesAreSortedPerKind) {
  Registry registry;
  (void)registry.counter("b");
  (void)registry.counter("a");
  (void)registry.gauge("g");
  (void)registry.histogram("h");
  EXPECT_EQ(registry.counter_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(registry.gauge_names(), (std::vector<std::string>{"g"}));
  EXPECT_EQ(registry.histogram_names(), (std::vector<std::string>{"h"}));
}

TEST(Registry, ResetValuesZeroesWithoutInvalidatingReferences) {
  Registry registry;
  Counter& counter = registry.counter("c");
  Histogram& histogram = registry.histogram("h", std::vector<double>{1.0});
  registry.tracer().record(0, 0, TraceEventKind::kGrant, 1.0);
  counter.add(5);
  histogram.observe(0.5);
  registry.reset_values();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(registry.tracer().total_recorded(), 0);
  counter.add();  // the old reference still works
  EXPECT_EQ(registry.counter("c").value(), 1);
}

TEST(Registry, TextRenderingMentionsEveryMetricAndTraceTail) {
  Registry registry;
  registry.counter("events.total").add(7);
  registry.gauge("level").set(-3.25);
  registry.histogram("lat_us", std::vector<double>{1.0, 10.0}).observe(2.0);
  registry.tracer().record(12, 3, TraceEventKind::kClipLink, 4.0);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("events.total = 7"), std::string::npos);
  EXPECT_NE(text.find("level = -3.25"), std::string::npos);
  EXPECT_NE(text.find("lat_us"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("[slot 12] user 3 clip_link 4"), std::string::npos);
}

// The JSON renderer is hand-rolled; pin the shape: top-level sections, one
// entry per metric, quantiles on histograms, and the trace event list.
TEST(Registry, JsonRenderingHasExpectedShape) {
  Registry registry(/*tracer_capacity=*/8);
  registry.counter("runs").add(2);
  registry.gauge("threshold_dbm").set(-80.5);
  registry.histogram("lat", std::vector<double>{1.0, 2.0}).observe(1.5);
  registry.tracer().record(5, 1, TraceEventKind::kAdmit, -70.0);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"threshold_dbm\": -80.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [{\"le\": 1, \"count\": 0}"), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"admit\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Registry, NonFiniteGaugeRendersAsJsonNull) {
  Registry registry;
  registry.gauge("inf").set(-std::numeric_limits<double>::infinity());
  EXPECT_NE(registry.render_json().find("\"inf\": null"), std::string::npos);
}

TEST(Registry, WriteJsonCreatesReadableFile) {
  Registry registry;
  registry.counter("c").add(1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "jstream_telemetry_test.json")
          .string();
  registry.write_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), registry.render_json());
  std::filesystem::remove(path);
  EXPECT_THROW(registry.write_json("/nonexistent-dir-xyz/t.json"), Error);
}

TEST(Registry, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&global_registry(), &global_registry());
}

}  // namespace
}  // namespace jstream::telemetry
