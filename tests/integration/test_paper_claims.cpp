// Integration tests: scaled-down versions of the paper's headline results.
// Each test runs complete simulations on a reduced population/content size
// (for CI speed) and asserts the *ordering* the paper reports; the bench
// binaries regenerate the full-scale figures.
#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

/// Reduced paper scenario: the paper's full 40-user population (the fairness
/// and competition effects need the base station loaded) with smaller videos
/// so each run stays in the tens of milliseconds.
ScenarioConfig reduced_paper_scenario(std::size_t users = 40, std::uint64_t seed = 42) {
  ScenarioConfig config = paper_scenario(users, seed);
  config.video_min_mb = 60.0;
  config.video_max_mb = 120.0;
  config.max_slots = 4000;
  return config;
}

class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new ScenarioConfig(reduced_paper_scenario());
    reference_ = new DefaultReference(run_default_reference(*scenario_));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete reference_;
    scenario_ = nullptr;
    reference_ = nullptr;
  }

  static RunMetrics run(const std::string& name, const SchedulerOptions& options = {}) {
    return run_experiment({name, name, *scenario_, options});
  }

  static const ScenarioConfig* scenario_;
  static const DefaultReference* reference_;
};

const ScenarioConfig* PaperClaims::scenario_ = nullptr;
const DefaultReference* PaperClaims::reference_ = nullptr;

TEST_F(PaperClaims, Fig2RtmaIsFairerThanDefault) {
  const RunMetrics default_run = run("default");
  const RunMetrics rtma_run = run("rtma", rtma_options_for_alpha(1.0, *reference_));
  EXPECT_GT(rtma_run.mean_fairness(), default_run.mean_fairness() + 0.1);
}

TEST_F(PaperClaims, Fig3RtmaReducesRebuffering) {
  const RunMetrics default_run = run("default");
  const RunMetrics rtma_run = run("rtma", rtma_options_for_alpha(1.0, *reference_));
  EXPECT_LT(rtma_run.avg_rebuffer_per_user_slot_s(),
            default_run.avg_rebuffer_per_user_slot_s());
}

TEST_F(PaperClaims, Fig4LooserEnergyBudgetBuysLessRebuffering) {
  const RunMetrics tight = run("rtma", rtma_options_for_alpha(0.9, *reference_));
  const RunMetrics loose = run("rtma", rtma_options_for_alpha(1.2, *reference_));
  EXPECT_LE(loose.avg_rebuffer_per_user_slot_s(),
            tight.avg_rebuffer_per_user_slot_s());
}

TEST_F(PaperClaims, Fig5RtmaEnergyWithinDefaultBudget) {
  const RunMetrics default_run = run("default");
  const RunMetrics rtma_run = run("rtma", rtma_options_for_alpha(1.0, *reference_));
  // Phi = E_default (alpha = 1): RTMA must not exceed the default's energy.
  EXPECT_LE(rtma_run.avg_energy_per_user_slot_mj(),
            default_run.avg_energy_per_user_slot_mj() * 1.05);
}

TEST_F(PaperClaims, Fig7EmaUsesLessEnergyThanDefault) {
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  const RunMetrics ema_run = run("ema", options);
  const RunMetrics default_run = run("default");
  EXPECT_LT(ema_run.avg_energy_per_user_slot_mj(),
            default_run.avg_energy_per_user_slot_mj());
}

TEST_F(PaperClaims, Fig9EmaBeatsSalsaOnEnergy) {
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  const RunMetrics ema_run = run("ema", options);
  const RunMetrics salsa_run = run("salsa");
  EXPECT_LT(ema_run.avg_energy_per_user_slot_mj(),
            salsa_run.avg_energy_per_user_slot_mj());
}

TEST_F(PaperClaims, Fig9EmaBeatsEstreamerOnEnergy) {
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  const RunMetrics ema_run = run("ema", options);
  const RunMetrics estreamer_run = run("estreamer");
  EXPECT_LT(ema_run.avg_energy_per_user_slot_mj(),
            estreamer_run.avg_energy_per_user_slot_mj());
}

TEST_F(PaperClaims, Fig10TradeoffDriftDirections) {
  const RunMetrics default_run = run("default");
  const RunMetrics rtma_run = run("rtma", rtma_options_for_alpha(1.0, *reference_));
  SchedulerOptions ema_options;
  ema_options.ema.v_weight = 0.05;
  const RunMetrics ema_run = run("ema", ema_options);
  // RTMA: less rebuffering at no more energy. EMA: less energy.
  EXPECT_LT(rtma_run.total_rebuffer_s(), default_run.total_rebuffer_s());
  EXPECT_LE(rtma_run.total_energy_mj(), default_run.total_energy_mj() * 1.05);
  EXPECT_LT(ema_run.total_energy_mj(), default_run.total_energy_mj());
}

TEST_F(PaperClaims, EmaFastTracksExactEmaClosely) {
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  const RunMetrics exact = run("ema", options);
  const RunMetrics fast = run("ema-fast", options);
  EXPECT_NEAR(fast.total_energy_mj(), exact.total_energy_mj(),
              0.10 * exact.total_energy_mj());
}

TEST_F(PaperClaims, LteProfileKeepsTheOrdering) {
  // Section VI: similar results are expected on LTE (parameters-only change).
  ScenarioConfig lte_scenario = reduced_paper_scenario();
  lte_scenario.radio = lte_profile();
  SchedulerOptions options;
  options.ema.v_weight = 0.05;
  const RunMetrics ema_run =
      run_experiment({"ema", "ema", lte_scenario, options});
  const RunMetrics default_run =
      run_experiment({"default", "default", lte_scenario, {}});
  EXPECT_LT(ema_run.avg_energy_per_user_slot_mj(),
            default_run.avg_energy_per_user_slot_mj());
}

}  // namespace
}  // namespace jstream
