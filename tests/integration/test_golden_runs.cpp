// Golden-run regression suite: every factory scheduler is run over a small
// fixed scenario set (benign and faulted) and its outcome digest — slot
// count, energy split, rebuffering, delivered bytes, fairness, completion —
// is compared against the checked-in tests/integration/golden_runs.csv.
//
// The digests pin the numerical behaviour of the whole pipeline (channel
// generation, scheduling, fault injection, transmission, metrics): any
// unintended change to a scheduler decision or an energy/stall formula fails
// here with the exact drifted column. Intentional changes regenerate the
// file via scripts/regen_golden.sh (GOLDEN_REGEN=1 rewrites the CSV in the
// source tree) — review the diff like code.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "baselines/factory.hpp"
#include "common/csv.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

#ifndef JSTREAM_GOLDEN_CSV
#error "build must define JSTREAM_GOLDEN_CSV (path to golden_runs.csv)"
#endif

namespace jstream {
namespace {

struct GoldenCase {
  std::string name;
  ScenarioConfig config;
};

std::vector<GoldenCase> golden_cases() {
  // Small enough to run all schedulers in seconds, long enough that sessions
  // finish, tails flush, and the faulted variant exercises all four families.
  ScenarioConfig benign = paper_scenario(/*users=*/6, /*seed=*/20260805);
  benign.video_min_mb = 15.0;
  benign.video_max_mb = 30.0;
  benign.max_slots = 300;

  ScenarioConfig faulted = benign;
  faulted.faults.outage_rate_per_kslot = 8.0;
  faulted.faults.staleness_rate_per_kslot = 12.0;
  faulted.faults.departure_fraction = 0.5;
  faulted.faults.capacity_rate_per_kslot = 6.0;
  faulted.faults.capacity_min_slots = 10;
  faulted.faults.capacity_max_slots = 40;
  faulted.faults.capacity_scale = 0.5;

  return {{"benign", benign}, {"faulted", faulted}};
}

const std::vector<std::string> kColumns = {
    "case",        "scheduler",  "slots_run",  "trans_mj", "tail_mj",
    "rebuffer_s",  "delivered_kb", "fairness", "completion"};

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::vector<std::string> digest_row(const GoldenCase& golden,
                                    const std::string& scheduler) {
  const RunMetrics m =
      simulate(golden.config, make_scheduler(scheduler), /*keep_series=*/true);
  double delivered_kb = 0.0;
  for (const UserTotals& user : m.per_user) delivered_kb += user.delivered_kb;
  return {golden.name,
          scheduler,
          std::to_string(m.slots_run),
          fmt(m.total_trans_mj()),
          fmt(m.total_tail_mj()),
          fmt(m.total_rebuffer_s()),
          fmt(delivered_kb),
          fmt(m.mean_fairness()),
          fmt(m.completion_rate())};
}

/// Digest doubles must reproduce to round-trip precision; the slack covers
/// only the decimal round trip through the CSV, not behavioural drift.
constexpr double kRelTol = 1e-12;

void expect_cell_matches(const std::string& expected, const std::string& actual,
                         const std::string& column, const std::string& key) {
  if (expected == actual) return;
  const double want = std::strtod(expected.c_str(), nullptr);
  const double got = std::strtod(actual.c_str(), nullptr);
  const double slack = kRelTol * std::max(1.0, std::abs(want));
  EXPECT_LE(std::abs(got - want), slack)
      << key << " drifted in column '" << column << "': golden " << expected
      << ", run " << actual
      << "\nIf the change is intentional, regenerate with scripts/regen_golden.sh "
         "and review the CSV diff.";
}

TEST(GoldenRuns, EveryFactorySchedulerMatchesTheCheckedInDigests) {
  const std::vector<GoldenCase> cases = golden_cases();
  const std::vector<std::string> schedulers = scheduler_names();

  if (std::getenv("GOLDEN_REGEN") != nullptr) {
    CsvWriter writer(JSTREAM_GOLDEN_CSV, kColumns);
    for (const GoldenCase& golden : cases) {
      for (const std::string& scheduler : schedulers) {
        writer.row(digest_row(golden, scheduler));
      }
    }
    GTEST_SKIP() << "GOLDEN_REGEN=1: rewrote " << JSTREAM_GOLDEN_CSV << " with "
                 << writer.rows_written() << " digests";
  }

  const CsvTable table = read_csv(JSTREAM_GOLDEN_CSV);
  ASSERT_EQ(table.header, kColumns)
      << "golden_runs.csv header drifted — regenerate via scripts/regen_golden.sh";

  std::map<std::string, std::vector<std::string>> golden_rows;
  for (const std::vector<std::string>& row : table.rows) {
    golden_rows[row[0] + "/" + row[1]] = row;
  }
  ASSERT_EQ(golden_rows.size(), cases.size() * schedulers.size())
      << "golden_runs.csv row set does not cover the case x scheduler grid";

  for (const GoldenCase& golden : cases) {
    for (const std::string& scheduler : schedulers) {
      const std::string key = golden.name + "/" + scheduler;
      const auto it = golden_rows.find(key);
      ASSERT_NE(it, golden_rows.end()) << "no golden row for " << key;
      const std::vector<std::string> actual = digest_row(golden, scheduler);
      for (std::size_t col = 2; col < kColumns.size(); ++col) {
        expect_cell_matches(it->second[col], actual[col], kColumns[col], key);
      }
    }
  }
}

TEST(GoldenRuns, FaultedCaseActuallyInjectsEveryFamily) {
  // Guards the suite's coverage: if a refactor quietly stopped the faulted
  // case from drawing windows, its digests would degenerate into a second
  // benign run and the regression net would have a hole.
  const GoldenCase faulted = golden_cases().back();
  ASSERT_EQ(faulted.name, "faulted");
  const FaultSchedule schedule = make_fault_schedule(faulted.config);
  EXPECT_GT(schedule.total_outage_slots(), 0);
  EXPECT_GT(schedule.total_stale_slots(), 0);
  EXPECT_GT(schedule.departures(), 0u);
  EXPECT_FALSE(schedule.capacity_windows().empty());
}

}  // namespace
}  // namespace jstream
